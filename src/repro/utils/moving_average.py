"""Smoothing utilities used when rendering training curves.

The paper's Figure 3 smooths training-loss curves with a moving window of 40
iterations "for visibility".  We provide both a simple trailing moving average
(matching the paper's presentation) and an exponential moving average used by
the on-line monitors.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

__all__ = ["moving_average", "exponential_moving_average", "OnlineMean", "OnlineMeanVar"]


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Trailing moving average with a growing window at the start.

    The first ``window - 1`` entries average over the values seen so far
    (window grows from 1 to ``window``), so the output has the same length as
    the input and no NaN padding.

    Parameters
    ----------
    values:
        Input series.
    window:
        Window length in samples; must be >= 1.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("moving_average expects a 1-D series")
    if arr.size == 0:
        return arr.copy()
    cumsum = np.cumsum(arr)
    out = np.empty_like(arr)
    n = arr.size
    w = min(window, n)
    # Growing-window head.
    head = min(w, n)
    out[:head] = cumsum[:head] / np.arange(1, head + 1)
    # Full-window body.
    if n > w:
        out[w:] = (cumsum[w:] - cumsum[:-w]) / w
    return out


def exponential_moving_average(values: Sequence[float], alpha: float) -> np.ndarray:
    """Standard EMA: ``y[t] = alpha * x[t] + (1 - alpha) * y[t-1]``."""
    if not (0.0 < alpha <= 1.0):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    arr = np.asarray(values, dtype=np.float64)
    out = np.empty_like(arr)
    acc = 0.0
    for i, x in enumerate(arr):
        acc = x if i == 0 else alpha * x + (1.0 - alpha) * acc
        out[i] = acc
    return out


class OnlineMean:
    """Numerically stable streaming mean."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        self.mean += (float(value) - self.mean) / self.count

    def update_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.update(v)

    def __float__(self) -> float:
        return self.mean


class OnlineMeanVar:
    """Welford streaming mean/variance, used for batch-loss statistics."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = float(value) - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (float(value) - self.mean)

    def update_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.update(v)

    @property
    def variance(self) -> float:
        """Population variance of the values seen so far (0 for < 2 samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def as_tuple(self) -> tuple[float, float, int]:
        return self.mean, self.std, self.count


def as_list(values: Iterable[float]) -> List[float]:
    """Materialise an iterable of floats (helper for analysis code)."""
    return [float(v) for v in values]
