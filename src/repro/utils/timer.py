"""Lightweight wall-clock timing helpers for the framework and benchmarks.

Two layers of instrumentation build on these helpers:

* the training server's per-phase timers (``receive``/``train``/
  ``acquisition``/``validation`` spans through a :class:`TimerRegistry`),
  which feed the paper's framework-overhead measurement
  (``repro.experiments.overhead``), and
* the benchmark harness (:mod:`repro.bench`), whose scenario runner measures
  whole timed bodies with :func:`time.perf_counter` directly but reports the
  same wall-clock quantity these timers accumulate.

All timers read :func:`time.perf_counter` (monotonic, sub-microsecond
resolution); they measure wall time, not CPU time, because the quantity of
interest throughout the project is end-to-end throughput.  Timing values are
*measurement*, never state: checkpoints exclude them, and restored sessions
restart every timer at zero (see
:meth:`repro.melissa.server.TrainingServer.state_dict`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Timer", "TimerRegistry", "timed"]


@dataclass
class Timer:
    """Accumulating timer: sums the duration of successive start/stop spans.

    One :class:`Timer` tracks one named phase.  Spans must not overlap —
    :meth:`start` on a running timer raises, which catches accidental
    re-entrancy in instrumented loops.

    Attributes
    ----------
    name:
        Label used in summaries and error messages.
    total:
        Accumulated wall-clock seconds over every completed span.
    count:
        Number of completed spans (``total / count`` is :attr:`mean`).

    Example
    -------
    >>> t = Timer(name="demo")
    >>> with t.span():
    ...     _ = sum(range(1000))
    >>> t.count
    1
    """

    name: str = "timer"
    total: float = 0.0
    count: int = 0
    _start: float | None = None

    def start(self) -> None:
        """Open a span; raises ``RuntimeError`` if one is already open."""
        if self._start is not None:
            raise RuntimeError(f"Timer {self.name!r} already started")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Close the open span; returns its duration and accumulates it.

        Raises ``RuntimeError`` when no span is open.
        """
        if self._start is None:
            raise RuntimeError(f"Timer {self.name!r} not started")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.total += elapsed
        self.count += 1
        return elapsed

    @property
    def mean(self) -> float:
        """Mean span duration in seconds (0.0 before the first span)."""
        return self.total / self.count if self.count else 0.0

    @contextmanager
    def span(self) -> Iterator["Timer"]:
        """Context manager timing one span: ``with timer.span(): ...``.

        The span is closed (and accumulated) even when the body raises.
        """
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class TimerRegistry:
    """Named collection of :class:`Timer` objects (per-phase instrumentation).

    The registry creates timers on first use, so instrumented code needs no
    up-front declaration::

        timers = TimerRegistry()
        with timers.span("train"):
            ...
        print("\\n".join(timers.summary()))

    The training server keeps one registry per run; the overhead experiment
    reads its totals to show steering cost is negligible next to training.
    """

    timers: Dict[str, Timer] = field(default_factory=dict)

    def get(self, name: str) -> Timer:
        """Return the timer registered under ``name``, creating it if new."""
        if name not in self.timers:
            self.timers[name] = Timer(name=name)
        return self.timers[name]

    @contextmanager
    def span(self, name: str) -> Iterator[Timer]:
        """Time one span of the named phase (creates the timer on first use)."""
        timer = self.get(name)
        with timer.span():
            yield timer

    def summary(self) -> List[str]:
        """One formatted line per timer (sorted by name): total/count/mean."""
        lines = []
        for name in sorted(self.timers):
            t = self.timers[name]
            lines.append(f"{name:<30s} total={t.total:10.4f}s count={t.count:6d} mean={t.mean:10.6f}s")
        return lines


@contextmanager
def timed() -> Iterator[Timer]:
    """One-shot timer: ``with timed() as t: ...; print(t.total)``.

    Sugar for ad-hoc measurements in examples and benchmarks; the yielded
    :class:`Timer` holds the elapsed wall time in ``t.total`` after the
    block exits (also on exceptions).
    """
    t = Timer()
    t.start()
    try:
        yield t
    finally:
        if t._start is not None:
            t.stop()
