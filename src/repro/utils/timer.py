"""Lightweight wall-clock timing helpers for the framework and benchmarks."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Timer", "TimerRegistry", "timed"]


@dataclass
class Timer:
    """Accumulating timer: sums the duration of successive start/stop spans."""

    name: str = "timer"
    total: float = 0.0
    count: int = 0
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError(f"Timer {self.name!r} already started")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"Timer {self.name!r} not started")
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.total += elapsed
        self.count += 1
        return elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @contextmanager
    def span(self) -> Iterator["Timer"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


@dataclass
class TimerRegistry:
    """Named collection of :class:`Timer` objects (per-phase instrumentation)."""

    timers: Dict[str, Timer] = field(default_factory=dict)

    def get(self, name: str) -> Timer:
        if name not in self.timers:
            self.timers[name] = Timer(name=name)
        return self.timers[name]

    @contextmanager
    def span(self, name: str) -> Iterator[Timer]:
        timer = self.get(name)
        with timer.span():
            yield timer

    def summary(self) -> List[str]:
        lines = []
        for name in sorted(self.timers):
            t = self.timers[name]
            lines.append(f"{name:<30s} total={t.total:10.4f}s count={t.count:6d} mean={t.mean:10.6f}s")
        return lines


@contextmanager
def timed() -> Iterator[Timer]:
    """Context manager returning a one-shot timer: ``with timed() as t: ...``."""
    t = Timer()
    t.start()
    try:
        yield t
    finally:
        if t._start is not None:
            t.stop()
