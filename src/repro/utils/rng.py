"""Seeded random-number-generator utilities.

The reproduction relies on many interacting stochastic components (uniform
steering, Breed proposal sampling, reservoir eviction, batch sampling, NN
weight initialisation, scheduler jitter).  To keep experiments reproducible
while avoiding accidental stream coupling, every component draws from its own
named child stream derived from a single root seed via
:func:`numpy.random.SeedSequence.spawn`-style key hashing.

Example
-------
>>> streams = RngStreams(seed=123)
>>> a = streams.get("reservoir")
>>> b = streams.get("breed")
>>> a is streams.get("reservoir")
True
>>> float(a.random()) != float(b.random())
True
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np

__all__ = ["RngStreams", "derive_seed", "default_rng"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic 63-bit child seed from ``root_seed`` and ``name``.

    The derivation hashes the pair with SHA-256 so that child streams for
    different component names are statistically independent even when the root
    seeds of two experiments are close (e.g. 0 and 1).

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    name:
        Component identifier, e.g. ``"reservoir"`` or ``"breed.proposal"``.

    Returns
    -------
    int
        A non-negative integer usable as a :class:`numpy.random.Generator` seed.
    """
    payload = f"{int(root_seed)}::{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


def default_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Return a NumPy ``Generator``; thin wrapper kept for API symmetry."""
    return np.random.default_rng(seed)


class RngStreams:
    """A registry of named, independently seeded random generators.

    Parameters
    ----------
    seed:
        Root seed of the experiment.  ``None`` draws a random root seed from
        the OS entropy pool (recorded in :attr:`seed` for later reproduction).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = int(np.random.SeedSequence().entropy) & 0x7FFF_FFFF
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed used to derive every child stream."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for component ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(derive_seed(self._seed, name))
        return self._streams[name]

    def reset(self, name: Optional[str] = None) -> None:
        """Reset one stream (or all streams) back to its initial state."""
        if name is None:
            self._streams.clear()
        elif name in self._streams:
            del self._streams[name]

    def state_dict(self) -> Dict[str, object]:
        """Bit-generator states of every materialised stream (JSON-compatible).

        The per-stream state is whatever :attr:`numpy.random.BitGenerator.state`
        reports — plain dictionaries of (big) integers for PCG64 — so the dict
        round-trips exactly through JSON.
        """
        return {
            "seed": self._seed,
            "streams": {
                name: self._streams[name].bit_generator.state
                for name in sorted(self._streams)
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore stream states *in place*.

        Components hold direct references to the :class:`numpy.random.Generator`
        objects handed out by :meth:`get`, so restoration mutates the existing
        generators' bit-generator state rather than replacing the objects —
        every aliased holder (reservoir, scheduler, breed controller, …)
        continues from the restored state.
        """
        if int(state["seed"]) != self._seed:
            raise ValueError(
                f"RngStreams state was saved with root seed {state['seed']}, "
                f"this registry uses {self._seed}"
            )
        for name, generator_state in state["streams"].items():  # type: ignore[union-attr]
            self.get(name).bit_generator.state = generator_state

    def spawn(self, name: str) -> "RngStreams":
        """Create a child registry whose root seed derives from ``name``.

        Useful to hand a whole sub-system (e.g. one Melissa client) its own
        namespace of streams.
        """
        return RngStreams(derive_seed(self._seed, f"spawn::{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
