"""Small logging facade.

The framework's components (launcher, server, clients, Breed controller) emit
structured events.  For the reproduction we keep logging dependency-free: a
:class:`EventLog` collects structured records in memory (so tests and the
analysis modules can assert on them) and can optionally echo human-readable
lines through the standard :mod:`logging` module.
"""

from __future__ import annotations

import logging as _stdlib_logging
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["EventLog", "LogRecord", "format_record", "get_logger"]


def get_logger(name: str) -> _stdlib_logging.Logger:
    """Return a namespaced stdlib logger (``repro.<name>``)."""
    return _stdlib_logging.getLogger(f"repro.{name}")


def format_record(record: "LogRecord") -> str:
    """Render one structured event as a stable, grep-friendly line.

    ``[source] event step=N key=value …`` — floats in shortest-repr form,
    payload keys in insertion order, ``step=`` omitted when unset.  This is
    the single human-readable rendering of a :class:`LogRecord`; the echo
    path and any log-file writer share it, so a format change cannot fork
    the two.
    """
    parts = [f"[{record.source}]", record.event]
    if record.step is not None:
        parts.append(f"step={record.step}")
    for key, value in record.payload.items():
        if isinstance(value, float):
            parts.append(f"{key}={value!r}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


@dataclass
class LogRecord:
    """One structured event."""

    source: str
    event: str
    payload: Dict[str, Any] = field(default_factory=dict)
    step: Optional[int] = None

    def __getitem__(self, key: str) -> Any:
        return self.payload[key]


class EventLog:
    """In-memory structured event log with simple filtering."""

    def __init__(self, echo: bool = False) -> None:
        self._records: List[LogRecord] = []
        self._echo = echo
        self._logger = get_logger("events")

    def emit(self, source: str, event: str, step: Optional[int] = None, **payload: Any) -> LogRecord:
        record = LogRecord(source=source, event=event, payload=dict(payload), step=step)
        self._records.append(record)
        if self._echo:
            self._logger.info("%s", format_record(record))
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def filter(self, source: Optional[str] = None, event: Optional[str] = None) -> List[LogRecord]:
        out = []
        for rec in self._records:
            if source is not None and rec.source != source:
                continue
            if event is not None and rec.event != event:
                continue
            out.append(rec)
        return out

    def last(self, event: str) -> Optional[LogRecord]:
        for rec in reversed(self._records):
            if rec.event == event:
                return rec
        return None

    def clear(self) -> None:
        self._records.clear()
