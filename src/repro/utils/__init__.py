"""Shared utilities: RNG streams, smoothing, timers and structured logging."""

from repro.utils.logging import EventLog, LogRecord, get_logger
from repro.utils.moving_average import (
    OnlineMean,
    OnlineMeanVar,
    exponential_moving_average,
    moving_average,
)
from repro.utils.rng import RngStreams, default_rng, derive_seed
from repro.utils.timer import Timer, TimerRegistry, timed

__all__ = [
    "EventLog",
    "LogRecord",
    "get_logger",
    "OnlineMean",
    "OnlineMeanVar",
    "exponential_moving_average",
    "moving_average",
    "RngStreams",
    "default_rng",
    "derive_seed",
    "Timer",
    "TimerRegistry",
    "timed",
]
