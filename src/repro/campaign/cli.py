"""``python -m repro.cli campaign`` — run a campaign spec from the shell.

.. code-block:: console

    $ repro campaign screen.json --root results/screen --jobs 4 --backend shm
    $ repro campaign screen.json --root results/screen --resume   # after a kill
    $ repro campaign --root results/screen --resume               # spec recalled
    $ repro campaign screen.json --dry-run                        # schedule only

The root keeps everything (`manifest.jsonl`, artifact cache, per-node
checkpoints), so `--resume` over the same root re-enters bit-identically at
any kill point; a root with history refuses a non-resume launch unless
``--fresh`` wipes it first.  See ``docs/CAMPAIGNS.md``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.report import format_table
from repro.campaign.runner import CampaignResumeError, CampaignRunner
from repro.campaign.spec import (
    CampaignSpec,
    CampaignSpecError,
    topological_order,
)
from repro.workflow.executor import BACKENDS

__all__ = ["build_campaign_parser", "campaign_main"]


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Run a resumable DAG-of-studies campaign (docs/CAMPAIGNS.md).",
    )
    parser.add_argument("spec", nargs="?", metavar="SPEC.json",
                        help="campaign spec file; optional with --resume when the "
                             "root already holds the campaign.json it was started with")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="campaign root directory holding manifest, artifact cache "
                             "and per-node checkpoints "
                             "(default: results/campaigns/<name>)")
    parser.add_argument("--resume", action="store_true",
                        help="continue a previous invocation over the same root: "
                             "completed nodes/runs are spliced, interrupted runs "
                             "re-enter from their snapshots")
    parser.add_argument("--fresh", action="store_true",
                        help="delete the campaign root first (discards all progress)")
    parser.add_argument("--backend", choices=list(BACKENDS), default=None,
                        help="executor backend override (default: the spec's)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker-pool size override for the parallel backends")
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="mid-run session-snapshot period override in training batches")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the deterministic schedule and exit without running")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable campaign summary as JSON")
    return parser


def _load_spec(args: argparse.Namespace) -> CampaignSpec:
    spec_path = args.spec
    if spec_path is None:
        if args.root is None:
            raise CampaignSpecError("pass a SPEC.json file (or --root with --resume)")
        spec_path = Path(args.root) / "campaign.json"
        if not spec_path.exists():
            raise CampaignSpecError(
                f"no spec given and {spec_path} does not exist — pass the SPEC.json "
                "the campaign was started with"
            )
    try:
        payload = json.loads(Path(spec_path).read_text())
    except FileNotFoundError:
        raise CampaignSpecError(f"spec file not found: {spec_path}") from None
    except json.JSONDecodeError as exc:
        raise CampaignSpecError(f"spec file {spec_path} is not valid JSON: {exc}") from None
    return CampaignSpec.from_dict(payload)


def _schedule_table(spec: CampaignSpec) -> str:
    rows = []
    for node in topological_order(spec):
        runs = max(1, len(node.configurations))
        if node.select is not None:
            runs *= node.select.k
            source = f"top-{node.select.k} of {node.select.node} by {node.select.metric}"
        else:
            source = "literal configurations"
        rows.append((node.name, ", ".join(node.depends_on) or "-", str(runs), source))
    return format_table(["node", "depends on", "runs", "configurations"], rows)


def campaign_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.cli campaign``."""
    from repro.cli import _install_signal_handlers

    args = build_campaign_parser().parse_args(argv)
    try:
        spec = _load_spec(args)
    except CampaignSpecError as exc:
        print(f"repro campaign: {exc}", file=sys.stderr)
        return 2

    root = Path(args.root) if args.root is not None else Path("results") / "campaigns" / spec.name
    if args.dry_run:
        print(f"campaign {spec.name!r} over root {root} (backend: "
              f"{args.backend or spec.backend})")
        print(_schedule_table(spec))
        print(f"estimated runs: {spec.estimated_runs()}")
        return 0
    if args.fresh and root.exists():
        shutil.rmtree(root)

    runner = CampaignRunner(
        spec,
        root,
        backend=args.backend,
        max_workers=args.jobs,
        checkpoint_every=args.checkpoint_every,
    )
    _install_signal_handlers()
    try:
        result = runner.run(resume=args.resume)
    except (CampaignResumeError, CampaignSpecError) as exc:
        print(f"repro campaign: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(f"\ninterrupted — progress is checkpointed; continue with:\n"
              f"  repro campaign --root {root} --resume", flush=True)
        return 130

    rows = [
        (node, result.states[node], str(len(result.results[node].runs))
         if node in result.results else "-")
        for node in result.states
    ]
    print(format_table(["node", "state", "runs"], rows))
    print(f"cache hits: {result.cache_hits}  executed: {result.runs_executed}  "
          f"resumed: {result.runs_resumed}")
    if args.json:
        summary = {
            "campaign": result.campaign,
            "root": str(root),
            "states": result.states,
            "cache_hits": result.cache_hits,
            "runs_executed": result.runs_executed,
            "runs_resumed": result.runs_resumed,
            "ok": result.ok,
        }
        print(json.dumps(summary, sort_keys=True))
    if not result.ok:
        print(f"campaign {spec.name!r} has failed/skipped nodes; fix and re-run with "
              f"--resume to retry them", file=sys.stderr)
        return 1
    return 0
