"""Campaign manifest: an append-only JSONL ledger of campaign progress.

The manifest is to a campaign what the run checkpoint is to a study: each
event is one flushed JSON line, a crash loses at most the in-flight line,
and loading tolerates the torn tail a ``SIGKILL`` mid-write leaves behind.
Events carry the writing pid and a monotonic sequence number so ``repro
doctor`` can tell an abandoned campaign (node marked running, pid gone)
from a live one.

Event vocabulary (``event`` key):

``campaign_started``
    opens an invocation: spec digest, node schedule, resume flag.
``node_started`` / ``node_finished`` / ``node_failed`` / ``node_skipped``
    node lifecycle; ``node_failed`` carries the attempt number and error,
    ``node_skipped`` the upstream failures blocking it.
``node_resumed``
    a completed node was spliced from its persisted results on resume.
``run_finished``
    one run of a node completed, with its config digest and whether it was
    satisfied from the artifact cache (``cached: true``) or executed.
``campaign_finished``
    closes an invocation with the final node-state map.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from repro.utils.logging import get_logger

__all__ = ["CampaignManifest"]

_LOGGER = get_logger("campaign")

#: events that end a node's current attempt
_NODE_TERMINAL = frozenset({"node_finished", "node_failed", "node_skipped", "node_resumed"})


class CampaignManifest:
    """Append-only JSONL event log of one campaign root."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._seq = 0

    def exists(self) -> bool:
        return self.path.exists()

    def append(self, event: str, **payload: Any) -> None:
        record = {
            "seq": self._seq,
            "event": event,
            "pid": os.getpid(),
            "ts": time.time(),
            **payload,
        }
        self._seq += 1
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as stream:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            stream.flush()
            os.fsync(stream.fileno())

    def load(self) -> List[Dict[str, Any]]:
        """Every intact event, in file order (empty when absent)."""
        events: List[Dict[str, Any]] = []
        if not self.path.exists():
            return events
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                _LOGGER.warning("skipping truncated manifest line in %s", self.path)
        return events

    # ------------------------------------------------------------- queries
    def spec_digest(self) -> Optional[str]:
        """Digest recorded by the most recent ``campaign_started`` event."""
        digest = None
        for event in self.load():
            if event.get("event") == "campaign_started":
                digest = event.get("digest")
        return digest

    def completed_nodes(self) -> Set[str]:
        """Nodes that finished successfully in *any* previous invocation."""
        done: Set[str] = set()
        for event in self.load():
            if event.get("event") in ("node_finished", "node_resumed"):
                done.add(event["node"])
        return done

    def executed_run_counts(self) -> Dict[str, int]:
        """``digest -> times actually executed`` (cache splices excluded).

        This is the manifest-side proof of the execute-exactly-once cache
        contract: a run shared by two nodes must count 1 here across every
        invocation of the campaign.
        """
        counts: Dict[str, int] = {}
        for event in self.load():
            if event.get("event") == "run_finished" and not event.get("cached", False):
                digest = event.get("digest", "")
                counts[digest] = counts.get(digest, 0) + 1
        return counts

    def last_invocation(self) -> List[Dict[str, Any]]:
        """Events of the most recent invocation (from its ``campaign_started``)."""
        events = self.load()
        start = 0
        for index, event in enumerate(events):
            if event.get("event") == "campaign_started":
                start = index
        return events[start:]

    def running_nodes(self) -> Dict[str, int]:
        """``node -> pid`` of attempts opened but never closed.

        Computed over the latest invocation only: a ``node_started`` with no
        matching terminal event means the writing process was interrupted
        (or is still working — the caller decides by probing the pid).
        """
        open_attempts: Dict[str, int] = {}
        for event in self.last_invocation():
            name = event.get("event")
            if name == "node_started":
                open_attempts[event["node"]] = int(event.get("pid", 0))
            elif name in _NODE_TERMINAL:
                open_attempts.pop(event.get("node"), None)
        return open_attempts

    def finished(self) -> bool:
        """Whether the latest invocation ran to ``campaign_finished``."""
        return any(
            event.get("event") == "campaign_finished" for event in self.last_invocation()
        )
