"""Campaign specification: nodes, dependency edges, and data-carrying selectors.

A campaign spec is a plain JSON document (the CLI reads it from a file, the
service from a request body):

.. code-block:: json

    {
      "name": "screen-then-refine",
      "config": {"workload": "heat2d", "seed": 7},
      "nodes": [
        {"name": "sweep", "configurations": [{"sigma": 0.1}, {"sigma": 0.3}]},
        {"name": "refine", "depends_on": ["sweep"],
         "select": {"type": "top_k", "node": "sweep",
                    "metric": "final_validation_loss", "k": 1},
         "configurations": [{"max_iterations": 400}]}
      ]
    }

Every node is one study (executed by the existing
:class:`~repro.workflow.study.StudyRunner`); ``depends_on`` declares the DAG
edges, and ``select`` optionally pulls run configurations out of an upstream
node's results instead of (or combined with) a literal ``configurations``
list.  :func:`topological_order` is the deterministic scheduler order —
declaration order among ready nodes — and raises :class:`CampaignCycleError`
naming the offending cycle.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.config import OnlineTrainingConfig
from repro.workflow.executor import BACKENDS

__all__ = [
    "CampaignCycleError",
    "CampaignSpec",
    "CampaignSpecError",
    "NodeSpec",
    "TopK",
    "campaign_digest",
    "resolve_configurations",
    "topological_order",
]


class CampaignSpecError(ValueError):
    """A campaign spec is structurally invalid (bad reference, bad field)."""


class CampaignCycleError(CampaignSpecError):
    """The dependency graph contains a cycle; ``cycle`` names its nodes."""

    def __init__(self, cycle: Sequence[str]) -> None:
        self.cycle = list(cycle)
        super().__init__("campaign dependency cycle: " + " -> ".join([*self.cycle, self.cycle[0]]))


@dataclass(frozen=True)
class TopK:
    """Edge selector: take the top ``k`` runs of ``node`` ranked by ``metric``.

    Ranking is ascending when ``minimize`` (the default — loss-like metrics),
    descending otherwise, with the upstream run name as a deterministic
    tie-breaker.  Each selected run contributes its override dict, merged
    with ``overrides`` (selector-level constants applied to every selected
    configuration).
    """

    node: str
    metric: str
    k: int = 1
    minimize: bool = True
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "type": "top_k",
            "node": self.node,
            "metric": self.metric,
            "k": self.k,
            "minimize": self.minimize,
        }
        if self.overrides:
            payload["overrides"] = dict(self.overrides)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TopK":
        kind = payload.get("type", "top_k")
        if kind != "top_k":
            raise CampaignSpecError(f"unknown selector type {kind!r} (supported: 'top_k')")
        unknown = set(payload) - {"type", "node", "metric", "k", "minimize", "overrides"}
        if unknown:
            raise CampaignSpecError(f"unknown selector key(s): {sorted(unknown)}")
        try:
            node = payload["node"]
            metric = payload["metric"]
        except KeyError as missing:
            raise CampaignSpecError(f"selector requires {missing.args[0]!r}") from None
        k = int(payload.get("k", 1))
        if k < 1:
            raise CampaignSpecError(f"selector k must be >= 1, got {k}")
        return cls(
            node=str(node),
            metric=str(metric),
            k=k,
            minimize=bool(payload.get("minimize", True)),
            overrides=dict(payload.get("overrides", {})),
        )


@dataclass(frozen=True)
class NodeSpec:
    """One study node of a campaign.

    ``configurations`` are literal override dicts (as accepted by
    :meth:`StudyRunner.run_all`); ``select`` pulls additional base overrides
    from an upstream node's results.  With both, the node runs the cross
    product *selected × literal*; with neither, the node is a single run of
    the campaign's base configuration.  ``max_retries`` re-executes a failed
    node (resuming its completed runs from the node checkpoint) before the
    node is declared failed and its descendants are skipped.
    """

    name: str
    depends_on: Tuple[str, ...] = ()
    configurations: Tuple[Dict[str, Any], ...] = ()
    select: Optional[TopK] = None
    name_key: Optional[str] = None
    max_retries: int = 0

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name}
        if self.depends_on:
            payload["depends_on"] = list(self.depends_on)
        if self.configurations:
            payload["configurations"] = [dict(c) for c in self.configurations]
        if self.select is not None:
            payload["select"] = self.select.to_dict()
        if self.name_key is not None:
            payload["name_key"] = self.name_key
        if self.max_retries:
            payload["max_retries"] = self.max_retries
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NodeSpec":
        unknown = set(payload) - {
            "name",
            "depends_on",
            "configurations",
            "select",
            "name_key",
            "max_retries",
        }
        if unknown:
            raise CampaignSpecError(f"unknown node key(s): {sorted(unknown)}")
        name = str(payload.get("name", "")).strip()
        if not name:
            raise CampaignSpecError("every node needs a non-empty 'name'")
        configurations = payload.get("configurations", [])
        if not isinstance(configurations, (list, tuple)) or not all(
            isinstance(c, dict) for c in configurations
        ):
            raise CampaignSpecError(f"node {name!r}: 'configurations' must be a list of dicts")
        select = payload.get("select")
        max_retries = int(payload.get("max_retries", 0))
        if max_retries < 0:
            raise CampaignSpecError(f"node {name!r}: max_retries must be >= 0")
        return cls(
            name=name,
            depends_on=tuple(str(d) for d in payload.get("depends_on", [])),
            configurations=tuple(dict(c) for c in configurations),
            select=TopK.from_dict(select) if select is not None else None,
            name_key=payload.get("name_key"),
            max_retries=max_retries,
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A named DAG of study nodes over one base configuration.

    ``backend``/``max_workers``/``checkpoint_every`` are execution defaults
    (overridable at launch time) and are *excluded* from
    :func:`campaign_digest` — they describe how the campaign runs, not what
    it computes, mirroring the service's job-fingerprint semantics.
    """

    name: str
    config: Dict[str, Any] = field(default_factory=dict)
    nodes: Tuple[NodeSpec, ...] = ()
    backend: str = "serial"
    max_workers: Optional[int] = None
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise CampaignSpecError("campaign needs a non-empty 'name'")
        if self.backend not in BACKENDS:
            raise CampaignSpecError(
                f"unknown backend {self.backend!r} (choose from {', '.join(BACKENDS)})"
            )
        if not self.nodes:
            raise CampaignSpecError("campaign needs at least one node")
        names = [node.name for node in self.nodes]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise CampaignSpecError(f"duplicate node name(s): {duplicates}")
        known = set(names)
        for node in self.nodes:
            for dep in node.depends_on:
                if dep not in known:
                    raise CampaignSpecError(
                        f"node {node.name!r} depends on unknown node {dep!r}"
                    )
                if dep == node.name:
                    raise CampaignSpecError(f"node {node.name!r} depends on itself")
            if node.select is not None and node.select.node not in node.depends_on:
                raise CampaignSpecError(
                    f"node {node.name!r} selects from {node.select.node!r} "
                    "which is not in its depends_on list"
                )
        # The base configuration must round-trip — fail at parse time, not
        # mid-campaign inside a worker.
        try:
            OnlineTrainingConfig.from_dict(self.config)
        except Exception as exc:
            raise CampaignSpecError(f"invalid base config: {exc}") from exc

    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def estimated_runs(self) -> int:
        """Static upper-bound run count (selectors contribute ``k`` bases)."""
        total = 0
        for node in self.nodes:
            bases = node.select.k if node.select is not None else 1
            total += bases * max(1, len(node.configurations))
        return total

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "config": dict(self.config),
            "nodes": [node.to_dict() for node in self.nodes],
            "backend": self.backend,
            "checkpoint_every": self.checkpoint_every,
        }
        if self.max_workers is not None:
            payload["max_workers"] = self.max_workers
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        if not isinstance(payload, Mapping):
            raise CampaignSpecError("campaign spec must be a JSON object")
        unknown = set(payload) - {
            "name",
            "config",
            "nodes",
            "backend",
            "max_workers",
            "checkpoint_every",
        }
        if unknown:
            raise CampaignSpecError(f"unknown campaign key(s): {sorted(unknown)}")
        config = payload.get("config", {})
        if not isinstance(config, Mapping):
            raise CampaignSpecError("'config' must be a dict")
        nodes = payload.get("nodes", [])
        if not isinstance(nodes, (list, tuple)):
            raise CampaignSpecError("'nodes' must be a list")
        max_workers = payload.get("max_workers")
        return cls(
            name=str(payload.get("name", "")).strip(),
            config=dict(config),
            nodes=tuple(NodeSpec.from_dict(node) for node in nodes),
            backend=str(payload.get("backend", "serial")),
            max_workers=int(max_workers) if max_workers is not None else None,
            checkpoint_every=int(payload.get("checkpoint_every", 0)),
        )


def topological_order(spec: CampaignSpec) -> List[NodeSpec]:
    """Deterministic schedule: declaration order among ready nodes (Kahn).

    Raises :class:`CampaignCycleError` naming the cycle when the declared
    dependencies are not acyclic.
    """
    placed: set = set()
    remaining = list(spec.nodes)
    order: List[NodeSpec] = []
    while remaining:
        ready = next(
            (n for n in remaining if all(d in placed for d in n.depends_on)), None
        )
        if ready is None:
            raise CampaignCycleError(_find_cycle(remaining))
        order.append(ready)
        placed.add(ready.name)
        remaining.remove(ready)
    return order


def _find_cycle(nodes: Sequence[NodeSpec]) -> List[str]:
    """One cycle among ``nodes`` (which are known to contain at least one)."""
    stuck = {node.name: node for node in nodes}
    start = nodes[0].name
    seen: List[str] = []
    current = start
    while current not in seen:
        seen.append(current)
        current = next((d for d in stuck[current].depends_on if d in stuck), current)
    return seen[seen.index(current) :]


def campaign_digest(spec: CampaignSpec) -> str:
    """Stable fingerprint of *what* a campaign computes.

    Covers the base-configuration fingerprint and the full node structure
    (names, edges, configurations, selectors); excludes backend, worker
    count and checkpoint cadence.  Stamped into the campaign manifest so a
    resume against an edited spec is refused instead of silently mixing
    results, and used as the service-side dedupe fingerprint.
    """
    payload = {
        "name": spec.name,
        "config": OnlineTrainingConfig.from_dict(spec.config).digest(),
        "nodes": [node.to_dict() for node in spec.nodes],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def resolve_configurations(
    node: NodeSpec, upstream: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    """Expand a node into its concrete run-override dicts.

    ``upstream`` maps completed node names to their
    :class:`~repro.workflow.results.StudyResults`.  With a selector, the
    upstream runs are ranked by ``selector.metric`` (ascending when
    ``minimize``, run name as tie-breaker) and the top ``k`` contribute their
    override dicts as bases; the node's literal ``configurations`` are then
    crossed over the bases.  Selected bases carry a ``_selected_from``
    metadata key naming their source run — metadata keys are ignored by
    :func:`~repro.workflow.executor.apply_overrides` and by the
    configuration fingerprint, so they do not perturb caching.
    """
    literals = [dict(c) for c in node.configurations] or [{}]
    if node.select is None:
        return literals
    selector = node.select
    results = upstream.get(selector.node)
    if results is None:
        raise CampaignSpecError(
            f"node {node.name!r} selects from {selector.node!r} which has no results"
        )
    runs = list(results.runs)
    missing = [run.name for run in runs if selector.metric not in run.metrics]
    if missing:
        raise CampaignSpecError(
            f"node {node.name!r}: upstream run(s) {missing} lack metric {selector.metric!r}"
        )
    sign = 1.0 if selector.minimize else -1.0
    runs.sort(key=lambda run: (sign * float(run.metrics[selector.metric]), run.name))
    bases = []
    for run in runs[: selector.k]:
        base = {k: v for k, v in run.config.items() if not k.startswith("_")}
        base.update(selector.overrides)
        base["_selected_from"] = run.name
        bases.append(base)
    return [{**base, **literal} for base in bases for literal in literals]
