"""Artifact cache: completed runs keyed by their configuration fingerprint.

Two campaign nodes that expand to the same *effective* configuration (base
config ∘ overrides, metadata keys excluded — exactly what
:func:`repro.workflow.executor.config_digest` fingerprints) describe the same
deterministic computation, so the second node splices the first node's
record instead of re-executing it.  Entries are one atomic JSON file per
digest under ``<root>/<digest>.json`` — crash-safe by construction (a kill
mid-``put`` leaves only an orphaned temp file, never a torn entry) and
shared freely across processes and invocations.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional

from repro.utils.logging import get_logger
from repro.workflow.results import RunResult

__all__ = ["ArtifactCache"]

_LOGGER = get_logger("campaign")


class ArtifactCache:
    """Directory of completed :class:`RunResult` records keyed by digest."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return bool(digest) and self.path(digest).exists()

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) if self.root.exists() else 0

    def digests(self) -> List[str]:
        if not self.root.exists():
            return []
        return sorted(entry.stem for entry in self.root.glob("*.json"))

    def get(self, digest: str) -> Optional[RunResult]:
        """The cached record for ``digest``, or None (corrupt entries heal)."""
        entry = self.path(digest)
        if not digest or not entry.exists():
            return None
        try:
            return RunResult.from_dict(json.loads(entry.read_text()))
        except (json.JSONDecodeError, KeyError, TypeError):
            _LOGGER.warning("dropping unreadable cache entry %s", entry)
            entry.unlink(missing_ok=True)
            return None

    def put(self, record: RunResult) -> None:
        """Store ``record`` under its own digest (first writer wins)."""
        if not record.digest:
            return
        entry = self.path(record.digest)
        if entry.exists():
            return
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = entry.with_name(f".{entry.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(record.to_dict(), sort_keys=True))
        os.replace(tmp, entry)
