"""repro.campaign — resumable DAG-of-studies orchestration.

A *campaign* is a directed acyclic graph of studies: each node expands to a
set of runs through the existing :class:`~repro.workflow.study.StudyRunner`
machinery, and edges can carry data — a :class:`TopK` selector turns an
upstream sweep's results into the downstream refinement node's run
configurations.  Execution is a deterministic topological walk with

* an **artifact cache** keyed by the effective-configuration fingerprint
  (:func:`repro.workflow.executor.config_digest`), so a run shared by two
  nodes executes exactly once (hits are counted by the
  ``repro_campaign_cache_hits_total`` telemetry counter),
* **failure domains** — a failed node (after its per-node retries) only
  blocks its descendants; independent branches still complete,
* a campaign-level ``manifest.jsonl`` that resumes exactly like the study
  JSONL does: kill the process at any node boundary or mid-run and
  ``resume=True`` re-enters bit-identically.

Surfaced through ``python -m repro.cli campaign <spec.json>`` and the
service's ``POST /v1/campaigns`` route.  See ``docs/CAMPAIGNS.md``.
"""

from repro.campaign.cache import ArtifactCache
from repro.campaign.manifest import CampaignManifest
from repro.campaign.runner import CampaignResult, CampaignResumeError, CampaignRunner
from repro.campaign.spec import (
    CampaignCycleError,
    CampaignSpec,
    CampaignSpecError,
    NodeSpec,
    TopK,
    campaign_digest,
    topological_order,
)

__all__ = [
    "ArtifactCache",
    "CampaignCycleError",
    "CampaignManifest",
    "CampaignResult",
    "CampaignResumeError",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignSpecError",
    "NodeSpec",
    "TopK",
    "campaign_digest",
    "topological_order",
]
