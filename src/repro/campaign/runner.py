"""Campaign runner: deterministic topological execution with resume.

One :class:`CampaignRunner` owns a campaign *root* directory:

.. code-block:: text

    <root>/
      campaign.json        # the spec as launched (doctor's resume hint)
      manifest.jsonl       # append-only event ledger (CampaignManifest)
      cache/<digest>.json  # artifact cache keyed by config fingerprint
      nodes/<node>/
        runs.jsonl         # the node's study checkpoint (JsonlCheckpoint)
        runs.jsonl.snapshots/   # mid-run session snapshots (checkpoint_every)
        result.json        # the node's StudyResults, written atomically
      result.json          # campaign summary (states, cache accounting)

Resume is layered on the existing study machinery: node-level progress lives
in the manifest, run-level progress in each node's ``runs.jsonl``, and
mid-run progress in the per-run session snapshots — so ``run(resume=True)``
after a kill at *any* point re-enters bit-identically, exactly like
``StudyRunner.run_all(resume=...)`` and the service queue do.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro import telemetry
from repro.api.config import OnlineTrainingConfig
from repro.campaign.cache import ArtifactCache
from repro.campaign.manifest import CampaignManifest
from repro.campaign.spec import (
    CampaignSpec,
    NodeSpec,
    campaign_digest,
    resolve_configurations,
    topological_order,
)
from repro.utils.logging import get_logger
from repro.workflow import faults
from repro.workflow.executor import JsonlCheckpoint, StudyInputCache, config_digest
from repro.workflow.results import RunResult, StudyResults
from repro.workflow.study import StudyRunner

__all__ = ["CampaignResult", "CampaignResumeError", "CampaignRunner"]

_LOGGER = get_logger("campaign")

#: node states reported in ``CampaignResult.states`` / ``campaign_finished``
NODE_STATES = ("done", "failed", "skipped")


class CampaignResumeError(RuntimeError):
    """The campaign root already has history that conflicts with this launch."""


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    campaign: str
    states: Dict[str, str] = field(default_factory=dict)
    results: Dict[str, StudyResults] = field(default_factory=dict)
    #: runs satisfied from the artifact cache this invocation
    cache_hits: int = 0
    #: runs actually executed this invocation
    runs_executed: int = 0
    #: runs spliced from a previous invocation's node checkpoints
    runs_resumed: int = 0

    @property
    def ok(self) -> bool:
        return all(state == "done" for state in self.states.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "states": dict(self.states),
            "cache_hits": self.cache_hits,
            "runs_executed": self.runs_executed,
            "runs_resumed": self.runs_resumed,
            "nodes": {
                name: [run.to_dict() for run in results.runs]
                for name, results in self.results.items()
            },
        }


def _sanitize(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._=+-]+", "_", name)


def _atomic_write_text(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class CampaignRunner:
    """Execute a :class:`CampaignSpec` under a root directory.

    Parameters
    ----------
    spec:
        The campaign DAG.
    root:
        Directory owning manifest, cache and per-node artifacts.
    backend / max_workers / checkpoint_every:
        Launch-time overrides of the spec's execution defaults.
    on_result:
        Called after every completed run record (executed *and* cache-spliced,
        but not runs resumed from the node's own checkpoint), after the record
        and manifest event are durably on disk — so a callback that raises
        (the service uses this for graceful shutdown) never loses progress.
    on_event:
        Called after every manifest event with ``(event, payload)``.
    propagate:
        Exception types re-raised immediately instead of being absorbed by
        the per-node retry/failure-domain machinery (the service passes its
        shutdown/cancel control-flow exceptions here).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        root: str | Path,
        *,
        backend: Optional[str] = None,
        max_workers: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        on_result: Optional[Callable[[RunResult], None]] = None,
        on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None,
        propagate: Tuple[Type[BaseException], ...] = (),
    ) -> None:
        self.spec = spec
        self.root = Path(root)
        self.backend = backend if backend is not None else spec.backend
        self.max_workers = max_workers if max_workers is not None else spec.max_workers
        self.checkpoint_every = (
            checkpoint_every if checkpoint_every is not None else spec.checkpoint_every
        )
        self.on_result = on_result
        self.on_event = on_event
        self.propagate = tuple(propagate)
        self.manifest = CampaignManifest(self.root / "manifest.jsonl")
        self.cache = ArtifactCache(self.root / "cache")
        self._input_cache = StudyInputCache()
        self.cache_hits = 0
        self.runs_executed = 0
        self.runs_resumed = 0

    # ----------------------------------------------------------- plumbing
    def node_dir(self, name: str) -> Path:
        return self.root / "nodes" / _sanitize(name)

    def _emit(self, event: str, **payload: Any) -> None:
        self.manifest.append(event, **payload)
        if self.on_event is not None:
            self.on_event(event, payload)

    def _counter(self, name: str, help_text: str):
        return telemetry.metrics().counter(name, help=help_text)

    # ------------------------------------------------------------ running
    def run(self, resume: bool = False) -> CampaignResult:
        """Execute the campaign; with ``resume`` splice all prior progress."""
        order = topological_order(self.spec)
        digest = campaign_digest(self.spec)
        if self.manifest.exists():
            if not resume:
                raise CampaignResumeError(
                    f"campaign root {self.root} already has a manifest; "
                    "pass resume=True (CLI: --resume) to continue it, or use a "
                    "fresh root (CLI: --fresh) to start over"
                )
            recorded = self.manifest.spec_digest()
            if recorded is not None and recorded != digest:
                raise CampaignResumeError(
                    f"campaign spec changed since {self.root} was started "
                    f"(manifest digest {recorded}, spec digest {digest}); "
                    "refusing to mix results — use a fresh root"
                )
        completed = self.manifest.completed_nodes() if resume else set()
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(
            self.root / "campaign.json", json.dumps(self.spec.to_dict(), indent=2)
        )
        self._emit(
            "campaign_started",
            campaign=self.spec.name,
            digest=digest,
            backend=self.backend,
            resumed=bool(resume and completed),
            nodes=[node.name for node in order],
        )

        states: Dict[str, str] = {}
        results: Dict[str, StudyResults] = {}
        for node in order:
            blocked_by = [dep for dep in node.depends_on if states.get(dep) != "done"]
            if blocked_by:
                states[node.name] = "skipped"
                self._emit("node_skipped", node=node.name, blocked_by=blocked_by)
                continue
            if node.name in completed:
                spliced = self._load_node_results(node)
                if spliced is not None:
                    states[node.name] = "done"
                    results[node.name] = spliced
                    self.runs_resumed += len(spliced)
                    self._emit("node_resumed", node=node.name, runs=len(spliced))
                    continue
                # node_finished was durable but result.json was not — fall
                # through and re-run; its runs splice from runs.jsonl/cache.
            state, node_results = self._run_node_with_retries(node, results)
            states[node.name] = state
            if node_results is not None:
                results[node.name] = node_results

        self._emit(
            "campaign_finished",
            campaign=self.spec.name,
            states=states,
            cache_hits=self.cache_hits,
            runs_executed=self.runs_executed,
        )
        outcome = CampaignResult(
            campaign=self.spec.name,
            states=states,
            results=results,
            cache_hits=self.cache_hits,
            runs_executed=self.runs_executed,
            runs_resumed=self.runs_resumed,
        )
        _atomic_write_text(self.root / "result.json", json.dumps(outcome.to_dict()))
        return outcome

    # -------------------------------------------------------------- nodes
    def _load_node_results(self, node: NodeSpec) -> Optional[StudyResults]:
        path = self.node_dir(node.name) / "result.json"
        if not path.exists():
            return None
        try:
            return StudyResults.load_json(path)
        except (json.JSONDecodeError, KeyError):
            _LOGGER.warning("unreadable node result %s; re-running node", path)
            return None

    def _run_node_with_retries(
        self, node: NodeSpec, upstream: Dict[str, StudyResults]
    ) -> Tuple[str, Optional[StudyResults]]:
        attempts = node.max_retries + 1
        for attempt in range(1, attempts + 1):
            self._emit("node_started", node=node.name, attempt=attempt)
            try:
                node_results = self._run_node(node, upstream)
            except self.propagate:
                raise
            except Exception as exc:  # noqa: BLE001 — failure domain boundary
                self._emit(
                    "node_failed",
                    node=node.name,
                    attempt=attempt,
                    error=f"{type(exc).__name__}: {exc}",
                )
                _LOGGER.warning(
                    "node %s failed (attempt %d/%d): %s", node.name, attempt, attempts, exc
                )
                if attempt == attempts:
                    return "failed", None
                continue
            self._emit("node_finished", node=node.name, runs=len(node_results))
            return "done", node_results
        raise AssertionError("unreachable")  # pragma: no cover

    def _run_node(
        self, node: NodeSpec, upstream: Dict[str, StudyResults]
    ) -> StudyResults:
        configurations = resolve_configurations(node, upstream)
        node_dir = self.node_dir(node.name)
        node_dir.mkdir(parents=True, exist_ok=True)
        runs_path = node_dir / "runs.jsonl"

        runner = StudyRunner(
            base_config=OnlineTrainingConfig.from_dict(self.spec.config),
            study_name=node.name,
            backend=self.backend,
            max_workers=self.max_workers,
            on_result=self._make_on_result(node.name),
            _cache=self._input_cache,
        )
        self._splice_cache_hits(runner, node, configurations, runs_path)
        results = runner.run_all(
            configurations,
            name_key=node.name_key,
            resume=runs_path,
            checkpoint_every=self.checkpoint_every or None,
        )
        results.save_json(node_dir / "result.json")
        return results

    def _splice_cache_hits(
        self,
        runner: StudyRunner,
        node: NodeSpec,
        configurations: List[Dict[str, Any]],
        runs_path: Path,
    ) -> None:
        """Append cached records for this node's runs into its checkpoint.

        Any spec whose effective-config digest is already in the artifact
        cache — because another node (or a previous invocation) executed it —
        is written into the node's ``runs.jsonl`` *before* ``run_all`` loads
        it for resume, so the study engine splices it like any completed run.
        The record is relabelled with this node's run name and overrides; the
        digest (the identity that matters) is unchanged.
        """
        specs = runner.build_specs(configurations, node.name_key)
        already = JsonlCheckpoint(runs_path).load()
        sink = JsonlCheckpoint(runs_path)
        for spec in specs:
            record = already.get(spec.name)
            if record is not None and StudyRunner._record_matches_spec(record, spec):
                continue  # completed by a previous invocation of this node
            digest = config_digest(spec.build_config())
            cached = self.cache.get(digest)
            if cached is None:
                continue
            relabelled = replace(cached, name=spec.name, config=dict(spec.overrides))
            sink.append(relabelled)
            self.cache_hits += 1
            self._counter(
                "repro_campaign_cache_hits_total",
                "campaign runs satisfied from the artifact cache",
            ).inc()
            self._emit(
                "run_finished", node=node.name, run=spec.name, digest=digest, cached=True
            )
            if self.on_result is not None:
                self.on_result(relabelled)

    def _make_on_result(self, node_name: str) -> Callable[[RunResult], None]:
        def _on_result(record: RunResult) -> None:
            # Durability order: runs.jsonl (run_all's sink, already written) →
            # artifact cache → manifest → caller.  A propagated exception from
            # the caller's callback therefore never loses this run.
            self.cache.put(record)
            self.runs_executed += 1
            self._counter(
                "repro_campaign_runs_executed_total",
                "campaign runs actually executed (artifact-cache misses)",
            ).inc()
            self._emit(
                "run_finished",
                node=node_name,
                run=record.name,
                digest=record.digest,
                cached=False,
            )
            # Deterministic fault-injection point *in the driver process* at a
            # run boundary — the campaign kill-and-resume tests arm this to
            # SIGKILL the orchestrator between runs under any backend.
            faults.maybe_inject("record", record.name)
            if self.on_result is not None:
                self.on_result(record)

        return _on_result
