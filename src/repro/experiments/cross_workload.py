"""Cross-workload study: Breed vs Random over every registered physics.

The paper's claim is that Breed steering is *workload-agnostic* — the sampler
only ever sees per-sample losses and a parameter box, never the PDE.  This
study puts the claim under test: the same training budget runs with both
steering methods against every registered workload (four physics families:
heat diffusion, advection–diffusion, viscous Burgers, Fisher–KPP) and
summarises, per workload, the final validation MSE of each method and the
Breed-vs-Random improvement.

Workload switching is nothing but a per-run ``{"workload": name}`` override:
each factory resolves its canonical parameter bounds, surrogate geometry and
CFL-checked discretisation from the shared scale knobs, so the study grid
stays a plain list of string overrides — picklable, checkpointable and
executable on any backend.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.config import OnlineTrainingConfig
from repro.api.registry import workload_names
from repro.experiments.base import base_config
from repro.workflow.results import StudyResults
from repro.workflow.study import StudyRunner

__all__ = ["CrossWorkloadResult", "cross_workload_configurations", "run_cross_workload"]

#: steering methods compared on every workload
METHODS: Tuple[str, ...] = ("breed", "random")

#: mean parameter-box width of the paper's heat2d study, the reference the
#: scale presets calibrate their (absolute) Breed proposal width against
_HEAT2D_WIDTH = 400.0


def _scaled_sigma(template: OnlineTrainingConfig, workload: str) -> float:
    """Breed proposal width matched to the workload's parameter box.

    ``BreedConfig.sigma`` is absolute (Kelvin for the heat workloads); a
    σ = 25 proposal is a gentle 6 % nudge on the 400-K heat box but pure
    boundary noise on the O(1) boxes of the transport workloads.  Scaling by
    the mean box width keeps the *relative* proposal identical across
    physics (and exactly the preset value for the heat workloads).
    """
    bounds = replace(template, workload=workload).build_workload().bounds
    return float(template.breed.sigma * np.mean(bounds.widths) / _HEAT2D_WIDTH)


@dataclass
class CrossWorkloadResult:
    """Per-workload Breed/Random validation losses of the cross study."""

    workloads: List[str]
    scale: str
    #: raw study records behind the summary (serializable via ``save_json``)
    study: Optional[StudyResults] = None

    def losses(self, workload: str) -> Dict[str, float]:
        """Final validation MSE per method for one workload."""
        if self.study is None:
            return {}
        out: Dict[str, float] = {}
        for run in self.study.filter(workload=workload):
            out[run.config["method"]] = run.metric("final_validation_loss")
        return out

    def breed_improvement(self, workload: str) -> float:
        """Relative validation-MSE improvement of Breed over Random.

        Positive values mean Breed ended with the lower validation loss;
        ``nan`` when either method's run is missing.
        """
        losses = self.losses(workload)
        if "breed" not in losses or "random" not in losses or losses["random"] == 0:
            return float("nan")
        return (losses["random"] - losses["breed"]) / losses["random"]

    def summary_rows(self) -> List[Tuple[str, str, float, float, float]]:
        """``(workload, method, train MSE, validation MSE, overfit gap)`` rows."""
        rows: List[Tuple[str, str, float, float, float]] = []
        if self.study is None:
            return rows
        for workload in self.workloads:
            for run in self.study.filter(workload=workload):
                rows.append(
                    (
                        workload,
                        run.config["method"],
                        run.metric("final_train_loss"),
                        run.metric("final_validation_loss"),
                        run.metric("overfit_gap"),
                    )
                )
        return rows

    def improvement_rows(self) -> List[Tuple[str, float]]:
        """``(workload, breed improvement)`` rows for the summary table."""
        return [(w, self.breed_improvement(w)) for w in self.workloads]


def cross_workload_configurations(
    workloads: Sequence[str],
    methods: Sequence[str] = METHODS,
    sigmas: Optional[Dict[str, float]] = None,
) -> List[Dict[str, object]]:
    """Expand the workload × method grid into study-override dicts.

    ``sigmas`` optionally carries a per-workload Breed proposal width (see
    :func:`_scaled_sigma`); the override rides on every run of the workload
    so both methods share one configuration fingerprint scheme.
    """
    configurations: List[Dict[str, object]] = []
    for workload in workloads:
        for method in methods:
            overrides: Dict[str, object] = {
                "_name": f"{workload}-{method}",
                "workload": workload,
                "method": method,
            }
            if sigmas is not None and workload in sigmas:
                overrides["sigma"] = sigmas[workload]
            configurations.append(overrides)
    return configurations


def run_cross_workload(
    scale: str = "smoke",
    workloads: Optional[Sequence[str]] = None,
    methods: Sequence[str] = METHODS,
    seed: int = 0,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: Optional[Union[str, Path]] = None,
    checkpoint_every: Optional[int] = None,
    architecture: str = "mlp",
) -> CrossWorkloadResult:
    """Run the Breed-vs-Random comparison across workloads.

    Parameters
    ----------
    scale:
        Experiment scale preset (see :data:`repro.experiments.base.SCALES`).
    workloads:
        Workload registry keys to include; defaults to *every* registered
        workload (built-ins plus any user registrations).
    methods:
        Steering-method registry keys compared on each workload.
    backend, max_workers, checkpoint, resume, checkpoint_every:
        Study-engine knobs, identical to the other study experiments —
        the grid parallelises over a process pool and checkpoints/resumes
        through JSONL files and per-run session snapshots.
    architecture:
        Surrogate-architecture registry key applied to every run.
    """
    names = list(workloads) if workloads is not None else workload_names()
    template = base_config(scale, method="breed", seed=seed, architecture=architecture)
    sigmas = {name: _scaled_sigma(template, name) for name in names}
    runner = StudyRunner(
        base_config=template, study_name="cross", backend=backend, max_workers=max_workers
    )
    study = runner.run_all(
        cross_workload_configurations(names, methods, sigmas=sigmas),
        name_key="_name",
        checkpoint=checkpoint,
        resume=resume,
        checkpoint_every=checkpoint_every,
    )
    return CrossWorkloadResult(workloads=names, scale=scale, study=study)
