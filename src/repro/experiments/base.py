"""Shared experiment scaffolding: scale presets and run helpers.

The paper's runs (grid 64×64, 100 time steps, 800 simulations, thousands of
NN iterations) take node-hours; the benchmarks must regenerate every figure on
a single CPU core in seconds-to-minutes.  Each experiment therefore accepts a
*scale*:

* ``"smoke"`` — a few seconds for the full figure; used by the pytest
  benchmarks and the CI-style test suite,
* ``"small"`` — minutes; closer dynamics, still laptop-friendly,
* ``"paper"`` — the configuration of Section 4 / Table 1 (expensive; provided
  for completeness and documented in EXPERIMENTS.md).

The per-tick production/training rates of each preset are chosen so the
scaled-down runs preserve the *overlap* between data creation and training
that Breed relies on: most of the simulation budget must still be pending when
the first resampling triggers fire, exactly as in the full-size experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.api.workloads import Workload
from repro.breed.samplers import BreedConfig
from repro.melissa.run import OnlineTrainingConfig
from repro.solvers.base import Solver
from repro.solvers.heat2d import Heat2DConfig
from repro.surrogate.validation import ValidationSet, validation_set_for_workload

__all__ = [
    "ExperimentScale",
    "SCALES",
    "base_config",
    "scaled_breed_config",
    "shared_study_inputs",
    "with_architecture",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Resolution/budget preset for the experiment harness."""

    name: str
    grid_size: int
    n_timesteps: int
    n_simulations: int
    max_iterations: int
    batch_size: int
    reservoir_capacity: int
    reservoir_watermark: int
    validation_period: int
    n_validation_trajectories: int
    breed_period: int
    breed_window: int
    breed_sigma: float
    job_limit: int
    timesteps_per_tick: int
    train_iterations_per_tick: int

    def describe(self) -> str:
        return (
            f"{self.name}: grid={self.grid_size}x{self.grid_size}, T={self.n_timesteps}, "
            f"S={self.n_simulations}, iterations={self.max_iterations}"
        )


SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        grid_size=8,
        n_timesteps=12,
        n_simulations=48,
        max_iterations=200,
        batch_size=32,
        reservoir_capacity=400,
        reservoir_watermark=40,
        validation_period=40,
        n_validation_trajectories=6,
        breed_period=15,
        breed_window=60,
        breed_sigma=25.0,
        job_limit=6,
        timesteps_per_tick=1,
        train_iterations_per_tick=2,
    ),
    "small": ExperimentScale(
        name="small",
        grid_size=16,
        n_timesteps=30,
        n_simulations=160,
        max_iterations=1000,
        batch_size=64,
        reservoir_capacity=1500,
        reservoir_watermark=200,
        validation_period=50,
        n_validation_trajectories=24,
        breed_period=60,
        breed_window=120,
        breed_sigma=15.0,
        job_limit=10,
        timesteps_per_tick=1,
        train_iterations_per_tick=2,
    ),
    "paper": ExperimentScale(
        name="paper",
        grid_size=64,
        n_timesteps=100,
        n_simulations=800,
        max_iterations=5000,
        batch_size=128,
        reservoir_capacity=4000,
        reservoir_watermark=300,
        validation_period=100,
        n_validation_trajectories=200,
        breed_period=300,
        breed_window=200,
        breed_sigma=10.0,
        job_limit=10,
        timesteps_per_tick=2,
        train_iterations_per_tick=4,
    ),
}


def scaled_breed_config(scale: ExperimentScale, **overrides: float) -> BreedConfig:
    """Breed configuration matching the scale, with optional overrides."""
    kwargs = dict(
        sigma=scale.breed_sigma,
        period=scale.breed_period,
        window=scale.breed_window,
        r_start=0.5,
        r_end=0.7,
        r_breakpoint=3,
    )
    kwargs.update(overrides)
    return BreedConfig(**kwargs)  # type: ignore[arg-type]


def base_config(
    scale_name: str = "smoke",
    method: str = "breed",
    seed: int = 0,
    record_sample_statistics: bool = False,
    workload: str = "heat2d",
    architecture: str = "mlp",
    **breed_overrides: float,
) -> OnlineTrainingConfig:
    """Build an :class:`OnlineTrainingConfig` for a named scale.

    ``workload`` selects the scenario (any :func:`repro.api.register_workload`
    key); the 1-D workloads reuse the scale's resolution knobs
    (``grid_size`` → ``n_points``).  ``architecture`` selects the surrogate
    body (any :func:`repro.api.register_architecture` key).
    """
    if scale_name not in SCALES:
        raise KeyError(f"unknown scale {scale_name!r}; options: {sorted(SCALES)}")
    scale = SCALES[scale_name]
    return OnlineTrainingConfig(
        method=method,
        breed=scaled_breed_config(scale, **breed_overrides),
        workload=workload,
        architecture=architecture,
        heat=Heat2DConfig(grid_size=scale.grid_size, n_timesteps=scale.n_timesteps),
        n_simulations=scale.n_simulations,
        batch_size=scale.batch_size,
        job_limit=scale.job_limit,
        reservoir_capacity=scale.reservoir_capacity,
        reservoir_watermark=scale.reservoir_watermark,
        timesteps_per_tick=scale.timesteps_per_tick,
        train_iterations_per_tick=scale.train_iterations_per_tick,
        max_iterations=scale.max_iterations,
        validation_period=scale.validation_period,
        n_validation_trajectories=scale.n_validation_trajectories,
        record_sample_statistics=record_sample_statistics,
        seed=seed,
    )


def with_architecture(config: OnlineTrainingConfig, hidden_size: int, n_layers: int) -> OnlineTrainingConfig:
    """Return a copy of ``config`` with a different MLP architecture."""
    return replace(config, hidden_size=hidden_size, n_hidden_layers=n_layers)


def shared_study_inputs(
    config: OnlineTrainingConfig,
) -> Tuple[Workload, Solver, Optional[ValidationSet]]:
    """Workload, solver and fixed validation set shared by a study's runs.

    Every experiment module reuses one solver (the implicit schemes
    pre-factorise their linear system) and one Halton validation set across
    all runs, exactly like the paper's studies.
    """
    workload = config.build_workload()
    solver = workload.build_solver()
    validation = validation_set_for_workload(
        workload, config.n_validation_trajectories, solver=solver
    )
    return workload, solver, validation
