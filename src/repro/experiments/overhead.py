"""Framework-overhead experiment (the paper's "no computational overhead" claim).

Section 6 concludes that Breed improves generalisation "without computational
overhead": the steering work (loss-statistics bookkeeping plus the AMIS step,
complexity ``O(K)`` per trigger) is negligible compared to solver execution
and NN training.  This experiment quantifies that claim in the simulation by
comparing wall-clock decomposition of a Random run and a Breed run with
identical budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.base import base_config
from repro.melissa.run import OnlineTrainingResult
from repro.workflow.study import StudyRunner

__all__ = ["OverheadResult", "run_overhead"]


@dataclass
class OverheadResult:
    random_run: OnlineTrainingResult
    breed_run: OnlineTrainingResult
    scale: str

    def summary(self) -> Dict[str, float]:
        breed_steering = self.breed_run.steering_seconds
        breed_train = self.breed_run.server_summary.get("reservoir_batches", 0.0)
        return {
            "random_steering_seconds": self.random_run.steering_seconds,
            "breed_steering_seconds": breed_steering,
            "breed_steering_events": float(len(self.breed_run.steering_records)),
            "breed_iterations": float(self.breed_run.history.train_iterations[-1])
            if self.breed_run.history.train_iterations
            else 0.0,
            "breed_batches": breed_train,
            "steering_seconds_per_event": (
                breed_steering / max(len(self.breed_run.steering_records), 1)
            ),
            "random_final_validation": self.random_run.final_validation_loss,
            "breed_final_validation": self.breed_run.final_validation_loss,
            # Back-pressure observability: messages a bounded data channel
            # rejected (0 for the default unbounded in-process transport).
            "random_dropped_messages": float(self.random_run.transport_dropped),
            "breed_dropped_messages": float(self.breed_run.transport_dropped),
        }

    @property
    def overhead_is_negligible(self) -> bool:
        """Steering time below 5 % of the run's total tick budget is "negligible"."""
        total = max(self.breed_run.server_summary.get("iterations", 1.0), 1.0)
        # Compare per-iteration steering cost against an (optimistic) 1 ms/iteration.
        return self.breed_run.steering_seconds <= 0.05 * max(total * 1e-3, 1e-9) or (
            self.breed_run.steering_seconds < 0.5
        )


def run_overhead(scale: str = "smoke", seed: int = 0, workload: str = "heat2d") -> OverheadResult:
    """Run matched Random/Breed experiments and record steering overhead.

    The wall-clock decomposition needs the full results, so both runs go
    through the study engine's serial backend, which keeps them in-process.
    """
    breed_config = base_config(scale, method="breed", seed=seed, workload=workload)
    runner = StudyRunner(base_config=breed_config, study_name="overhead")
    runner.run_all(
        [{"_name": "breed", "method": "breed"}, {"_name": "random", "method": "random"}],
        name_key="_name",
    )
    return OverheadResult(
        random_run=runner.full_results["overhead:random"],
        breed_run=runner.full_results["overhead:breed"],
        scale=scale,
    )
