"""Framework-overhead experiment (the paper's "no computational overhead" claim).

Section 6 concludes that Breed improves generalisation "without computational
overhead": the steering work (loss-statistics bookkeeping plus the AMIS step,
complexity ``O(K)`` per trigger) is negligible compared to solver execution
and NN training.  This experiment quantifies that claim in the simulation by
comparing wall-clock decomposition of a Random run and a Breed run with
identical budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.experiments.base import base_config, shared_study_inputs
from repro.melissa.run import OnlineTrainingResult, run_online_training

__all__ = ["OverheadResult", "run_overhead"]


@dataclass
class OverheadResult:
    random_run: OnlineTrainingResult
    breed_run: OnlineTrainingResult
    scale: str

    def summary(self) -> Dict[str, float]:
        breed_steering = self.breed_run.steering_seconds
        breed_train = self.breed_run.server_summary.get("reservoir_batches", 0.0)
        return {
            "random_steering_seconds": self.random_run.steering_seconds,
            "breed_steering_seconds": breed_steering,
            "breed_steering_events": float(len(self.breed_run.steering_records)),
            "breed_iterations": float(self.breed_run.history.train_iterations[-1])
            if self.breed_run.history.train_iterations
            else 0.0,
            "breed_batches": breed_train,
            "steering_seconds_per_event": (
                breed_steering / max(len(self.breed_run.steering_records), 1)
            ),
            "random_final_validation": self.random_run.final_validation_loss,
            "breed_final_validation": self.breed_run.final_validation_loss,
        }

    @property
    def overhead_is_negligible(self) -> bool:
        """Steering time below 5 % of the run's total tick budget is "negligible"."""
        total = max(self.breed_run.server_summary.get("iterations", 1.0), 1.0)
        # Compare per-iteration steering cost against an (optimistic) 1 ms/iteration.
        return self.breed_run.steering_seconds <= 0.05 * max(total * 1e-3, 1e-9) or (
            self.breed_run.steering_seconds < 0.5
        )


def run_overhead(scale: str = "smoke", seed: int = 0) -> OverheadResult:
    """Run matched Random/Breed experiments and record steering overhead."""
    breed_config = base_config(scale, method="breed", seed=seed)
    random_config = replace(breed_config, method="random")
    _, solver, validation = shared_study_inputs(breed_config)
    breed_run = run_online_training(breed_config, solver=solver, validation_set=validation)
    random_run = run_online_training(random_config, solver=solver, validation_set=validation)
    return OverheadResult(random_run=random_run, breed_run=breed_run, scale=scale)
