"""Figure 6: correlation matrix of the per-sample training statistics.

One Breed run is executed with per-sample statistics recording enabled; the
correlation matrix over (NN iteration, parameter index, time step, per-sample
loss, uniform indicator, batch loss, loss deviation) is then computed.

Qualitative expectations from Section 4.2 of the paper:

* the proposed deviation metric has ~zero correlation with the NN iteration
  (paper: −0.02) — it is comparable across training stages,
* it correlates positively with the per-sample loss (paper: +0.27) — it is a
  usable, if partial, proxy for the per-sample loss,
* raw batch loss and per-sample loss *do* correlate with the iteration
  (paper: −0.40/−0.31 — losses decrease as training progresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.correlation import CorrelationMatrix, correlation_matrix
from repro.experiments.base import base_config
from repro.melissa.run import OnlineTrainingResult
from repro.workflow.study import StudyRunner

__all__ = ["Fig6Result", "run_fig6"]


@dataclass
class Fig6Result:
    matrix: CorrelationMatrix
    run: OnlineTrainingResult
    scale: str

    def key_findings(self) -> Dict[str, float]:
        return self.matrix.key_findings()

    def checks(self) -> Dict[str, bool]:
        """Shape checks mirroring the paper's claims (loose thresholds)."""
        findings = self.key_findings()
        return {
            # |corr(Q, iteration)| should be small compared to corr(loss, iteration).
            "deviation_weakly_coupled_to_iteration": abs(findings["deviation_vs_iteration"])
            <= max(0.25, abs(findings["sample_loss_vs_iteration"])),
            "deviation_positively_tracks_sample_loss": findings["deviation_vs_sample_loss"] > 0.0,
            "losses_decrease_with_iteration": findings["batch_loss_vs_iteration"] < 0.0,
        }


def run_fig6(scale: str = "smoke", seed: int = 0, workload: str = "heat2d") -> Fig6Result:
    """Run one Breed experiment with statistics recording and build the matrix.

    The correlation matrix needs the full per-sample statistics history, so
    the run goes through the study engine's serial backend, which keeps the
    complete :class:`OnlineTrainingResult` in-process.
    """
    config = base_config(scale, method="breed", seed=seed, workload=workload, record_sample_statistics=True)
    runner = StudyRunner(base_config=config, study_name="fig6")
    runner.run_all([{"_name": "breed"}], name_key="_name")
    run = runner.full_results["fig6:breed"]
    matrix = correlation_matrix(run.history.sample_statistics)
    return Fig6Result(matrix=matrix, run=run, scale=scale)
