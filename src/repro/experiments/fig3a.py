"""Figure 3a: comparative study of model architectures, Breed vs Random.

The paper trains surrogates of every ``(H, L)`` combination in
``{16, 32, 64} × {1, 2, 3}`` with both steering methods and plots training and
validation MSE against the NN iteration.  The qualitative result: as model
expressivity grows, Random runs overfit (train loss drops below validation,
most visibly for ``H=16, L=3``) while Breed's two curves stay close.

This module regenerates the same grid of runs (at a configurable scale) and
summarises, per cell, the final train/validation losses and the overfit gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Sequence, Tuple

from repro.analysis.curves import LossCurve, curve_from_history
from repro.experiments.base import base_config, shared_study_inputs
from repro.melissa.run import OnlineTrainingResult, run_online_training

__all__ = ["Fig3aCell", "Fig3aResult", "run_fig3a"]

#: the paper's architecture grid
PAPER_HIDDEN_SIZES: Tuple[int, ...] = (16, 32, 64)
PAPER_LAYER_COUNTS: Tuple[int, ...] = (1, 2, 3)


@dataclass
class Fig3aCell:
    """One sub-plot of Figure 3a: a (H, L) cell with both methods' curves."""

    hidden_size: int
    n_layers: int
    curves: Dict[str, LossCurve] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"H={self.hidden_size}, L={self.n_layers}"

    def overfit_gap(self, method: str) -> float:
        return self.curves[method].overfit_gap if method in self.curves else float("nan")

    def summary_rows(self) -> List[Tuple[str, str, float, float, float]]:
        rows = []
        for method, curve in self.curves.items():
            rows.append(
                (
                    self.label,
                    method,
                    curve.final_train_loss,
                    curve.final_validation_loss,
                    curve.overfit_gap,
                )
            )
        return rows


@dataclass
class Fig3aResult:
    """All cells of the architecture study."""

    cells: List[Fig3aCell]
    scale: str

    def cell(self, hidden_size: int, n_layers: int) -> Fig3aCell:
        for cell in self.cells:
            if cell.hidden_size == hidden_size and cell.n_layers == n_layers:
                return cell
        raise KeyError(f"no cell for H={hidden_size}, L={n_layers}")

    def summary_rows(self) -> List[Tuple[str, str, float, float, float]]:
        rows: List[Tuple[str, str, float, float, float]] = []
        for cell in self.cells:
            rows.extend(cell.summary_rows())
        return rows

    def mean_overfit_gap(self, method: str) -> float:
        gaps = [cell.overfit_gap(method) for cell in self.cells if method in cell.curves]
        return sum(gaps) / len(gaps) if gaps else float("nan")


def run_fig3a(
    scale: str = "smoke",
    hidden_sizes: Sequence[int] = PAPER_HIDDEN_SIZES,
    layer_counts: Sequence[int] = PAPER_LAYER_COUNTS,
    methods: Sequence[str] = ("breed", "random"),
    seed: int = 0,
) -> Fig3aResult:
    """Run the architecture study and return its loss curves."""
    template = base_config(scale, method="breed", seed=seed)
    # Shared solver and validation set across every run of the study.
    _, solver, validation = shared_study_inputs(template)
    cells: List[Fig3aCell] = []
    for hidden in hidden_sizes:
        for layers in layer_counts:
            cell = Fig3aCell(hidden_size=hidden, n_layers=layers)
            for method in methods:
                config = replace(
                    template,
                    method=method,
                    hidden_size=hidden,
                    n_hidden_layers=layers,
                    seed=seed,
                )
                result: OnlineTrainingResult = run_online_training(
                    config, solver=solver, validation_set=validation
                )
                label = "Breed" if method == "breed" else "Random"
                cell.curves[label] = curve_from_history(result.history, label=f"{cell.label} {label}")
            cells.append(cell)
    return Fig3aResult(cells=cells, scale=scale)
