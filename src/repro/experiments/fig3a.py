"""Figure 3a: comparative study of model architectures, Breed vs Random.

The paper trains surrogates of every ``(H, L)`` combination in
``{16, 32, 64} × {1, 2, 3}`` with both steering methods and plots training and
validation MSE against the NN iteration.  The qualitative result: as model
expressivity grows, Random runs overfit (train loss drops below validation,
most visibly for ``H=16, L=3``) while Breed's two curves stay close.

This module regenerates the same grid of runs (at a configurable scale) and
summarises, per cell, the final train/validation losses and the overfit gap.
The grid is executed through the :class:`~repro.workflow.study.StudyRunner`
engine, so it can fan out over a process pool (``backend="process"``) and
checkpoint/resume through JSONL files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.curves import LossCurve, curve_from_series
from repro.experiments.base import base_config
from repro.workflow.results import StudyResults
from repro.workflow.study import StudyRunner

__all__ = ["Fig3aCell", "Fig3aResult", "fig3a_configurations", "run_fig3a"]

#: the paper's architecture grid
PAPER_HIDDEN_SIZES: Tuple[int, ...] = (16, 32, 64)
PAPER_LAYER_COUNTS: Tuple[int, ...] = (1, 2, 3)

#: method registry key → figure legend label
_METHOD_LABELS = {"breed": "Breed", "random": "Random"}


@dataclass
class Fig3aCell:
    """One sub-plot of Figure 3a: a (H, L) cell with both methods' curves."""

    hidden_size: int
    n_layers: int
    curves: Dict[str, LossCurve] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"H={self.hidden_size}, L={self.n_layers}"

    def overfit_gap(self, method: str) -> float:
        return self.curves[method].overfit_gap if method in self.curves else float("nan")

    def summary_rows(self) -> List[Tuple[str, str, float, float, float]]:
        rows = []
        for method, curve in self.curves.items():
            rows.append(
                (
                    self.label,
                    method,
                    curve.final_train_loss,
                    curve.final_validation_loss,
                    curve.overfit_gap,
                )
            )
        return rows


@dataclass
class Fig3aResult:
    """All cells of the architecture study."""

    cells: List[Fig3aCell]
    scale: str
    #: raw study records behind the cells (serializable via ``save_json``)
    study: Optional[StudyResults] = None

    def cell(self, hidden_size: int, n_layers: int) -> Fig3aCell:
        for cell in self.cells:
            if cell.hidden_size == hidden_size and cell.n_layers == n_layers:
                return cell
        raise KeyError(f"no cell for H={hidden_size}, L={n_layers}")

    def summary_rows(self) -> List[Tuple[str, str, float, float, float]]:
        rows: List[Tuple[str, str, float, float, float]] = []
        for cell in self.cells:
            rows.extend(cell.summary_rows())
        return rows

    def mean_overfit_gap(self, method: str) -> float:
        gaps = [cell.overfit_gap(method) for cell in self.cells if method in cell.curves]
        return sum(gaps) / len(gaps) if gaps else float("nan")


def fig3a_configurations(
    hidden_sizes: Sequence[int] = PAPER_HIDDEN_SIZES,
    layer_counts: Sequence[int] = PAPER_LAYER_COUNTS,
    methods: Sequence[str] = ("breed", "random"),
) -> List[Dict[str, Any]]:
    """Expand the architecture grid into study-override dicts."""
    configurations: List[Dict[str, Any]] = []
    for hidden in hidden_sizes:
        for layers in layer_counts:
            for method in methods:
                configurations.append(
                    {
                        "_name": f"H{hidden}-L{layers}-{method}",
                        "hidden_size": int(hidden),
                        "n_hidden_layers": int(layers),
                        "method": method,
                    }
                )
    return configurations


def run_fig3a(
    scale: str = "smoke",
    hidden_sizes: Sequence[int] = PAPER_HIDDEN_SIZES,
    layer_counts: Sequence[int] = PAPER_LAYER_COUNTS,
    methods: Sequence[str] = ("breed", "random"),
    seed: int = 0,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: Optional[Union[str, Path]] = None,
    checkpoint_every: Optional[int] = None,
    workload: str = "heat2d",
    architecture: str = "mlp",
) -> Fig3aResult:
    """Run the architecture study and return its loss curves.

    ``checkpoint_every`` enables mid-run session snapshots: a resumed study
    re-enters partially completed runs at the batch they were killed at;
    ``workload`` runs the whole grid against another registered scenario and
    ``architecture`` swaps the surrogate body (registry key).
    """
    template = base_config(
        scale, method="breed", seed=seed, workload=workload, architecture=architecture
    )
    runner = StudyRunner(
        base_config=template, study_name="fig3a", backend=backend, max_workers=max_workers
    )
    configurations = fig3a_configurations(hidden_sizes, layer_counts, methods)
    study = runner.run_all(
        configurations,
        name_key="_name",
        checkpoint=checkpoint,
        resume=resume,
        checkpoint_every=checkpoint_every,
    )

    cells: List[Fig3aCell] = []
    for hidden in hidden_sizes:
        for layers in layer_counts:
            cell = Fig3aCell(hidden_size=hidden, n_layers=layers)
            for run in study.filter(hidden_size=hidden, n_hidden_layers=layers):
                method = run.config["method"]
                label = _METHOD_LABELS.get(method, method)
                cell.curves[label] = curve_from_series(run.series, label=f"{cell.label} {label}")
            cells.append(cell)
    return Fig3aResult(cells=cells, scale=scale, study=study)
