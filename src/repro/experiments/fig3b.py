"""Figure 3b: comparative study over the Breed hyper-parameters.

Six sub-plots, each varying one hyper-parameter while the others stay fixed at
the Table-1 values (studies 2 and 3): window ``N``, period ``P``, width ``σ``,
and the mixing triplet ``(r_s, r_e, r_c)``.  Each configuration is one Breed
run whose train/validation curves are reported with the varied value as the
legend entry.

The one-factor-at-a-time grid is executed through the
:class:`~repro.workflow.study.StudyRunner` engine — every configuration is an
independent run, so ``backend="process"`` parallelises the whole figure and
``resume=`` restarts a killed study where it left off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.curves import LossCurve, curve_from_series
from repro.experiments.base import base_config
from repro.workflow.results import StudyResults
from repro.workflow.study import StudyRunner

__all__ = [
    "PAPER_FACTORS",
    "SMOKE_FACTORS",
    "Fig3bPanel",
    "Fig3bResult",
    "fig3b_configurations",
    "run_fig3b",
]

#: the paper's per-hyper-parameter value grids (Section 4.1)
PAPER_FACTORS: Dict[str, Sequence[float]] = {
    "window": [50, 600, 1000],
    "period": [10, 50, 100, 300, 500],
    "sigma": [1.0, 5.0, 10.0, 25.0],
    "r_start": [0.1, 0.5, 0.8, 1.0],
    "r_end": [0.7, 0.9],
    "r_breakpoint": [2, 4],
}

#: reduced grids keeping the extreme values, used at the "smoke" scale
SMOKE_FACTORS: Dict[str, Sequence[float]] = {
    "window": [20, 120],
    "period": [10, 60],
    "sigma": [1.0, 25.0],
    "r_start": [0.1, 1.0],
    "r_end": [0.7, 0.9],
    "r_breakpoint": [2, 4],
}

#: hyper-parameters that take integer values
_INTEGER_FACTORS = frozenset({"window", "period", "r_breakpoint"})


@dataclass
class Fig3bPanel:
    """One sub-plot: a varied hyper-parameter and one curve per value."""

    factor: str
    curves: Dict[float, LossCurve] = field(default_factory=dict)

    def summary_rows(self) -> List[Tuple[str, float, float, float, float]]:
        rows = []
        for value, curve in self.curves.items():
            rows.append(
                (self.factor, value, curve.final_train_loss, curve.final_validation_loss, curve.overfit_gap)
            )
        return rows

    def best_value(self) -> float:
        """Varied value achieving the lowest final validation loss."""
        return min(self.curves, key=lambda v: self.curves[v].final_validation_loss)


@dataclass
class Fig3bResult:
    panels: List[Fig3bPanel]
    scale: str
    #: raw study records behind the panels (serializable via ``save_json``)
    study: Optional[StudyResults] = None

    def panel(self, factor: str) -> Fig3bPanel:
        for panel in self.panels:
            if panel.factor == factor:
                return panel
        raise KeyError(f"no panel for factor {factor!r}")

    def summary_rows(self) -> List[Tuple[str, float, float, float, float]]:
        rows: List[Tuple[str, float, float, float, float]] = []
        for panel in self.panels:
            rows.extend(panel.summary_rows())
        return rows


def fig3b_configurations(
    factors: Mapping[str, Sequence[float]], seed: int = 0
) -> List[Dict[str, Any]]:
    """Expand the one-factor-at-a-time grids into study-override dicts.

    The paper fixes H=16, L=1 for these studies (Table 1, studies 2-3).
    """
    configurations: List[Dict[str, Any]] = []
    for factor, values in factors.items():
        for value in values:
            configurations.append(
                {
                    "_factor": factor,
                    "_value": value,
                    "hidden_size": 16,
                    "n_hidden_layers": 1,
                    factor: int(value) if factor in _INTEGER_FACTORS else float(value),
                    "seed": seed,
                }
            )
    return configurations


def run_fig3b(
    scale: str = "smoke",
    factors: Mapping[str, Sequence[float]] | None = None,
    seed: int = 0,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: Optional[Union[str, Path]] = None,
    checkpoint_every: Optional[int] = None,
    workload: str = "heat2d",
    architecture: str = "mlp",
) -> Fig3bResult:
    """Run the hyper-parameter study (one factor at a time).

    ``checkpoint_every`` enables mid-run session snapshots: a resumed study
    re-enters partially completed runs at the batch they were killed at;
    ``workload`` runs the whole grid against another registered scenario and
    ``architecture`` swaps the surrogate body (registry key).
    """
    if factors is None:
        factors = SMOKE_FACTORS if scale == "smoke" else PAPER_FACTORS
    template = base_config(
        scale, method="breed", seed=seed, workload=workload, architecture=architecture
    )
    runner = StudyRunner(
        base_config=template, study_name="fig3b", backend=backend, max_workers=max_workers
    )
    configurations = fig3b_configurations(factors, seed=seed)
    study = runner.run_all(
        configurations, checkpoint=checkpoint, resume=resume, checkpoint_every=checkpoint_every
    )

    panels: List[Fig3bPanel] = []
    for factor in factors:
        panel = Fig3bPanel(factor=factor)
        for run in study.filter(_factor=factor):
            value = float(run.config["_value"])
            panel.curves[value] = curve_from_series(run.series, label=f"{factor}={run.config['_value']}")
        panels.append(panel)
    return Fig3bResult(panels=panels, scale=scale, study=study)
