"""Figure 3b: comparative study over the Breed hyper-parameters.

Six sub-plots, each varying one hyper-parameter while the others stay fixed at
the Table-1 values (studies 2 and 3): window ``N``, period ``P``, width ``σ``,
and the mixing triplet ``(r_s, r_e, r_c)``.  Each configuration is one Breed
run whose train/validation curves are reported with the varied value as the
legend entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.curves import LossCurve, curve_from_history
from repro.experiments.base import base_config, shared_study_inputs
from repro.melissa.run import run_online_training
from repro.workflow.study import apply_overrides

__all__ = ["PAPER_FACTORS", "SMOKE_FACTORS", "Fig3bPanel", "Fig3bResult", "run_fig3b"]

#: the paper's per-hyper-parameter value grids (Section 4.1)
PAPER_FACTORS: Dict[str, Sequence[float]] = {
    "window": [50, 600, 1000],
    "period": [10, 50, 100, 300, 500],
    "sigma": [1.0, 5.0, 10.0, 25.0],
    "r_start": [0.1, 0.5, 0.8, 1.0],
    "r_end": [0.7, 0.9],
    "r_breakpoint": [2, 4],
}

#: reduced grids keeping the extreme values, used at the "smoke" scale
SMOKE_FACTORS: Dict[str, Sequence[float]] = {
    "window": [20, 120],
    "period": [10, 60],
    "sigma": [1.0, 25.0],
    "r_start": [0.1, 1.0],
    "r_end": [0.7, 0.9],
    "r_breakpoint": [2, 4],
}


@dataclass
class Fig3bPanel:
    """One sub-plot: a varied hyper-parameter and one curve per value."""

    factor: str
    curves: Dict[float, LossCurve] = field(default_factory=dict)

    def summary_rows(self) -> List[Tuple[str, float, float, float, float]]:
        rows = []
        for value, curve in self.curves.items():
            rows.append(
                (self.factor, value, curve.final_train_loss, curve.final_validation_loss, curve.overfit_gap)
            )
        return rows

    def best_value(self) -> float:
        """Varied value achieving the lowest final validation loss."""
        return min(self.curves, key=lambda v: self.curves[v].final_validation_loss)


@dataclass
class Fig3bResult:
    panels: List[Fig3bPanel]
    scale: str

    def panel(self, factor: str) -> Fig3bPanel:
        for panel in self.panels:
            if panel.factor == factor:
                return panel
        raise KeyError(f"no panel for factor {factor!r}")

    def summary_rows(self) -> List[Tuple[str, float, float, float, float]]:
        rows: List[Tuple[str, float, float, float, float]] = []
        for panel in self.panels:
            rows.extend(panel.summary_rows())
        return rows


def run_fig3b(
    scale: str = "smoke",
    factors: Mapping[str, Sequence[float]] | None = None,
    seed: int = 0,
) -> Fig3bResult:
    """Run the hyper-parameter study (one factor at a time)."""
    if factors is None:
        factors = SMOKE_FACTORS if scale == "smoke" else PAPER_FACTORS
    # The paper fixes H=16, L=1 for these studies.
    template = base_config(scale, method="breed", seed=seed)
    _, solver, validation = shared_study_inputs(template)
    panels: List[Fig3bPanel] = []
    for factor, values in factors.items():
        panel = Fig3bPanel(factor=factor)
        for value in values:
            overrides = {
                "hidden_size": 16,
                "n_hidden_layers": 1,
                factor: int(value) if factor in ("window", "period", "r_breakpoint") else float(value),
                "seed": seed,
            }
            config = apply_overrides(template, overrides)
            result = run_online_training(config, solver=solver, validation_set=validation)
            panel.curves[float(value)] = curve_from_history(
                result.history, label=f"{factor}={value}"
            )
        panels.append(panel)
    return Fig3bResult(panels=panels, scale=scale)
