"""Experiment harness: one module per paper table/figure.

=============  =======================================================
Module         Paper artefact
=============  =======================================================
``table1``     Table 1 — fixed hyper-parameters per study
``fig3a``      Figure 3a — architecture study, Breed vs Random
``fig3b``      Figure 3b — Breed hyper-parameter study
``fig4``       Figure 4  — input-parameter deviation histograms
``fig6``       Figure 6  — training-statistics correlation matrix
``overhead``   Section 6 claim — steering overhead vs training time
=============  =======================================================

``cross_workload`` goes beyond the paper: it re-runs the Breed-vs-Random
comparison on every registered workload (heat, advection–diffusion, Burgers,
Fisher–KPP) to test that the steering loop is workload-agnostic.
"""

from repro.experiments.base import (
    SCALES,
    ExperimentScale,
    base_config,
    scaled_breed_config,
    shared_study_inputs,
)
from repro.experiments.fig3a import Fig3aCell, Fig3aResult, fig3a_configurations, run_fig3a
from repro.experiments.fig3b import (
    PAPER_FACTORS,
    SMOKE_FACTORS,
    Fig3bPanel,
    Fig3bResult,
    fig3b_configurations,
    run_fig3b,
)
from repro.experiments.cross_workload import (
    CrossWorkloadResult,
    cross_workload_configurations,
    run_cross_workload,
)
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.overhead import OverheadResult, run_overhead
from repro.experiments.table1 import TABLE1, StudyConfiguration, breed_config_for_study, render_table1

__all__ = [
    "SCALES",
    "ExperimentScale",
    "base_config",
    "scaled_breed_config",
    "shared_study_inputs",
    "Fig3aCell",
    "Fig3aResult",
    "fig3a_configurations",
    "run_fig3a",
    "PAPER_FACTORS",
    "SMOKE_FACTORS",
    "Fig3bPanel",
    "Fig3bResult",
    "fig3b_configurations",
    "run_fig3b",
    "CrossWorkloadResult",
    "cross_workload_configurations",
    "run_cross_workload",
    "Fig4Result",
    "run_fig4",
    "Fig6Result",
    "run_fig6",
    "OverheadResult",
    "run_overhead",
    "TABLE1",
    "StudyConfiguration",
    "breed_config_for_study",
    "render_table1",
]
