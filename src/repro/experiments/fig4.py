"""Figure 4: distribution of the chosen input parameters.

Two comparisons built from the executed parameter vectors of complete runs:

* **4a** — within one Breed run, the deviation histogram of uniform-sourced
  vectors vs proposal-sourced vectors,
* **4b** — the deviation histogram of a whole Random run vs a whole Breed run.

The expected shape (the paper's "central insight"): the proposal/Breed
distributions have their mean shifted towards *higher* parameter-vector
deviation — Breed concentrates sampling where the five temperatures are most
dissimilar, i.e. where trajectories are most dynamic and hardest to learn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.deviation import DeviationHistogram, compare_runs, histogram_by_source
from repro.experiments.base import base_config
from repro.melissa.run import OnlineTrainingResult
from repro.workflow.study import StudyRunner

__all__ = ["Fig4Result", "run_fig4"]


@dataclass
class Fig4Result:
    """Histograms of both panels plus the underlying runs."""

    by_source: Dict[str, DeviationHistogram]
    by_method: Dict[str, DeviationHistogram]
    breed_run: OnlineTrainingResult
    random_run: OnlineTrainingResult
    scale: str

    @property
    def proposal_mean_shift(self) -> float:
        """Mean deviation of proposal-sourced minus uniform-sourced vectors (4a)."""
        return self.by_source["Proposal"].mean - self.by_source["Uniform"].mean

    @property
    def breed_mean_shift(self) -> float:
        """Mean deviation of the Breed run minus the Random run (4b)."""
        return self.by_method["Breed"].mean - self.by_method["Random"].mean

    def summary(self) -> Dict[str, float]:
        return {
            "uniform_mean": self.by_source["Uniform"].mean,
            "proposal_mean": self.by_source["Proposal"].mean,
            "proposal_mean_shift": self.proposal_mean_shift,
            "random_run_mean": self.by_method["Random"].mean,
            "breed_run_mean": self.by_method["Breed"].mean,
            "breed_mean_shift": self.breed_mean_shift,
            "n_proposal_vectors": float(self.by_source["Proposal"].n),
            "n_uniform_vectors": float(self.by_source["Uniform"].n),
        }


def run_fig4(scale: str = "smoke", seed: int = 0, n_bins: int = 16, workload: str = "heat2d") -> Fig4Result:
    """Run one Random and one Breed experiment and build the Figure-4 histograms.

    The histograms need the executed parameter vectors of the full
    :class:`OnlineTrainingResult`, so both runs go through the study engine's
    serial backend, which keeps them in-process.
    """
    breed_config = base_config(scale, method="breed", seed=seed, workload=workload)
    runner = StudyRunner(base_config=breed_config, study_name="fig4")
    runner.run_all(
        [{"_name": "breed", "method": "breed"}, {"_name": "random", "method": "random"}],
        name_key="_name",
    )
    breed_run = runner.full_results["fig4:breed"]
    random_run = runner.full_results["fig4:random"]

    by_source = histogram_by_source(
        breed_run.executed_parameters, breed_run.parameter_sources, n_bins=n_bins
    )
    by_method = compare_runs(
        {
            "Random": random_run.executed_parameters,
            "Breed": breed_run.executed_parameters,
        },
        n_bins=n_bins,
    )
    return Fig4Result(
        by_source=by_source,
        by_method=by_method,
        breed_run=breed_run,
        random_run=random_run,
        scale=scale,
    )
