"""Table 1 of the paper: fixed hyper-parameters of each study.

The table records, per study, which hyper-parameters stay fixed while one is
varied (marked ``*`` in the paper).  Reproducing it is a configuration
exercise rather than a computation, but encoding it here keeps the experiment
harness and the paper's setup in one auditable place — every other experiment
module derives its fixed values from these rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.breed.samplers import BreedConfig

__all__ = ["StudyConfiguration", "TABLE1", "render_table1", "breed_config_for_study"]


@dataclass(frozen=True)
class StudyConfiguration:
    """One row of Table 1.  ``None`` marks the varied (``*``) entries."""

    study: str
    description: str
    sigma: Optional[float]
    period: Optional[int]
    window: Optional[int]
    r_start: Optional[float]
    r_end: Optional[float]
    r_breakpoint: Optional[int]
    hidden_size: Optional[int]
    n_layers: Optional[int]

    def as_row(self) -> List[str]:
        def fmt(value: Optional[float]) -> str:
            return "*" if value is None else f"{value:g}"

        return [
            self.study,
            fmt(self.sigma),
            fmt(self.period),
            fmt(self.window),
            fmt(self.r_start),
            fmt(self.r_end),
            fmt(self.r_breakpoint),
            fmt(self.hidden_size),
            fmt(self.n_layers),
        ]


#: the three study rows of Table 1
TABLE1: Dict[str, StudyConfiguration] = {
    "study1": StudyConfiguration(
        study="Study (1)",
        description="model-architecture study (H, L varied)",
        sigma=10.0,
        period=300,
        window=200,
        r_start=0.5,
        r_end=0.7,
        r_breakpoint=3,
        hidden_size=None,
        n_layers=None,
    ),
    "study2": StudyConfiguration(
        study="Study (2)",
        description="sampling hyper-parameters study (sigma / period / window varied)",
        sigma=5.0,
        period=200,
        window=200,
        r_start=0.5,
        r_end=0.9,
        r_breakpoint=3,
        hidden_size=16,
        n_layers=1,
    ),
    "study3": StudyConfiguration(
        study="Study (3)",
        description="mixing-ratio study (r_s / r_e / r_c varied)",
        sigma=5.0,
        period=200,
        window=200,
        r_start=0.1,
        r_end=1.0,
        r_breakpoint=5,
        hidden_size=16,
        n_layers=1,
    ),
}

#: the value grids attached to each varied hyper-parameter (Section 4.1)
VARIED_VALUES: Dict[str, Dict[str, list]] = {
    "study1": {"hidden_size": [16, 32, 64], "n_layers": [1, 2, 3]},
    "study2": {"window": [50, 600, 1000], "period": [10, 50, 100, 300, 500], "sigma": [1.0, 5.0, 10.0, 25.0]},
    "study3": {"r_start": [0.1, 0.5, 0.8, 1.0], "r_end": [0.7, 0.9], "r_breakpoint": [2, 4]},
}


def breed_config_for_study(study: str, **overrides: float) -> BreedConfig:
    """Build the BreedConfig of a Table-1 study (varied entries need overrides)."""
    row = TABLE1[study]
    values = {
        "sigma": overrides.get("sigma", row.sigma),
        "period": overrides.get("period", row.period),
        "window": overrides.get("window", row.window),
        "r_start": overrides.get("r_start", row.r_start),
        "r_end": overrides.get("r_end", row.r_end),
        "r_breakpoint": overrides.get("r_breakpoint", row.r_breakpoint),
    }
    missing = [k for k, v in values.items() if v is None]
    if missing:
        raise ValueError(f"study {study} varies {missing}; provide overrides for them")
    return BreedConfig(**values)  # type: ignore[arg-type]


def render_table1() -> str:
    """Plain-text rendering of Table 1 (the bench's output)."""
    headers = ["study", "sigma", "P", "N", "r_s", "r_e", "r_c", "H", "L"]
    widths = [max(len(headers[i]), *(len(row.as_row()[i]) for row in TABLE1.values())) for i in range(len(headers))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in TABLE1.values():
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row.as_row(), widths)))
    return "\n".join(lines)
