"""Shared-memory plumbing for zero-copy parallel studies.

The process executor ships every study input and result across process
boundaries by pickling: workers rebuild the (expensive) per-scenario
validation set from scratch, and every :class:`~repro.workflow.results.RunResult`
— metric *series* included — is serialized on its way back.  This module is
the zero-copy alternative the ``"shm"`` backend builds on:

* :class:`SharedArrayPool` — named ``multiprocessing.shared_memory`` blocks
  behind a picklable manifest ``(key, block name, dtype, shape)`` with
  per-block refcounts and guaranteed, idempotent cleanup (``close`` /
  ``unlink`` / context manager).  Attached processes map the blocks
  zero-copy; nothing is ever duplicated.
* :class:`SharedStudyInputs` — each scenario's fixed validation set
  (inputs, targets, Halton parameters — the large read-only study inputs)
  placed into pool blocks *once* by the parent, so every worker attaches
  instead of re-running the solver over the validation trajectories.
* :class:`SharedResultRing` — a preallocated ``(n_slots, slot_floats)``
  float64 ring through which workers hand result series back *in place*:
  a worker claims a free slot, writes its series arrays, and returns only
  a tiny layout descriptor; the parent reads the slot and recycles it.
  Oversized series fall back to ordinary pickling (``try_write`` returns
  ``None``), so the ring is an optimization, never a correctness limit.

Attaching registers nothing with the ``multiprocessing`` resource tracker
(``track=False`` where available, explicit unregistration otherwise): the
creating process owns the lifetime of every block, which is what keeps
worker crashes from leaking — or worse, prematurely destroying — segments.
All block names carry :data:`SHM_NAME_PREFIX`, so tests can assert that
``/dev/shm`` holds zero orphaned segments after any pool lifecycle.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.surrogate.validation import ValidationSet

__all__ = [
    "SHM_NAME_PREFIX",
    "SharedArrayPool",
    "SharedArrayRef",
    "SharedResultRing",
    "SharedStudyInputs",
    "orphaned_segments",
]

#: prefix of every shared-memory block created by this module (leak checks
#: scan /dev/shm for it)
SHM_NAME_PREFIX = "repro_shm_"


def _new_block_name() -> str:
    """A unique, prefixed shared-memory block name."""
    return f"{SHM_NAME_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block without resource-tracker registration.

    The tracker assumes whoever registers a segment owns it; an attaching
    worker does not, and letting it register would make the tracker unlink
    the creator's live segment when the worker exits (bpo-39959).  Python
    3.13 grew ``track=False`` for exactly this; older versions need the
    registration suppressed during the attach — *suppressed*, not undone
    after the fact: forked workers share the parent's tracker process, so a
    register/unregister pair in a worker would erase the creator's own
    registration.
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(resource_name: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - other rtypes
                original(resource_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


def orphaned_segments() -> List[str]:
    """Names of leftover ``/dev/shm`` segments created by this module.

    Empty on platforms without ``/dev/shm``; tests assert this is empty
    after every pool lifecycle (including worker-crash paths).
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return sorted(name for name in os.listdir(root) if name.startswith(SHM_NAME_PREFIX))


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable address of one array inside a :class:`SharedArrayPool`."""

    key: str
    block: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


class SharedArrayPool:
    """Named shared-memory blocks behind a picklable manifest.

    The *owner* (the process that called the constructor) ``put``\\ s arrays —
    one block per array, copied in once — and is the only process allowed to
    ``unlink``.  Workers rebuild a pool from :meth:`manifest` via
    :meth:`attach` and ``get`` zero-copy views.  ``close`` and ``unlink`` are
    idempotent (double-close is a no-op) and a pool is a context manager:
    owners unlink on exit, attachments merely unmap.
    """

    def __init__(self) -> None:
        self._refs: Dict[str, SharedArrayRef] = {}
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        #: open handles per block in *this* process (manifest refcount)
        self._refcount: Dict[str, int] = {}
        self._owner = True
        self._closed = False
        self._unlinked = False

    # ----------------------------------------------------------------- owner
    def put(self, key: str, array: np.ndarray) -> SharedArrayRef:
        """Copy ``array`` into a fresh shared block registered under ``key``."""
        if not self._owner:
            raise RuntimeError("only the owning pool can put() arrays")
        if self._closed:
            raise RuntimeError("pool is closed")
        if key in self._refs:
            raise KeyError(f"key {key!r} already in pool")
        source = np.ascontiguousarray(array)
        block = shared_memory.SharedMemory(
            name=_new_block_name(), create=True, size=max(1, source.nbytes)
        )
        view = np.ndarray(source.shape, dtype=source.dtype, buffer=block.buf)
        view[...] = source
        ref = SharedArrayRef(
            key=key, block=block.name, dtype=source.dtype.str, shape=tuple(source.shape)
        )
        self._refs[key] = ref
        self._blocks[block.name] = block
        self._refcount[block.name] = 1
        return ref

    # ------------------------------------------------------------ attachment
    @classmethod
    def attach(cls, manifest: Dict[str, Any]) -> "SharedArrayPool":
        """Rebuild a (non-owning) pool from another process's manifest."""
        pool = cls()
        pool._owner = False
        for payload in manifest["arrays"]:
            ref = SharedArrayRef(
                key=payload["key"],
                block=payload["block"],
                dtype=payload["dtype"],
                shape=tuple(payload["shape"]),
            )
            pool._refs[ref.key] = ref
        return pool

    def manifest(self) -> Dict[str, Any]:
        """Picklable description of every array (name, dtype, shape, refcount)."""
        return {
            "arrays": [
                {
                    "key": ref.key,
                    "block": ref.block,
                    "dtype": ref.dtype,
                    "shape": list(ref.shape),
                    "refcount": self._refcount.get(ref.block, 0),
                }
                for ref in self._refs.values()
            ]
        }

    # ------------------------------------------------------------------ views
    def __contains__(self, key: str) -> bool:
        return key in self._refs

    def __len__(self) -> int:
        return len(self._refs)

    def refcount(self, key: str) -> int:
        """Open handles this process holds on ``key``'s block."""
        return self._refcount.get(self._refs[key].block, 0)

    def get(self, key: str, writable: bool = False) -> np.ndarray:
        """Zero-copy ndarray view of ``key`` (attaching the block on demand).

        Views are read-only unless ``writable`` — shared study inputs must
        never be mutated by a worker, while result rings are written in
        place by design.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        ref = self._refs[key]
        block = self._blocks.get(ref.block)
        if block is None:
            block = _attach_block(ref.block)
            self._blocks[ref.block] = block
            self._refcount[ref.block] = self._refcount.get(ref.block, 0) + 1
        view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=block.buf)
        view.flags.writeable = bool(writable)
        return view

    # ---------------------------------------------------------------- cleanup
    def close(self) -> None:
        """Unmap every open block handle (idempotent; views die with it)."""
        if self._closed:
            return
        self._closed = True
        for name, block in self._blocks.items():
            try:
                block.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            self._refcount[name] = 0

    def unlink(self) -> None:
        """Destroy the underlying segments (owner only; implies close)."""
        if not self._owner:
            raise RuntimeError("only the owning pool can unlink()")
        self.close()
        if self._unlinked:
            return
        self._unlinked = True
        for block in self._blocks.values():
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


# ---------------------------------------------------------------------------
# Shared study inputs
# ---------------------------------------------------------------------------


class SharedStudyInputs:
    """Per-scenario validation sets placed in shared memory once.

    The parent builds each distinct scenario's validation set (the dominant
    study input: solver trajectories over the full Halton parameter set) and
    ``put``\\ s its three arrays into a :class:`SharedArrayPool`.  Workers
    :meth:`attach` and rebuild :class:`ValidationSet` objects whose arrays
    are read-only views into the shared blocks — zero copies, no matter how
    many workers or runs share the scenario.

    Scenario keys are the opaque hashable keys of
    :meth:`repro.workflow.executor.StudyInputCache.key`, so the executor's
    worker-side cache can look shared inputs up exactly where it would have
    rebuilt them.
    """

    def __init__(
        self,
        pool: SharedArrayPool,
        scenarios: Sequence[Tuple[Hashable, Optional[Dict[str, Any]]]],
    ) -> None:
        self.pool = pool
        self._scenarios: Dict[Hashable, Optional[Dict[str, Any]]] = dict(scenarios)
        self._cache: Dict[Hashable, Optional[ValidationSet]] = {}

    @classmethod
    def build(
        cls, entries: Iterable[Tuple[Hashable, Optional[ValidationSet]]]
    ) -> "SharedStudyInputs":
        """Owner-side constructor: share each scenario's validation arrays.

        ``entries`` yields ``(scenario key, validation set or None)`` pairs;
        a ``None`` validation set (validation disabled) is recorded so
        workers know not to rebuild one either.
        """
        pool = SharedArrayPool()
        scenarios: List[Tuple[Hashable, Optional[Dict[str, Any]]]] = []
        for index, (key, validation) in enumerate(entries):
            if validation is None:
                scenarios.append((key, None))
                continue
            prefix = f"scenario{index}"
            scenarios.append(
                (
                    key,
                    {
                        "inputs": pool.put(f"{prefix}/inputs", validation.inputs),
                        "targets": pool.put(f"{prefix}/targets", validation.targets),
                        "parameters": pool.put(f"{prefix}/parameters", validation.parameters),
                        "n_trajectories": int(validation.n_trajectories),
                        "n_timesteps": int(validation.n_timesteps),
                    },
                )
            )
        return cls(pool, scenarios)

    def manifest(self) -> Dict[str, Any]:
        return {
            "pool": self.pool.manifest(),
            "scenarios": [
                (key, None if entry is None else {
                    "inputs": entry["inputs"].key,
                    "targets": entry["targets"].key,
                    "parameters": entry["parameters"].key,
                    "n_trajectories": entry["n_trajectories"],
                    "n_timesteps": entry["n_timesteps"],
                })
                for key, entry in self._scenarios.items()
            ],
        }

    @classmethod
    def attach(cls, manifest: Dict[str, Any]) -> "SharedStudyInputs":
        pool = SharedArrayPool.attach(manifest["pool"])
        scenarios = []
        for key, entry in manifest["scenarios"]:
            # JSON-free transport (pickle) preserves tuple keys as-is.
            scenarios.append((key, entry))
        attached = cls.__new__(cls)
        attached.pool = pool
        attached._scenarios = dict(scenarios)
        attached._cache = {}
        return attached

    def __contains__(self, key: Hashable) -> bool:
        return key in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def validation_set(self, key: Hashable) -> Optional[ValidationSet]:
        """The shared validation set of scenario ``key`` (zero-copy views).

        Raises ``KeyError`` for unknown scenarios — callers distinguish
        "validation disabled" (``None``) from "not shared" via ``in``.
        """
        if key not in self._scenarios:
            raise KeyError(f"scenario {key!r} not in shared study inputs")
        if key not in self._cache:
            entry = self._scenarios[key]
            if entry is None:
                self._cache[key] = None
            else:
                name = lambda field: (  # noqa: E731 - owner refs vs attached keys
                    entry[field].key if isinstance(entry[field], SharedArrayRef) else entry[field]
                )
                self._cache[key] = ValidationSet(
                    inputs=self.pool.get(name("inputs")),
                    targets=self.pool.get(name("targets")),
                    parameters=self.pool.get(name("parameters")),
                    n_trajectories=int(entry["n_trajectories"]),
                    n_timesteps=int(entry["n_timesteps"]),
                )
        return self._cache[key]

    def close(self) -> None:
        self._cache.clear()
        self.pool.close()

    def unlink(self) -> None:
        self._cache.clear()
        self.pool.unlink()


# ---------------------------------------------------------------------------
# Shared result ring
# ---------------------------------------------------------------------------


class SharedResultRing:
    """Preallocated float64 slots through which workers return result series.

    One shared block of shape ``(n_slots, slot_floats)``.  A worker that owns
    a free slot packs its series arrays back-to-back into the slot row with
    :meth:`try_write` and sends only the returned layout — a ``key ->
    (offset, length)`` dict — to the parent, which :meth:`read`\\ s the values
    out and recycles the slot.  Slot ownership/recycling is coordinated by
    the executor (a queue of free slot indices); the ring itself is just the
    memory and the packing rule.

    ``try_write`` returns ``None`` when the series do not fit, signalling the
    caller to fall back to pickling the series — correctness never depends
    on the capacity estimate.
    """

    def __init__(self, n_slots: int, slot_floats: int, _attach: Optional[Dict[str, Any]] = None) -> None:
        if _attach is not None:
            self.pool = SharedArrayPool.attach(_attach)
        else:
            if n_slots < 1 or slot_floats < 1:
                raise ValueError("n_slots and slot_floats must be >= 1")
            self.pool = SharedArrayPool()
            self.pool.put("ring", np.zeros((n_slots, slot_floats), dtype=np.float64))
        self.n_slots = int(n_slots)
        self.slot_floats = int(slot_floats)

    def manifest(self) -> Dict[str, Any]:
        return {
            "pool": self.pool.manifest(),
            "n_slots": self.n_slots,
            "slot_floats": self.slot_floats,
        }

    @classmethod
    def attach(cls, manifest: Dict[str, Any]) -> "SharedResultRing":
        return cls(
            n_slots=int(manifest["n_slots"]),
            slot_floats=int(manifest["slot_floats"]),
            _attach=manifest["pool"],
        )

    def _slot(self, slot: int, writable: bool) -> np.ndarray:
        if not 0 <= slot < self.n_slots:
            raise IndexError(f"slot {slot} out of range [0, {self.n_slots})")
        return self.pool.get("ring", writable=writable)[slot]

    def try_write(
        self, slot: int, series: Dict[str, np.ndarray]
    ) -> Optional[Dict[str, Tuple[int, int]]]:
        """Pack ``series`` into ``slot``; layout on success, None on overflow."""
        total = sum(int(np.asarray(values).size) for values in series.values())
        if total > self.slot_floats:
            return None
        row = self._slot(slot, writable=True)
        layout: Dict[str, Tuple[int, int]] = {}
        offset = 0
        for key, values in series.items():
            data = np.asarray(values, dtype=np.float64).reshape(-1)
            row[offset : offset + data.size] = data
            layout[key] = (offset, int(data.size))
            offset += data.size
        return layout

    def read(self, slot: int, layout: Dict[str, Tuple[int, int]]) -> Dict[str, List[float]]:
        """Series lists packed into ``slot`` (the RunResult series shape)."""
        row = self._slot(slot, writable=False)
        return {
            key: row[offset : offset + length].tolist()
            for key, (offset, length) in layout.items()
        }

    def close(self) -> None:
        self.pool.close()

    def unlink(self) -> None:
        self.pool.unlink()

    def __enter__(self) -> "SharedResultRing":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.pool._owner:
            self.unlink()
        else:
            self.close()
