"""Study runner: executes a list of configurations and collects results.

This is the in-Python substitute for the paper's Snakemake workflow
("the workflow creates configuration files for Melissa runs across [the]
chosen grid", Appendix B.2).  Solvers and validation sets are shared across
all runs of a study — as they are in the paper, where the validation set is
fixed — which also avoids re-factorising the implicit solver per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.api.workloads import Workload
from repro.breed.samplers import BreedConfig
from repro.melissa.run import OnlineTrainingConfig, OnlineTrainingResult, run_online_training
from repro.solvers.base import Solver
from repro.surrogate.validation import ValidationSet, build_validation_set
from repro.utils.logging import get_logger
from repro.utils.timer import Timer
from repro.workflow.results import RunResult, StudyResults

__all__ = ["StudyRunner", "apply_overrides"]

_LOGGER = get_logger("workflow")

#: configuration keys that live on the nested BreedConfig rather than the run
#: config (derived from the dataclass so newly added fields stay overridable)
_BREED_KEYS = frozenset(BreedConfig.__dataclass_fields__)


def apply_overrides(base: OnlineTrainingConfig, overrides: Dict[str, Any]) -> OnlineTrainingConfig:
    """Build a run configuration from a base config plus a flat override dict.

    Keys matching Breed hyper-parameters (any field of :class:`BreedConfig`,
    e.g. ``sigma``, ``period``, ``window``, ``r_start``) are applied to the
    nested breed configuration; keys starting with ``_`` are study metadata
    and are ignored; everything else must be a field of
    :class:`~repro.api.config.OnlineTrainingConfig` (including ``workload``).
    """
    run_kwargs: Dict[str, Any] = {}
    breed_kwargs: Dict[str, Any] = {}
    for key, value in overrides.items():
        if key.startswith("_"):
            continue
        if key in _BREED_KEYS:
            breed_kwargs[key] = value
        else:
            if key not in OnlineTrainingConfig.__dataclass_fields__:
                raise KeyError(f"unknown configuration key {key!r}")
            run_kwargs[key] = value
    breed = base.breed
    if breed_kwargs:
        # dataclasses.replace keeps every non-overridden field — including
        # ones added to BreedConfig after this function was written.
        breed = replace(breed, **breed_kwargs)
    return replace(base, breed=breed, **run_kwargs)


@dataclass
class StudyRunner:
    """Execute a set of run configurations derived from one base configuration."""

    base_config: OnlineTrainingConfig
    study_name: str = "study"
    #: optional callback invoked after each run, e.g. for progress reporting
    on_result: Optional[Callable[[RunResult], None]] = None
    _workload: Optional[Workload] = field(default=None, repr=False)
    _solver: Optional[Solver] = field(default=None, repr=False)
    _validation: Optional[ValidationSet] = field(default=None, repr=False)
    #: per-override-workload cache: key → (solver, validation set)
    _override_inputs: Dict[Any, tuple] = field(default_factory=dict, repr=False)

    # -------------------------------------------------------------- sharing
    def shared_workload(self) -> Workload:
        if self._workload is None:
            self._workload = self.base_config.build_workload()
        return self._workload

    def shared_solver(self) -> Solver:
        if self._solver is None:
            self._solver = self.shared_workload().build_solver()
        return self._solver

    def shared_validation_set(self) -> Optional[ValidationSet]:
        if self.base_config.n_validation_trajectories <= 0:
            return None
        if self._validation is None:
            workload = self.shared_workload()
            self._validation = build_validation_set(
                solver=self.shared_solver(),
                bounds=workload.bounds,
                scalers=workload.build_scalers(),
                n_trajectories=self.base_config.n_validation_trajectories,
            )
        return self._validation

    def _matches_shared_workload(self, config: OnlineTrainingConfig) -> bool:
        """Whether the shared solver/validation set apply to ``config``.

        Overrides that change the workload (or its geometry) must not inherit
        the base scenario's solver — a heat2d solver cannot execute heat1d
        parameter vectors.
        """
        base = self.base_config
        return (
            config.workload == base.workload
            and config.workload_options == base.workload_options
            and config.heat == base.heat
            and config.bounds == base.bounds
        )

    # -------------------------------------------------------------- running
    def run_one(self, name: str, overrides: Dict[str, Any]) -> tuple[RunResult, OnlineTrainingResult]:
        """Run a single configuration and convert it into a :class:`RunResult`."""
        config = apply_overrides(self.base_config, overrides)
        if self._matches_shared_workload(config):
            solver = self.shared_solver()
            validation = self.shared_validation_set()
        else:
            # Cache per distinct scenario so multi-workload studies still
            # share the expensive solver factorisation and validation set.
            # repr-ed options keep the key hashable for arbitrary
            # JSON-style values (lists, nested dicts).
            key = (
                config.workload,
                repr(sorted(config.workload_options.items())),
                config.heat,
                config.bounds,
                config.n_validation_trajectories,
            )
            if key not in self._override_inputs:
                workload = config.build_workload()
                solver = workload.build_solver()
                validation = None
                if config.n_validation_trajectories > 0:
                    validation = build_validation_set(
                        solver=solver,
                        bounds=workload.bounds,
                        scalers=workload.build_scalers(),
                        n_trajectories=config.n_validation_trajectories,
                    )
                self._override_inputs[key] = (solver, validation)
            solver, validation = self._override_inputs[key]
        timer = Timer(name=name)
        with timer.span():
            result = run_online_training(
                config,
                solver=solver,
                validation_set=validation,
            )
        record = RunResult(
            name=name,
            config=dict(overrides),
            metrics={
                "final_train_loss": result.final_train_loss,
                "final_validation_loss": result.final_validation_loss,
                "overfit_gap": result.overfit_gap,
                "iterations": float(result.history.train_iterations[-1]) if result.history.train_iterations else 0.0,
                "steering_events": float(len(result.steering_records)),
                "parameter_overwrites": float(result.launcher_summary.get("overwrites", 0)),
                "uniform_fraction": result.uniform_fraction(),
                "steering_seconds": result.steering_seconds,
                "elapsed_seconds": timer.total,
            },
            series={
                "train_iterations": [float(i) for i in result.history.train_iterations],
                "train_losses": list(result.history.train_losses),
                "validation_iterations": [float(i) for i in result.history.validation_iterations],
                "validation_losses": list(result.history.validation_losses),
            },
        )
        if self.on_result is not None:
            self.on_result(record)
        return record, result

    def run_all(self, configurations: List[Dict[str, Any]], name_key: Optional[str] = None) -> StudyResults:
        """Run every configuration of a study and collect the results."""
        results = StudyResults(study=self.study_name)
        for index, overrides in enumerate(configurations):
            if name_key is not None and name_key in overrides:
                name = f"{self.study_name}:{overrides[name_key]}"
            elif "_factor" in overrides:
                name = f"{self.study_name}:{overrides['_factor']}={overrides['_value']}"
            else:
                name = f"{self.study_name}:{index}"
            _LOGGER.info("running %s (%d/%d)", name, index + 1, len(configurations))
            record, _ = self.run_one(name, overrides)
            results.add(record)
        return results
