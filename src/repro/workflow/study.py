"""Study runner: executes a list of configurations and collects results.

This is the in-Python substitute for the paper's Snakemake workflow
("the workflow creates configuration files for Melissa runs across [the]
chosen grid", Appendix B.2).  Solvers and validation sets are shared across
all runs of a scenario — as they are in the paper, where the validation set is
fixed — which also avoids re-factorising the implicit solver per run.

Execution is delegated to a pluggable :mod:`repro.workflow.executor` backend:
``backend="serial"`` runs in-process (and retains the full
:class:`~repro.api.session.OnlineTrainingResult` per run),
``backend="process"`` fans the runs out over a worker pool, streaming
picklable :class:`~repro.workflow.results.RunResult` records back, and
``backend="shm"`` additionally shares study inputs and result series
through ``multiprocessing.shared_memory`` (zero-copy; see
:mod:`repro.workflow.shm`).  Either way ``run_all`` can checkpoint completed
runs to a JSONL file as they finish and, given ``resume=``, skip the runs a
previous (interrupted) invocation already completed.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.api.session import OnlineTrainingResult
from repro.api.workloads import Workload
from repro.melissa.run import OnlineTrainingConfig
from repro.solvers.base import Solver
from repro.surrogate.validation import ValidationSet
from repro.utils.logging import get_logger
from repro.workflow.executor import (
    JsonlCheckpoint,
    RunSpec,
    SerialExecutor,
    StudyInputCache,
    apply_overrides,
    config_digest,
    execute_spec,
    get_executor,
)
from repro.workflow.results import RunResult, StudyResults

__all__ = ["StudyRunner", "apply_overrides"]

_LOGGER = get_logger("workflow")


@dataclass
class StudyRunner:
    """Execute a set of run configurations derived from one base configuration.

    ``backend`` selects the executor (``"serial"``, ``"process"`` or
    ``"shm"``); ``max_workers`` bounds the worker pool of the parallel
    backends.  After a serial ``run_all``/``run_one``, :attr:`full_results`
    maps run name → :class:`OnlineTrainingResult` for experiments that need
    the trained model or parameter vectors; the parallel backends leave it
    empty (only the lightweight records cross back from the workers).
    """

    base_config: OnlineTrainingConfig
    study_name: str = "study"
    #: executor backend: any name in :data:`repro.workflow.executor.BACKENDS`
    backend: str = "serial"
    #: worker-pool size for the parallel backends (None → CPU count)
    max_workers: Optional[int] = None
    #: optional callback invoked after each run, e.g. for progress reporting
    on_result: Optional[Callable[[RunResult], None]] = None
    #: full per-run results of the last serial execution, keyed by run name
    full_results: Dict[str, OnlineTrainingResult] = field(default_factory=dict, repr=False)
    #: per-scenario cache of (solver, validation set) shared by serial runs
    _cache: StudyInputCache = field(default_factory=StudyInputCache, repr=False)
    _workload: Optional[Workload] = field(default=None, repr=False)

    # -------------------------------------------------------------- sharing
    def shared_workload(self) -> Workload:
        """The base configuration's workload, built once per runner."""
        if self._workload is None:
            self._workload = self.base_config.build_workload()
        return self._workload

    def shared_solver(self) -> Solver:
        """The (pre-factorised) solver shared by every run of the base scenario."""
        return self._cache.inputs(self.base_config)[0]

    def shared_validation_set(self) -> Optional[ValidationSet]:
        """The fixed Halton validation set of the base scenario (``None`` if disabled)."""
        return self._cache.inputs(self.base_config)[1]

    # -------------------------------------------------------------- specs
    def run_names(self, configurations: List[Dict[str, Any]], name_key: Optional[str] = None) -> List[str]:
        """Derive the (unique) run name of every configuration.

        Duplicate names are suffixed with the configuration index — the
        checkpoint/resume machinery keys completed runs by name, so silent
        collisions would drop runs on resume.
        """
        names: List[str] = []
        seen: set = set()
        for index, overrides in enumerate(configurations):
            if name_key is not None and name_key in overrides:
                name = f"{self.study_name}:{overrides[name_key]}"
            elif "_factor" in overrides:
                name = f"{self.study_name}:{overrides['_factor']}={overrides['_value']}"
            else:
                name = f"{self.study_name}:{index}"
            if name in seen:
                deduped = f"{name}#{index}"
                _LOGGER.warning("duplicate run name %r; renaming to %r", name, deduped)
                name = deduped
            seen.add(name)
            names.append(name)
        return names

    def build_specs(
        self, configurations: List[Dict[str, Any]], name_key: Optional[str] = None
    ) -> List[RunSpec]:
        """Expand configurations into named, picklable :class:`RunSpec`\\ s."""
        base = self.base_config.to_dict()
        return [
            RunSpec(name=name, config=base, overrides=dict(overrides))
            for name, overrides in zip(self.run_names(configurations, name_key), configurations)
        ]

    @staticmethod
    def _snapshot_root(
        checkpoint: Optional[Union[str, Path]],
        resume: Optional[Union[str, Path]],
        snapshot_dir: Optional[Union[str, Path]],
    ) -> Path:
        """Directory holding the per-run session snapshots of a study.

        Defaults to a ``<checkpoint>.snapshots/`` sibling of the study's JSONL
        checkpoint so ``run_all(cfgs, resume=path, checkpoint_every=N)`` with
        the same ``path`` finds both the completed-run records *and* the
        mid-run snapshots of the interrupted ones.
        """
        if snapshot_dir is not None:
            return Path(snapshot_dir)
        anchor = checkpoint if checkpoint is not None else resume
        if anchor is None:
            raise ValueError(
                "checkpoint_every needs somewhere to put session snapshots: "
                "pass snapshot_dir=, or a checkpoint=/resume= JSONL path to "
                "derive the default <checkpoint>.snapshots/ directory from"
            )
        anchor = Path(anchor)
        return anchor.parent / f"{anchor.name}.snapshots"

    @staticmethod
    def _run_snapshot_dir(root: Path, index: int, name: str) -> Path:
        """Stable, filesystem-safe snapshot directory of one run.

        The configuration-index prefix keeps directories unique even when two
        run names sanitise to the same string; it is stable across
        invocations because specs are derived deterministically from the
        configuration list.
        """
        return root / f"{index:04d}-{re.sub(r'[^A-Za-z0-9._=+-]+', '_', name)}"

    @staticmethod
    def _record_matches_spec(record: RunResult, spec: RunSpec) -> bool:
        """Whether a checkpointed record still describes ``spec``'s run.

        Resume keys on run names, but names omit the configuration — a record
        from a previous invocation with a different seed, scale, base config,
        or override set must be re-executed, not silently relabeled as the
        current study's result.  The effective-config fingerprint stamped on
        each record covers all of that; records from older checkpoints that
        predate the fingerprint fall back to the seed/workload/override
        comparison (overrides through a JSON round-trip, since the
        checkpointed copy already went through one).
        """
        config = spec.build_config()
        if record.digest:
            return record.digest == config_digest(config)
        if record.seed != config.seed or record.workload != config.workload:
            return False
        canonical = lambda d: json.dumps(d, sort_keys=True, default=str)  # noqa: E731
        return canonical(record.config) == canonical(spec.overrides)

    # -------------------------------------------------------------- running
    def run_one(self, name: str, overrides: Dict[str, Any]) -> tuple[RunResult, OnlineTrainingResult]:
        """Run a single configuration in-process and return its records."""
        spec = RunSpec(name=name, config=self.base_config.to_dict(), overrides=dict(overrides))
        record, result = execute_spec(spec, self._cache)
        self.full_results[name] = result
        if self.on_result is not None:
            self.on_result(record)
        return record, result

    def run_all(
        self,
        configurations: List[Dict[str, Any]],
        name_key: Optional[str] = None,
        checkpoint: Optional[Union[str, Path]] = None,
        resume: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        snapshot_dir: Optional[Union[str, Path]] = None,
    ) -> StudyResults:
        """Run every configuration of a study and collect the results.

        Parameters
        ----------
        configurations:
            Flat override dicts (see :func:`apply_overrides`), one per run.
        name_key:
            Optional override key whose value names the run.
        checkpoint:
            Optional JSONL path; each completed run is appended (and flushed)
            as it finishes, in completion order.
        resume:
            Optional JSONL path of a previous invocation; runs whose names
            appear there *and* still match the current configuration
            (seed, workload, overrides) are not re-executed — their
            checkpointed records are spliced into the results.  When
            ``checkpoint`` is omitted, new completions are appended to the
            ``resume`` file, so the natural crash-recovery call is
            ``run_all(cfgs, resume=path)`` with the same ``path`` every
            time; when both are given and differ, the spliced records are
            copied into ``checkpoint`` so it stands alone.
        checkpoint_every:
            Optional *mid-run* snapshot period in training batches.  Each run
            then snapshots its full session state every N batches into a
            per-run directory under ``snapshot_dir`` (default:
            ``<checkpoint>.snapshots/``), and a resumed study re-enters
            partially completed runs from their latest snapshot — bit-
            identically — instead of restarting them from scratch.
        snapshot_dir:
            Root directory of the per-run session snapshots (only meaningful
            with ``checkpoint_every``).

        Results are ordered by configuration index regardless of the order
        runs complete in.
        """
        specs = self.build_specs(configurations, name_key)
        if checkpoint_every is not None and checkpoint_every > 0:
            root = self._snapshot_root(checkpoint, resume, snapshot_dir)
            specs = [
                replace(
                    spec,
                    checkpoint_dir=str(self._run_snapshot_dir(root, index, spec.name)),
                    checkpoint_every=int(checkpoint_every),
                )
                for index, spec in enumerate(specs)
            ]
        completed: Dict[str, RunResult] = {}
        if resume is not None:
            completed = JsonlCheckpoint(resume).load()
        sink = JsonlCheckpoint(checkpoint if checkpoint is not None else resume) if (
            checkpoint is not None or resume is not None
        ) else None

        pending: List[RunSpec] = []
        resumed: List[RunResult] = []
        for spec in specs:
            record = completed.get(spec.name)
            if record is not None and self._record_matches_spec(record, spec):
                resumed.append(record)
            else:
                if record is not None:
                    _LOGGER.warning(
                        "checkpointed run %s does not match the current configuration "
                        "(seed/workload/overrides changed); re-executing",
                        spec.name,
                    )
                    completed.pop(spec.name)
                pending.append(spec)
        if resumed:
            _LOGGER.info(
                "%s: resuming — %d/%d runs already checkpointed",
                self.study_name,
                len(resumed),
                len(specs),
            )
        # A fresh checkpoint file must stand alone for future resumes: seed it
        # with the records spliced in from a *different* resume file.
        if sink is not None and resume is not None and sink.path.resolve() != Path(resume).resolve():
            for record in resumed:
                sink.append(record)

        executor = get_executor(self.backend, max_workers=self.max_workers, cache=self._cache)
        self.full_results = {}
        n_finished = 0

        def on_record(index: int, record: RunResult) -> None:
            nonlocal n_finished
            n_finished += 1
            _LOGGER.info(
                "finished %s (%d/%d, backend=%s)", record.name, n_finished, len(pending), self.backend
            )
            if sink is not None:
                sink.append(record)
            if self.on_result is not None:
                self.on_result(record)

        records = executor.execute(pending, on_record)
        if isinstance(executor, SerialExecutor):
            self.full_results = executor.full_results

        by_name = dict(completed)
        by_name.update({record.name: record for record in records})
        results = StudyResults(study=self.study_name)
        for spec in specs:
            results.add(by_name[spec.name])
        return results
