"""Pluggable study-execution engine: run specs, executor backends, checkpoints.

The paper's studies are grids of *independent* Melissa runs driven by a
Snakemake workflow (Appendix B.2) — embarrassingly parallel work.  This module
is the in-Python equivalent of that workflow engine:

* :class:`RunSpec` — one run of a study as a picklable value object: a name,
  the serialized base configuration (``OnlineTrainingConfig.to_dict()``) and a
  flat override dict.  Workers rebuild the real configuration with
  :meth:`RunSpec.build_config`, so specs can cross process boundaries.
* :class:`StudyInputCache` — per-process cache of the expensive study inputs
  (solver factorisation, fixed Halton validation set), keyed by scenario so
  multi-workload studies still share them within one worker.
* :class:`SerialExecutor` / :class:`MultiprocessExecutor` /
  :class:`SharedMemoryExecutor` — the three :class:`Executor` backends.
  The serial backend keeps the full
  :class:`~repro.api.session.OnlineTrainingResult` (model included)
  in-process; the multiprocess backend ships only the picklable
  :class:`~repro.workflow.results.RunResult` back from the workers; the
  shared-memory backend additionally shares the study inputs and result
  series through ``multiprocessing.shared_memory`` blocks
  (:mod:`repro.workflow.shm`) so nothing large is pickled in either
  direction.
* :class:`JsonlCheckpoint` — an append-only JSONL record of completed runs,
  written as results finish (in completion order) and read back by
  ``StudyRunner.run_all(..., resume=...)`` to skip completed runs after a
  crash or interruption.

Runs are deterministic functions of their configuration (every RNG stream is
seeded from ``config.seed``), so the two backends produce bit-identical
metrics and series for the same specs — except for the wall-clock
:data:`TIMING_METRICS`, which are excluded from any equality contract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.api.config import OnlineTrainingConfig
from repro.api.session import OnlineTrainingResult
from repro.breed.samplers import BreedConfig
from repro.melissa.run import run_online_training
from repro.solvers.base import Solver
from repro.surrogate.validation import ValidationSet, validation_set_for_workload
from repro.utils.logging import get_logger
from repro.utils.timer import Timer
from repro.workflow import faults
from repro.workflow.results import RunResult

__all__ = [
    "BACKENDS",
    "Executor",
    "JsonlCheckpoint",
    "MultiprocessExecutor",
    "RunSpec",
    "SerialExecutor",
    "SharedInputCache",
    "SharedMemoryExecutor",
    "StudyInputCache",
    "TIMING_METRICS",
    "apply_overrides",
    "config_digest",
    "effective_worker_count",
    "execute_spec",
    "get_executor",
]

_LOGGER = get_logger("workflow")

#: metric keys measuring wall-clock time — the only RunResult content that is
#: *not* bit-identical across executor backends / repeat runs
TIMING_METRICS = frozenset({"elapsed_seconds", "steering_seconds"})

#: configuration keys that live on the nested BreedConfig rather than the run
#: config (derived from the dataclass so newly added fields stay overridable)
_BREED_KEYS = frozenset(BreedConfig.__dataclass_fields__)


def apply_overrides(base: OnlineTrainingConfig, overrides: Dict[str, Any]) -> OnlineTrainingConfig:
    """Build a run configuration from a base config plus a flat override dict.

    Keys matching Breed hyper-parameters (any field of :class:`BreedConfig`,
    e.g. ``sigma``, ``period``, ``window``, ``r_start``) are applied to the
    nested breed configuration; keys starting with ``_`` are study metadata
    and are ignored; everything else must be a field of
    :class:`~repro.api.config.OnlineTrainingConfig` (including ``workload``).
    """
    run_kwargs: Dict[str, Any] = {}
    breed_kwargs: Dict[str, Any] = {}
    for key, value in overrides.items():
        if key.startswith("_"):
            continue
        if key in _BREED_KEYS:
            breed_kwargs[key] = value
        else:
            if key not in OnlineTrainingConfig.__dataclass_fields__:
                raise KeyError(f"unknown configuration key {key!r}")
            run_kwargs[key] = value
    breed = base.breed
    if breed_kwargs:
        # dataclasses.replace keeps every non-overridden field — including
        # ones added to BreedConfig after this function was written.
        breed = replace(breed, **breed_kwargs)
    return replace(base, breed=breed, **run_kwargs)


# ---------------------------------------------------------------------------
# Run specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One run of a study, in a form that can cross process boundaries.

    ``config`` is the serialized *base* configuration of the study
    (:meth:`OnlineTrainingConfig.to_dict` output); ``overrides`` is the flat
    per-run override dict understood by :func:`apply_overrides`.  Keeping the
    two separate (instead of serializing the merged configuration) preserves
    the study metadata keys (``_factor``/``_value``/``_name``) that result
    tables group by.

    ``checkpoint_dir``/``checkpoint_every`` enable *mid-run* session
    snapshots for this spec (see :mod:`repro.checkpoint`).  They live on the
    spec — not in the overrides — because they are workflow plumbing, not
    part of the run's identity: the configuration fingerprint ignores them,
    and the checkpointed ``RunResult.config`` stays free of host paths.
    """

    name: str
    config: Dict[str, Any] = field(default_factory=dict)
    overrides: Dict[str, Any] = field(default_factory=dict)
    #: per-run session-snapshot directory (None → no mid-run checkpointing)
    checkpoint_dir: Optional[str] = None
    #: session-snapshot period in training batches
    checkpoint_every: int = 0

    def build_config(self) -> OnlineTrainingConfig:
        """Rebuild the effective run configuration (base ∘ overrides)."""
        config = apply_overrides(OnlineTrainingConfig.from_dict(self.config), self.overrides)
        if self.checkpoint_dir is not None and self.checkpoint_every > 0:
            config = replace(
                config,
                checkpoint_dir=str(self.checkpoint_dir),
                checkpoint_every=int(self.checkpoint_every),
            )
        return config


def config_digest(config: OnlineTrainingConfig) -> str:
    """Short stable fingerprint of an effective run configuration.

    Stamped onto each :class:`RunResult` so checkpoint/resume can detect that
    a record was produced by a different configuration — run names omit the
    base config entirely, and the override dict only covers the varied keys.
    Delegates to :meth:`OnlineTrainingConfig.digest`, which excludes the
    checkpoint-plumbing fields, so a run fingerprints identically whether or
    not it snapshots itself.
    """
    return config.digest()


# ---------------------------------------------------------------------------
# Shared-input cache
# ---------------------------------------------------------------------------


class StudyInputCache:
    """Per-process cache of a study's expensive inputs.

    Solvers (the implicit schemes pre-factorise their linear system) and the
    fixed Halton validation set are deterministic functions of the scenario
    — workload key and options, grid geometry, parameter bounds, validation
    budget — so they are shared across every run of that scenario.  Each
    worker process owns one instance; the serial backend shares one with the
    :class:`~repro.workflow.study.StudyRunner` driving it.
    """

    def __init__(self) -> None:
        self._entries: Dict[Any, Tuple[Solver, Optional[ValidationSet]]] = {}

    @staticmethod
    def key(config: OnlineTrainingConfig) -> Any:
        # repr-ed options keep the key hashable for arbitrary JSON-style
        # values (lists, nested dicts).
        return (
            config.workload,
            repr(sorted(config.workload_options.items())),
            config.heat,
            config.bounds,
            config.n_validation_trajectories,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def inputs(self, config: OnlineTrainingConfig) -> Tuple[Solver, Optional[ValidationSet]]:
        """Solver and validation set for ``config``, built once per scenario."""
        key = self.key(config)
        if key not in self._entries:
            workload = config.build_workload()
            solver = workload.build_solver()
            validation = validation_set_for_workload(
                workload, config.n_validation_trajectories, solver=solver
            )
            self._entries[key] = (solver, validation)
        return self._entries[key]


def execute_spec(
    spec: RunSpec, cache: Optional[StudyInputCache] = None
) -> Tuple[RunResult, OnlineTrainingResult]:
    """Execute one run spec and package its :class:`RunResult` record.

    This is the single run-execution path of the engine: the serial backend
    calls it in-process, the multiprocess backend calls it inside each worker
    (through :func:`_execute_spec_in_worker`).
    """
    # Deterministic crash point for the kill-and-resume matrix: fires in
    # whichever process executes the run (driver or worker).  One env lookup
    # when unarmed — see repro.workflow.faults.
    faults.maybe_inject("run", spec.name)
    config = spec.build_config()
    solver, validation = (cache if cache is not None else StudyInputCache()).inputs(config)
    timer = Timer(name=spec.name)
    # Per-run telemetry attribution: counter snapshots around the run turn the
    # process-wide registry into per-run increments (workers run specs
    # sequentially, so every increment between the snapshots belongs to this
    # run).  Purely observational — absent entirely when metrics are off.
    metrics_on = telemetry.metrics_enabled()
    counters_before = telemetry.metrics().counter_values() if metrics_on else {}
    tracer = telemetry.tracer()
    with timer.span(), tracer.span("study.run", cat="study", run=spec.name):
        if config.checkpoint_dir:
            # Fault-tolerant path: re-enter a partially completed run from its
            # latest session snapshot instead of restarting it, and keep
            # snapshotting while it runs (session.run attaches the policy).
            from repro.checkpoint import resume_or_start

            session = resume_or_start(config, solver=solver, validation_set=validation)
            result = session.run()
        else:
            result = run_online_training(config, solver=solver, validation_set=validation)
    run_telemetry: Dict[str, float] = {}
    if metrics_on:
        run_telemetry = telemetry.counter_delta(
            counters_before, telemetry.metrics().counter_values()
        )
        run_telemetry["_worker_pid"] = float(os.getpid())
    tracer.flush()
    record = RunResult(
        name=spec.name,
        config=dict(spec.overrides),
        metrics={
            "final_train_loss": result.final_train_loss,
            "final_validation_loss": result.final_validation_loss,
            "overfit_gap": result.overfit_gap,
            "iterations": float(result.history.train_iterations[-1]) if result.history.train_iterations else 0.0,
            "steering_events": float(len(result.steering_records)),
            "parameter_overwrites": float(result.launcher_summary.get("overwrites", 0)),
            "uniform_fraction": result.uniform_fraction(),
            "steering_seconds": result.steering_seconds,
            "elapsed_seconds": timer.total,
        },
        series={
            "train_iterations": [float(i) for i in result.history.train_iterations],
            "train_losses": list(result.history.train_losses),
            "validation_iterations": [float(i) for i in result.history.validation_iterations],
            "validation_losses": list(result.history.validation_losses),
        },
        workload=config.workload,
        seed=config.seed,
        digest=config_digest(config),
        telemetry=run_telemetry,
    )
    return record, result


# ---------------------------------------------------------------------------
# Executor backends
# ---------------------------------------------------------------------------

#: callback invoked as each run finishes: ``(spec_index, record)``.
#: Called in *completion* order, which for the process backend need not be
#: spec order.
OnRecord = Callable[[int, RunResult], None]


class Executor(Protocol):
    """Study-execution backend: run every spec, return records in spec order."""

    def execute(
        self, specs: Sequence[RunSpec], on_record: Optional[OnRecord] = None
    ) -> List[RunResult]:
        """Run ``specs`` and return their records, re-ordered to spec order."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """In-process backend: one run after another, full results retained.

    ``full_results`` maps run name → :class:`OnlineTrainingResult` for every
    spec executed by this instance — experiments that need the trained model
    or the executed parameter vectors (fig4, fig6, overhead) read it after
    the study completes.  Nothing needs to be picklable on this path.
    """

    def __init__(self, cache: Optional[StudyInputCache] = None, keep_full_results: bool = True) -> None:
        self.cache = cache if cache is not None else StudyInputCache()
        self.keep_full_results = keep_full_results
        self.full_results: Dict[str, OnlineTrainingResult] = {}

    def execute(
        self, specs: Sequence[RunSpec], on_record: Optional[OnRecord] = None
    ) -> List[RunResult]:
        records: List[RunResult] = []
        for index, spec in enumerate(specs):
            record, full = execute_spec(spec, self.cache)
            if self.keep_full_results:
                self.full_results[spec.name] = full
            if on_record is not None:
                on_record(index, record)
            records.append(record)
        return records


# Worker-process state: one StudyInputCache per worker, living for the
# lifetime of the pool so solver factorisations and validation sets are
# shared across every run the worker executes (not re-done per run).
_WORKER_CACHE: Optional[StudyInputCache] = None


def _execute_spec_in_worker(spec: RunSpec) -> RunResult:
    """Process-pool entry point: run one spec against the worker-local cache."""
    global _WORKER_CACHE
    if _WORKER_CACHE is None:
        _WORKER_CACHE = StudyInputCache()
    record, _ = execute_spec(spec, _WORKER_CACHE)
    return record


class MultiprocessExecutor:
    """``concurrent.futures.ProcessPoolExecutor``-backed parallel backend.

    Each worker rebuilds configurations from the picklable :class:`RunSpec`
    and keeps a worker-local :class:`StudyInputCache`; only the
    :class:`RunResult` record crosses back (the trained model stays in the
    worker).  Records are handed to ``on_record`` in completion order — the
    checkpoint stream — and returned re-ordered to spec order, so study
    results are deterministic regardless of scheduling.

    Workers resolve registry keys against a freshly imported ``repro``:
    workloads/samplers registered at runtime (``@register_workload`` in a
    script) are only visible to them under the ``fork`` start method.
    Under ``spawn``/``forkserver`` — macOS, Windows, and Linux from
    Python 3.14 where ``forkserver`` becomes the default — custom
    registrations must live in an importable module, or use the serial
    backend.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def execute(
        self, specs: Sequence[RunSpec], on_record: Optional[OnRecord] = None
    ) -> List[RunResult]:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        if not specs:
            return []
        records: List[Optional[RunResult]] = [None] * len(specs)
        max_workers = effective_worker_count(self.max_workers, len(specs), backend="process")
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_execute_spec_in_worker, spec): index
                for index, spec in enumerate(specs)
            }
            for future in as_completed(futures):
                index = futures[future]
                record = future.result()
                records[index] = record
                if on_record is not None:
                    on_record(index, record)
        return [record for record in records if record is not None]


# ---------------------------------------------------------------------------
# Shared-memory backend
# ---------------------------------------------------------------------------

#: test-only hook: a worker whose spec name equals this env var SIGKILLs
#: itself instead of running, so the worker-crash path is deterministic
_SHM_CRASH_ENV = "REPRO_SHM_TEST_CRASH_RUN"


def effective_worker_count(
    max_workers: Optional[int], n_specs: int, backend: str
) -> int:
    """Resolve a worker-pool size and log it once per study.

    ``None`` defaults to ``os.cpu_count()``; either way the count is clamped
    to ``[1, n_specs]`` — more workers than runs only cost startup time.  The
    single log line is what makes scaling numbers readable off study logs.
    """
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = max(1, min(int(workers), n_specs))
    _LOGGER.info(
        "%s backend: %d worker(s) for %d run(s)%s",
        backend,
        workers,
        n_specs,
        "" if max_workers is not None else " (defaulted to CPU count)",
    )
    return workers


class SharedInputCache(StudyInputCache):
    """Worker-side input cache backed by :class:`SharedStudyInputs`.

    Solvers are rebuilt locally (their factorisations are not shareable
    objects), but validation sets — the expensive input, requiring full
    solver trajectories over the Halton set — come zero-copy from the
    parent's shared blocks whenever the scenario is known there.
    """

    def __init__(self, shared: "SharedStudyInputs") -> None:  # noqa: F821
        super().__init__()
        self._shared = shared

    def inputs(self, config: OnlineTrainingConfig) -> Tuple[Solver, Optional[ValidationSet]]:
        key = self.key(config)
        if key not in self._entries:
            workload = config.build_workload()
            solver = workload.build_solver()
            if key in self._shared:
                validation = self._shared.validation_set(key)
            else:  # scenario unknown to the parent (defensive fallback)
                validation = validation_set_for_workload(
                    workload, config.n_validation_trajectories, solver=solver
                )
            self._entries[key] = (solver, validation)
        return self._entries[key]


def _estimated_series_floats(config: OnlineTrainingConfig) -> int:
    """Upper bound on one run's result-series floats (ring slot sizing).

    Train series record at most one point per iteration; validation series
    one point per ``validation_period`` plus the watermark/final points.
    Underestimates are safe — oversized series fall back to pickling.
    """
    max_iterations = int(config.max_iterations)
    validation_points = max_iterations // max(1, int(config.validation_period)) + 2
    return 2 * max_iterations + 2 * validation_points + 16


def _shm_worker_main(task_queue, result_queue, free_slots, inputs_manifest, ring_manifest):
    """Shared-memory pool worker: attach once, stream runs through the ring."""
    from repro.workflow.shm import SharedResultRing, SharedStudyInputs

    shared = SharedStudyInputs.attach(inputs_manifest)
    ring = SharedResultRing.attach(ring_manifest)
    cache = SharedInputCache(shared)
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            index, spec = task
            try:
                if os.environ.get(_SHM_CRASH_ENV) == spec.name:  # pragma: no cover
                    import signal

                    os.kill(os.getpid(), signal.SIGKILL)
                record, _ = execute_spec(spec, cache)
                series = {
                    key: np.asarray(values, dtype=np.float64)
                    for key, values in record.series.items()
                }
                slot = free_slots.get()
                layout = ring.try_write(slot, series)
                if layout is None:
                    # Series exceed the preallocated slot: recycle it and
                    # fall back to pickling the full record.
                    free_slots.put(slot)
                    result_queue.put(("inline", index, record, None, None))
                else:
                    record = replace(record, series={})
                    result_queue.put(("slot", index, record, slot, layout))
            except Exception:  # noqa: BLE001 - report, keep the worker alive
                import traceback

                result_queue.put(("error", index, spec.name, traceback.format_exc(), None))
    finally:
        ring.close()
        shared.close()


class SharedMemoryExecutor:
    """Zero-copy parallel backend over ``multiprocessing.shared_memory``.

    Differences from :class:`MultiprocessExecutor`, all invisible to callers
    (records are bit-identical and arrive through the same ``on_record``
    completion stream):

    * the parent builds each distinct scenario's validation set **once** and
      publishes it through :class:`~repro.workflow.shm.SharedStudyInputs`;
      workers attach zero-copy instead of re-running the solver over the
      validation trajectories per worker process,
    * result series return through a preallocated
      :class:`~repro.workflow.shm.SharedResultRing` — workers write float
      arrays in place and send only run metadata; series too large for a
      ring slot transparently fall back to pickling,
    * worker processes are plain ``multiprocessing.Process`` loops over a
      task queue, so a crashed worker (OOM kill, segfault) is detected and
      reported as a ``RuntimeError`` instead of hanging the study, with all
      shared segments cleaned up in every path.

    The registry-visibility caveat of the process backend applies unchanged
    (workloads registered at runtime need ``fork`` or an importable module).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[StudyInputCache] = None,
        slot_floats: Optional[int] = None,
    ) -> None:
        self.max_workers = max_workers
        self.cache = cache if cache is not None else StudyInputCache()
        #: override of the per-slot ring capacity (None → estimated bound)
        self.slot_floats = slot_floats

    def execute(
        self, specs: Sequence[RunSpec], on_record: Optional[OnRecord] = None
    ) -> List[RunResult]:
        import multiprocessing as mp
        import queue as queue_module

        from repro.workflow.shm import SharedResultRing, SharedStudyInputs

        if not specs:
            return []
        max_workers = effective_worker_count(self.max_workers, len(specs), backend="shm")

        # Build every distinct scenario's inputs once, in the parent, and
        # publish the validation arrays as shared blocks.
        configs = [spec.build_config() for spec in specs]
        entries: Dict[Any, Optional[ValidationSet]] = {}
        for config in configs:
            key = StudyInputCache.key(config)
            if key not in entries:
                entries[key] = self.cache.inputs(config)[1]
        shared = SharedStudyInputs.build(entries.items())

        slot_floats = self.slot_floats
        if slot_floats is None:
            slot_floats = max(_estimated_series_floats(config) for config in configs)
        ring = SharedResultRing(
            n_slots=min(len(specs), 2 * max_workers), slot_floats=slot_floats
        )

        ctx = mp.get_context()
        task_queue = ctx.Queue()
        result_queue = ctx.Queue()
        free_slots = ctx.Queue()
        for slot in range(ring.n_slots):
            free_slots.put(slot)
        workers = [
            ctx.Process(
                target=_shm_worker_main,
                args=(task_queue, result_queue, free_slots,
                      shared.manifest(), ring.manifest()),
                name=f"shm-worker-{i}",
                daemon=True,
            )
            for i in range(max_workers)
        ]
        records: List[Optional[RunResult]] = [None] * len(specs)
        try:
            for worker in workers:
                worker.start()
            for index, spec in enumerate(specs):
                task_queue.put((index, spec))
            for _ in workers:
                task_queue.put(None)

            n_done = 0
            while n_done < len(specs):
                try:
                    message = result_queue.get(timeout=0.1)
                except queue_module.Empty:
                    dead = [w for w in workers if not w.is_alive() and w.exitcode not in (0, None)]
                    if dead:
                        raise RuntimeError(
                            f"shm worker(s) {[w.name for w in dead]} died "
                            f"(exit codes {[w.exitcode for w in dead]}) with "
                            f"{len(specs) - n_done} run(s) outstanding"
                        )
                    continue
                kind, index = message[0], message[1]
                if kind == "error":
                    _, _, name, trace, _ = message
                    raise RuntimeError(f"run {name!r} failed in shm worker:\n{trace}")
                _, _, record, slot, layout = message
                if kind == "slot":
                    record = replace(record, series=ring.read(slot, layout))
                    free_slots.put(slot)
                records[index] = record
                n_done += 1
                if on_record is not None:
                    on_record(index, record)
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            for worker in workers:
                if worker.pid is not None:
                    worker.join(timeout=10.0)
            # Draining the queues lets their feeder threads exit cleanly.
            for q in (task_queue, result_queue, free_slots):
                q.cancel_join_thread()
                q.close()
            try:
                ring.unlink()
            finally:
                shared.unlink()
        return [record for record in records if record is not None]


#: registry of executor-backend names accepted by StudyRunner / the CLI
BACKENDS = ("serial", "process", "shm")


def get_executor(
    backend: str = "serial",
    max_workers: Optional[int] = None,
    cache: Optional[StudyInputCache] = None,
) -> Executor:
    """Construct the executor backend named ``backend``."""
    if backend == "serial":
        return SerialExecutor(cache=cache)
    if backend == "process":
        return MultiprocessExecutor(max_workers=max_workers)
    if backend == "shm":
        # The caller's cache seeds the parent-side input build, so a runner
        # that already built its scenario inputs shares instead of redoing.
        return SharedMemoryExecutor(max_workers=max_workers, cache=cache)
    raise ValueError(f"unknown executor backend {backend!r}; options: {BACKENDS}")


# ---------------------------------------------------------------------------
# JSONL checkpointing
# ---------------------------------------------------------------------------


class JsonlCheckpoint:
    """Append-only JSONL record of completed runs.

    One line per completed :class:`RunResult`, written (and flushed) as each
    run finishes so a killed study loses at most the in-flight runs.  Loading
    tolerates a truncated final line — the tail a crash mid-write leaves
    behind — and keeps the *last* record per name, so re-running a study into
    the same file is harmless.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> Dict[str, RunResult]:
        """Completed runs keyed by name (empty when the file is absent)."""
        completed: Dict[str, RunResult] = {}
        if not self.path.exists():
            return completed
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                _LOGGER.warning("skipping truncated checkpoint line in %s", self.path)
                continue
            record = RunResult.from_dict(payload)
            completed[record.name] = record
        return completed

    def append(self, record: RunResult) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as stream:
            stream.write(json.dumps(record.to_dict()) + "\n")
            stream.flush()
