"""Experiment orchestration: configuration grids, study runner, result records."""

from repro.workflow.grid import ParameterGrid, one_factor_at_a_time
from repro.workflow.results import RunResult, StudyResults
from repro.workflow.study import StudyRunner, apply_overrides

__all__ = [
    "ParameterGrid",
    "one_factor_at_a_time",
    "RunResult",
    "StudyResults",
    "StudyRunner",
    "apply_overrides",
]
