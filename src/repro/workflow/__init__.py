"""Experiment orchestration: configuration grids, study runner, executors, results."""

from repro.workflow.executor import (
    BACKENDS,
    Executor,
    JsonlCheckpoint,
    MultiprocessExecutor,
    RunSpec,
    SerialExecutor,
    SharedInputCache,
    SharedMemoryExecutor,
    StudyInputCache,
    TIMING_METRICS,
    execute_spec,
    get_executor,
)
from repro.workflow.grid import ParameterGrid, one_factor_at_a_time
from repro.workflow.results import RunResult, StudyResults
from repro.workflow.shm import (
    SharedArrayPool,
    SharedArrayRef,
    SharedResultRing,
    SharedStudyInputs,
)
from repro.workflow.study import StudyRunner, apply_overrides

__all__ = [
    "BACKENDS",
    "Executor",
    "JsonlCheckpoint",
    "MultiprocessExecutor",
    "ParameterGrid",
    "RunResult",
    "RunSpec",
    "SerialExecutor",
    "SharedArrayPool",
    "SharedArrayRef",
    "SharedInputCache",
    "SharedMemoryExecutor",
    "SharedResultRing",
    "SharedStudyInputs",
    "StudyInputCache",
    "StudyResults",
    "StudyRunner",
    "TIMING_METRICS",
    "apply_overrides",
    "execute_spec",
    "get_executor",
    "one_factor_at_a_time",
]
