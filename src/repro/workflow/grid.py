"""Parameter-grid generation (the Snakemake-configuration substitute).

The paper's systematic studies are grids of Melissa run configurations: one
axis varies (model size, or one Breed hyper-parameter) while everything else
stays fixed (Table 1).  :class:`ParameterGrid` expands such grids into
explicit configuration dictionaries, and :func:`one_factor_at_a_time` builds
the paper's "vary one knob, fix the rest" study layout.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence

__all__ = ["ParameterGrid", "one_factor_at_a_time"]


@dataclass
class ParameterGrid:
    """Cartesian product of named value lists plus fixed base values.

    Example
    -------
    >>> grid = ParameterGrid(base={"seed": 0}, axes={"H": [16, 32], "L": [1, 2]})
    >>> len(list(grid))
    4
    """

    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, Sequence[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, values in self.axes.items():
            if len(values) == 0:
                raise ValueError(f"axis {name!r} has no values")
            if name in self.base:
                raise ValueError(f"axis {name!r} conflicts with a fixed base value")

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[name] for name in names)):
            config = dict(self.base)
            config.update(dict(zip(names, combo)))
            yield config

    def configurations(self) -> List[Dict[str, Any]]:
        return list(self)

    def with_base(self, **extra: Any) -> "ParameterGrid":
        base = dict(self.base)
        base.update(extra)
        return ParameterGrid(base=base, axes=dict(self.axes))


def one_factor_at_a_time(
    base: Mapping[str, Any],
    factors: Mapping[str, Sequence[Any]],
) -> List[Dict[str, Any]]:
    """Expand a one-factor-at-a-time study.

    For every factor, every one of its values produces a configuration where
    the remaining parameters keep their ``base`` value.  Each configuration is
    tagged with ``_factor`` / ``_value`` so result tables can be grouped per
    sub-plot exactly like Figure 3b.
    """
    configs: List[Dict[str, Any]] = []
    for factor, values in factors.items():
        if factor not in base:
            raise KeyError(f"factor {factor!r} has no base value")
        if len(values) == 0:
            raise ValueError(f"factor {factor!r} has no values")
        for value in values:
            config = dict(base)
            config[factor] = value
            config["_factor"] = factor
            config["_value"] = value
            configs.append(config)
    return configs
