"""Deterministic fault injection for the kill-and-resume test matrix.

The study/campaign resilience tests need to crash a *chosen* run in a
*chosen* process — the serial driver, a process/shm worker, or the campaign
orchestrator at a run boundary — deterministically and from outside the
process (env vars cross every backend's worker boundary for free, the same
trick the shm crash tests use).  This module is the single injection point:

* ``REPRO_FAULT_TOKEN`` — ``"<point>:<run name>"``; the fault fires when
  :func:`maybe_inject` is called with a matching point/name.  Points wired
  into the engine: ``run`` (top of
  :func:`~repro.workflow.executor.execute_spec`, i.e. in whichever process
  executes the run) and ``record`` (the campaign driver, after a run's
  record is durable).
* ``REPRO_FAULT_MODE`` — ``"sigkill"`` (default: the hosting process dies
  mid-flight, nothing flushes) or ``"raise"`` (an :class:`InjectedFault`
  propagates through the normal error paths; it lives here, importable from
  ``repro``, precisely so process-backend workers can pickle it back).
* ``REPRO_FAULT_ARM`` — optional path to an *arm file*; the fault only fires
  while the file exists and consumes it atomically when it does, making
  ``raise`` faults one-shot (a retried node succeeds on its second attempt).

Production code calls :func:`maybe_inject` unconditionally — with the env
unset it is one dict lookup, and the engine's determinism contract is
untouched because a fired fault never lets the run produce a result at all.

Test-facing helpers (building these env dicts, driving subprocesses,
reaping leaked workers) live in ``tests/campaign/faults.py``.
"""

from __future__ import annotations

import os
import signal

__all__ = ["ARM_ENV", "InjectedFault", "MODE_ENV", "TOKEN_ENV", "maybe_inject"]

TOKEN_ENV = "REPRO_FAULT_TOKEN"
MODE_ENV = "REPRO_FAULT_MODE"
ARM_ENV = "REPRO_FAULT_ARM"


class InjectedFault(RuntimeError):
    """A deliberately injected failure (test harness only)."""


def maybe_inject(point: str, name: str) -> None:
    """Fire the armed fault if ``point:name`` matches ``REPRO_FAULT_TOKEN``."""
    token = os.environ.get(TOKEN_ENV)
    if token is None or token != f"{point}:{name}":
        return
    arm = os.environ.get(ARM_ENV)
    if arm is not None:
        try:
            os.unlink(arm)  # atomic consume: exactly one firing per arming
        except FileNotFoundError:
            return
    mode = os.environ.get(MODE_ENV, "sigkill")
    if mode == "raise":
        raise InjectedFault(f"injected fault at {point}:{name}")
    if mode == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover
    raise ValueError(f"unknown {MODE_ENV} {mode!r} (use 'sigkill' or 'raise')")
