"""Study result records and persistence.

Study runners return :class:`RunResult` records (one per executed
configuration) grouped into a :class:`StudyResults` container that can render
plain-text tables (the benches print these) and round-trip to JSON for
post-hoc analysis.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["RunResult", "StudyResults"]


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {k: _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    return value


@dataclass
class RunResult:
    """Outcome of one study configuration.

    ``workload`` and ``seed`` record the effective scenario and RNG seed of
    the run (after overrides), so multi-workload study JSON stays
    self-describing after a :meth:`StudyResults.to_json` round-trip even when
    the override dict never mentioned them.
    """

    name: str
    config: Dict[str, Any]
    metrics: Dict[str, float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    workload: str = "heat2d"
    seed: int = 0
    #: fingerprint of the effective run configuration (checkpoint validation)
    digest: str = ""
    #: per-run telemetry counter deltas (empty unless ``repro.telemetry``
    #: metrics were enabled in the executing worker); observability data,
    #: excluded — like the wall-clock timing metrics — from every
    #: bit-identity contract.  Keys starting with ``_`` are worker metadata
    #: (e.g. ``_worker_pid``) and are skipped by telemetry summaries.
    telemetry: Dict[str, float] = field(default_factory=dict)

    def metric(self, key: str, default: float = float("nan")) -> float:
        return float(self.metrics.get(key, default))

    def to_dict(self) -> Dict[str, Any]:
        return _to_jsonable(asdict(self))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Rebuild a record from :meth:`to_dict` output (old payloads lack
        ``workload``/``seed`` and take the defaults)."""
        return cls(
            name=data["name"],
            config=dict(data.get("config", {})),
            metrics=dict(data.get("metrics", {})),
            series={k: list(v) for k, v in data.get("series", {}).items()},
            workload=data.get("workload", "heat2d"),
            seed=int(data.get("seed", 0)),
            digest=data.get("digest", ""),
            telemetry={k: float(v) for k, v in data.get("telemetry", {}).items()},
        )


@dataclass
class StudyResults:
    """Collection of run results for one study."""

    study: str
    runs: List[RunResult] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        self.runs.append(result)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.runs)

    def filter(self, **config_values: Any) -> List[RunResult]:
        out = []
        for run in self.runs:
            if all(run.config.get(k) == v for k, v in config_values.items()):
                out.append(run)
        return out

    def best(self, metric: str, minimize: bool = True) -> Optional[RunResult]:
        if not self.runs:
            return None
        key = lambda r: r.metric(metric)  # noqa: E731
        return min(self.runs, key=key) if minimize else max(self.runs, key=key)

    def timing_summary(self) -> Dict[str, float]:
        """Wall-clock summary over the runs' ``elapsed_seconds`` metric.

        Returns run count plus total/mean/max per-run wall seconds — the
        quantities the study-throughput bench scenarios and EXPERIMENTS
        runtime notes report.  Timing metrics are *measurement*, never part
        of any equality contract (see ``TIMING_METRICS`` in
        :mod:`repro.workflow.executor`): under the process backend the total
        is summed worker time, not the study's wall-clock span.
        """
        elapsed = [
            r.metric("elapsed_seconds") for r in self.runs if "elapsed_seconds" in r.metrics
        ]
        if not elapsed:
            return {"runs": float(len(self.runs)), "total_seconds": 0.0,
                    "mean_seconds": 0.0, "max_seconds": 0.0}
        return {
            "runs": float(len(self.runs)),
            "total_seconds": float(sum(elapsed)),
            "mean_seconds": float(sum(elapsed) / len(elapsed)),
            "max_seconds": float(max(elapsed)),
        }

    def telemetry_summary(self) -> Dict[str, float]:
        """Merged per-run telemetry counters, accumulated in spec order.

        Each run's :attr:`RunResult.telemetry` holds the counter increments
        its (possibly remote) worker attributed to that run; this sums them
        series-by-series over :attr:`runs` — which ``run_all`` always returns
        in configuration order regardless of backend or completion order, so
        the merge is deterministic.  Keys starting with ``_`` (worker
        metadata such as ``_worker_pid``) are skipped.  Empty when telemetry
        was disabled.
        """
        merged: Dict[str, float] = {}
        for run in self.runs:
            for key, value in run.telemetry.items():
                if key.startswith("_"):
                    continue
                merged[key] = merged.get(key, 0.0) + float(value)
        return merged

    # ---------------------------------------------------------------- tables
    def table(self, columns: Sequence[str], metric_columns: Sequence[str]) -> str:
        """Render a plain-text table with config columns and metric columns."""
        header = [*columns, *metric_columns]
        rows: List[List[str]] = [list(header)]
        for run in self.runs:
            row = [str(run.config.get(c, "")) for c in columns]
            row += [f"{run.metric(m):.5g}" for m in metric_columns]
            rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = []
        for index, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
            if index == 0:
                lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        return "\n".join(lines)

    # ------------------------------------------------------------ persistence
    def save_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"study": self.study, "runs": [run.to_dict() for run in self.runs]}
        path.write_text(json.dumps(payload, indent=2))
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "StudyResults":
        payload = json.loads(Path(path).read_text())
        results = cls(study=payload["study"])
        for run in payload["runs"]:
            results.add(RunResult.from_dict(run))
        return results
