"""Multivariate-normal sampling and densities.

The Breed proposal mixture uses isotropic Gaussians
``Gauss(· | λ_jk, σ² I)`` around resampled parameter locations (Eq. 11).  The
paper uses PyTorch's ``MultivariateNormal``; here the equivalent is written on
top of NumPy, with both the general full-covariance case (Cholesky) and a fast
isotropic special case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["MultivariateNormal", "IsotropicGaussian", "GaussianMixture"]


@dataclass
class MultivariateNormal:
    """Multivariate normal with full covariance.

    Parameters
    ----------
    mean:
        Location vector (d,).
    covariance:
        Symmetric positive-definite covariance matrix (d, d).
    """

    mean: np.ndarray
    covariance: np.ndarray

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=np.float64).reshape(-1)
        self.covariance = np.asarray(self.covariance, dtype=np.float64)
        d = self.mean.shape[0]
        if self.covariance.shape != (d, d):
            raise ValueError(f"covariance must be ({d}, {d}), got {self.covariance.shape}")
        try:
            self._chol = np.linalg.cholesky(self.covariance)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise ValueError("covariance matrix must be positive definite") from exc
        self._log_det = 2.0 * float(np.sum(np.log(np.diag(self._chol))))

    @property
    def dim(self) -> int:
        return self.mean.shape[0]

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        z = rng.standard_normal((size, self.dim))
        return self.mean[None, :] + z @ self._chol.T

    def log_pdf(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        diff = pts - self.mean[None, :]
        solved = np.linalg.solve(self._chol, diff.T)
        mahalanobis = np.sum(solved * solved, axis=0)
        return -0.5 * (self.dim * math.log(2.0 * math.pi) + self._log_det + mahalanobis)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        return np.exp(self.log_pdf(points))


@dataclass
class IsotropicGaussian:
    """Isotropic Gaussian ``N(mean, sigma^2 I)`` — the Breed proposal member."""

    mean: np.ndarray
    sigma: float

    def __post_init__(self) -> None:
        self.mean = np.asarray(self.mean, dtype=np.float64).reshape(-1)
        if self.sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")

    @property
    def dim(self) -> int:
        return self.mean.shape[0]

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        return self.mean[None, :] + self.sigma * rng.standard_normal((size, self.dim))

    def sample_one(self, rng: np.random.Generator) -> np.ndarray:
        return self.mean + self.sigma * rng.standard_normal(self.dim)

    def log_pdf(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        diff = pts - self.mean[None, :]
        sq = np.sum(diff * diff, axis=1) / (self.sigma**2)
        return -0.5 * (self.dim * math.log(2.0 * math.pi * self.sigma**2) + sq)

    def pdf(self, points: np.ndarray) -> np.ndarray:
        return np.exp(self.log_pdf(points))

    def with_sigma(self, sigma: float) -> "IsotropicGaussian":
        return IsotropicGaussian(self.mean.copy(), sigma)


class GaussianMixture:
    """Equal-weight mixture of isotropic Gaussians (the AMIS proposal ``q^(s)``)."""

    def __init__(self, components: Sequence[IsotropicGaussian], weights: Optional[Sequence[float]] = None):
        if not components:
            raise ValueError("mixture requires at least one component")
        self.components = list(components)
        dims = {c.dim for c in self.components}
        if len(dims) != 1:
            raise ValueError("all mixture components must share the same dimensionality")
        n = len(self.components)
        if weights is None:
            self.weights = np.full(n, 1.0 / n)
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (n,):
                raise ValueError("weights must match the number of components")
            if np.any(w < 0) or w.sum() <= 0:
                raise ValueError("weights must be non-negative and sum to a positive value")
            self.weights = w / w.sum()

    @property
    def dim(self) -> int:
        return self.components[0].dim

    def __len__(self) -> int:
        return len(self.components)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        choices = rng.choice(len(self.components), size=size, p=self.weights)
        out = np.empty((size, self.dim), dtype=np.float64)
        for i, k in enumerate(choices):
            out[i] = self.components[k].sample_one(rng)
        return out

    def pdf(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        total = np.zeros(pts.shape[0], dtype=np.float64)
        for weight, component in zip(self.weights, self.components):
            total += weight * component.pdf(pts)
        return total

    def log_pdf(self, points: np.ndarray) -> np.ndarray:
        return np.log(np.maximum(self.pdf(points), 1e-300))
