"""Axis-aligned box describing the solver input-parameter space ``Λ``.

For the 2D heat PDE case of the paper the space is
``Λ = [100, 500]^5`` (initial temperature ``T0`` and the four boundary
temperatures ``T1..T4``, in Kelvin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "ParameterBounds",
    "HEAT2D_BOUNDS",
    "HEAT1D_BOUNDS",
    "ADVECTION1D_BOUNDS",
    "ADVECTION2D_BOUNDS",
    "BURGERS_BOUNDS",
    "FISHER_BOUNDS",
]


@dataclass(frozen=True)
class ParameterBounds:
    """Hyper-rectangle ``[low_k, high_k]`` for each parameter dimension.

    Parameters
    ----------
    low, high:
        Per-dimension lower/upper bounds.  Must have the same length with
        ``low < high`` element-wise.
    names:
        Optional human-readable parameter names (used in reports).
    """

    low: Tuple[float, ...]
    high: Tuple[float, ...]
    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        low = tuple(float(v) for v in self.low)
        high = tuple(float(v) for v in self.high)
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)
        if len(low) != len(high):
            raise ValueError("low and high must have the same length")
        if len(low) == 0:
            raise ValueError("bounds must have at least one dimension")
        for lo, hi in zip(low, high):
            if not lo < hi:
                raise ValueError(f"invalid bounds: requires low < high, got [{lo}, {hi}]")
        if self.names and len(self.names) != len(low):
            raise ValueError("names must match the number of dimensions")

    # ----------------------------------------------------------- properties
    @property
    def dim(self) -> int:
        return len(self.low)

    @property
    def low_array(self) -> np.ndarray:
        return np.asarray(self.low, dtype=np.float64)

    @property
    def high_array(self) -> np.ndarray:
        return np.asarray(self.high, dtype=np.float64)

    @property
    def widths(self) -> np.ndarray:
        return self.high_array - self.low_array

    @property
    def volume(self) -> float:
        return float(np.prod(self.widths))

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.low_array + self.high_array)

    # ----------------------------------------------------------- operations
    def contains(self, point: Sequence[float], atol: float = 0.0) -> bool:
        """Whether ``point`` lies inside the box (inclusive, within ``atol``)."""
        p = np.asarray(point, dtype=np.float64)
        if p.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {p.shape}")
        return bool(np.all(p >= self.low_array - atol) and np.all(p <= self.high_array + atol))

    def contains_all(self, points: np.ndarray, atol: float = 0.0) -> bool:
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return bool(
            np.all(pts >= self.low_array[None, :] - atol)
            and np.all(pts <= self.high_array[None, :] + atol)
        )

    def clip(self, points: np.ndarray) -> np.ndarray:
        """Project points onto the box, component-wise."""
        pts = np.asarray(points, dtype=np.float64)
        return np.clip(pts, self.low_array, self.high_array)

    def scale_to_unit(self, points: np.ndarray) -> np.ndarray:
        """Map points from the box to the unit hyper-cube ``[0, 1]^d``."""
        pts = np.asarray(points, dtype=np.float64)
        return (pts - self.low_array) / self.widths

    def scale_from_unit(self, unit_points: np.ndarray) -> np.ndarray:
        """Map unit-cube points into the box."""
        pts = np.asarray(unit_points, dtype=np.float64)
        return self.low_array + pts * self.widths

    def with_names(self, names: Sequence[str]) -> "ParameterBounds":
        return ParameterBounds(self.low, self.high, tuple(names))


#: Input-parameter space of the paper's 2D heat PDE study (Appendix B.1).
HEAT2D_BOUNDS = ParameterBounds(
    low=(100.0,) * 5,
    high=(500.0,) * 5,
    names=("T0", "T1", "T2", "T3", "T4"),
)

#: Input-parameter space of the 1-D heat workloads (initial + two boundary
#: temperatures, same Kelvin range as the 2-D study).
HEAT1D_BOUNDS = ParameterBounds(
    low=(100.0,) * 3,
    high=(500.0,) * 3,
    names=("T0", "T_left", "T_right"),
)

#: Input-parameter space of the 1-D advection–diffusion workload: amplitude,
#: center and width of the initial Gaussian pulse on the periodic unit
#: interval.  Fields stay in ``[0, amplitude]`` by the maximum principle.
ADVECTION1D_BOUNDS = ParameterBounds(
    low=(0.5, 0.1, 0.03),
    high=(2.0, 0.9, 0.08),
    names=("amplitude", "center", "width"),
)

#: Input-parameter space of the 2-D advection–diffusion workload: amplitude,
#: blob center and width on the periodic unit square.
ADVECTION2D_BOUNDS = ParameterBounds(
    low=(0.5, 0.1, 0.1, 0.04),
    high=(2.0, 0.9, 0.9, 0.1),
    names=("amplitude", "center_x", "center_y", "width"),
)

#: Input-parameter space of the viscous Burgers workload: upstream/downstream
#: far-field states (``u_left > u_right`` keeps the front compressive) and
#: the initial front position.  Fields stay in ``[u_right, u_left]``.
BURGERS_BOUNDS = ParameterBounds(
    low=(0.8, 0.1, 0.25),
    high=(1.2, 0.3, 0.4),
    names=("u_left", "u_right", "x0"),
)

#: Input-parameter space of the Fisher–KPP workload: logistic reaction rate,
#: seed amplitude and seed position.  Fields stay in the invariant region
#: ``[0, 1]``.
FISHER_BOUNDS = ParameterBounds(
    low=(2.0, 0.1, 0.3),
    high=(8.0, 0.9, 0.7),
    names=("rate", "amplitude", "center"),
)
