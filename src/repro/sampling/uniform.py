"""Uniform sampling over the parameter box.

This is both the paper's *Random* steering baseline and the exploration
component mixed into Breed proposals (the ``U(Λ)`` term of Section 3.2).
"""

from __future__ import annotations

import numpy as np

from repro.sampling.bounds import ParameterBounds

__all__ = ["uniform_in_bounds", "latin_hypercube_in_bounds"]


def uniform_in_bounds(
    n_points: int,
    bounds: ParameterBounds,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n_points`` i.i.d. uniform points from the box."""
    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    unit = rng.random((n_points, bounds.dim))
    return bounds.scale_from_unit(unit)


def latin_hypercube_in_bounds(
    n_points: int,
    bounds: ParameterBounds,
    rng: np.random.Generator,
) -> np.ndarray:
    """Latin-hypercube sample (stratified uniform), used in ablation benches.

    Each dimension is divided into ``n_points`` equal strata; one point is
    drawn per stratum and the strata are randomly permuted per dimension.
    """
    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    if n_points == 0:
        return np.empty((0, bounds.dim), dtype=np.float64)
    unit = np.empty((n_points, bounds.dim), dtype=np.float64)
    strata = (np.arange(n_points)[:, None] + rng.random((n_points, bounds.dim))) / n_points
    for d in range(bounds.dim):
        unit[:, d] = strata[rng.permutation(n_points), d]
    return bounds.scale_from_unit(unit)
