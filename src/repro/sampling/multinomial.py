"""Weighted resampling utilities used by the AMIS/PMC step.

The paper resamples proposal locations by trialling a multinomial distribution
built from self-normalised importance weights (Eqs. 9–10).  Systematic and
stratified resampling are provided as lower-variance alternatives exercised by
the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize_weights",
    "multinomial_resample",
    "systematic_resample",
    "stratified_resample",
    "effective_sample_size",
    "entropy",
]


def normalize_weights(weights: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Self-normalise non-negative weights to sum to one.

    All-zero (or numerically negligible) weight vectors degrade gracefully to
    the uniform distribution, which matches the intended Breed behaviour early
    in training when no sample has a positive loss deviation yet.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("weights must be a 1-D array")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if not np.isfinite(total) or total <= epsilon:
        return np.full(w.shape, 1.0 / w.size)
    return w / total


def multinomial_resample(weights: np.ndarray, n_draws: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n_draws`` indices with replacement proportionally to ``weights``."""
    probabilities = normalize_weights(weights)
    return rng.choice(probabilities.size, size=n_draws, replace=True, p=probabilities)


def systematic_resample(weights: np.ndarray, n_draws: int, rng: np.random.Generator) -> np.ndarray:
    """Systematic (low-variance) resampling."""
    probabilities = normalize_weights(weights)
    positions = (rng.random() + np.arange(n_draws)) / n_draws
    cumulative = np.cumsum(probabilities)
    cumulative[-1] = 1.0  # guard against round-off
    return np.searchsorted(cumulative, positions)


def stratified_resample(weights: np.ndarray, n_draws: int, rng: np.random.Generator) -> np.ndarray:
    """Stratified resampling: one uniform draw per stratum."""
    probabilities = normalize_weights(weights)
    positions = (rng.random(n_draws) + np.arange(n_draws)) / n_draws
    cumulative = np.cumsum(probabilities)
    cumulative[-1] = 1.0
    return np.searchsorted(cumulative, positions)


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``(Σw)² / Σw²`` of a weight vector.

    The paper leaves ESS-triggered resampling to future work; we expose the
    metric so the adaptive-trigger extension bench can use it.
    """
    w = np.asarray(weights, dtype=np.float64)
    total_sq = float(w.sum()) ** 2
    sq_total = float((w * w).sum())
    if sq_total <= 0.0:
        return 0.0
    return total_sq / sq_total


def entropy(weights: np.ndarray, epsilon: float = 1e-12) -> float:
    """Shannon entropy (nats) of the normalised weight vector."""
    p = normalize_weights(weights)
    p = np.clip(p, epsilon, 1.0)
    return float(-(p * np.log(p)).sum())
