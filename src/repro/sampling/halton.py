"""Halton quasi-random sequences.

The paper's fixed validation set uses 200 trajectories whose input parameters
are "generated from a quasi-uniform Halton sequence" (Section 4).  This module
implements the radical-inverse based Halton sequence from scratch (no SciPy
``qmc`` dependency) plus a small helper to scale it into a
:class:`~repro.sampling.bounds.ParameterBounds` box.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sampling.bounds import ParameterBounds

__all__ = ["first_primes", "radical_inverse", "halton_sequence", "halton_in_bounds"]


def first_primes(count: int) -> List[int]:
    """Return the first ``count`` prime numbers (bases of the Halton sequence)."""
    if count <= 0:
        raise ValueError("count must be positive")
    primes: List[int] = []
    candidate = 2
    while len(primes) < count:
        is_prime = all(candidate % p for p in primes if p * p <= candidate)
        if is_prime:
            primes.append(candidate)
        candidate += 1
    return primes


def radical_inverse(index: int, base: int) -> float:
    """Van der Corput radical inverse of ``index`` in the given ``base``.

    ``index`` is 1-based in the conventional Halton construction (index 0 maps
    to 0.0, which clusters points at the domain corner, so callers should start
    at 1).
    """
    if base < 2:
        raise ValueError("base must be >= 2")
    if index < 0:
        raise ValueError("index must be non-negative")
    result = 0.0
    fraction = 1.0 / base
    i = index
    while i > 0:
        result += (i % base) * fraction
        i //= base
        fraction /= base
    return result


def halton_sequence(n_points: int, dim: int, skip: int = 1) -> np.ndarray:
    """Generate ``n_points`` Halton points in the unit hyper-cube ``[0, 1)^dim``.

    Parameters
    ----------
    n_points:
        Number of points.
    dim:
        Dimensionality; each dimension uses the next prime base (2, 3, 5, ...).
    skip:
        Number of initial sequence elements to discard (default 1 skips the
        all-zeros point).
    """
    if n_points < 0:
        raise ValueError("n_points must be non-negative")
    if dim <= 0:
        raise ValueError("dim must be positive")
    if skip < 0:
        raise ValueError("skip must be non-negative")
    bases = first_primes(dim)
    points = np.empty((n_points, dim), dtype=np.float64)
    for row in range(n_points):
        index = row + skip
        for col, base in enumerate(bases):
            points[row, col] = radical_inverse(index, base)
    return points


def halton_in_bounds(
    n_points: int,
    bounds: ParameterBounds,
    skip: int = 1,
    rng: Optional[np.random.Generator] = None,
    scramble: bool = False,
) -> np.ndarray:
    """Halton points scaled into a parameter box.

    ``scramble=True`` applies a random-shift (Cranley–Patterson rotation) using
    ``rng``, which decorrelates repeated validation sets across seeds while
    preserving the low-discrepancy structure.
    """
    unit = halton_sequence(n_points, bounds.dim, skip=skip)
    if scramble:
        if rng is None:
            raise ValueError("scramble=True requires an rng")
        shift = rng.random(bounds.dim)
        unit = (unit + shift[None, :]) % 1.0
    return bounds.scale_from_unit(unit)
