"""Sampling primitives: parameter boxes, Halton/uniform/Latin-hypercube
generators, Gaussian proposals and weighted resampling."""

from repro.sampling.bounds import HEAT1D_BOUNDS, HEAT2D_BOUNDS, ParameterBounds
from repro.sampling.gaussian import GaussianMixture, IsotropicGaussian, MultivariateNormal
from repro.sampling.halton import first_primes, halton_in_bounds, halton_sequence, radical_inverse
from repro.sampling.multinomial import (
    effective_sample_size,
    entropy,
    multinomial_resample,
    normalize_weights,
    stratified_resample,
    systematic_resample,
)
from repro.sampling.uniform import latin_hypercube_in_bounds, uniform_in_bounds

__all__ = [
    "HEAT1D_BOUNDS",
    "HEAT2D_BOUNDS",
    "ParameterBounds",
    "GaussianMixture",
    "IsotropicGaussian",
    "MultivariateNormal",
    "first_primes",
    "halton_in_bounds",
    "halton_sequence",
    "radical_inverse",
    "effective_sample_size",
    "entropy",
    "multinomial_resample",
    "normalize_weights",
    "stratified_resample",
    "systematic_resample",
    "latin_hypercube_in_bounds",
    "uniform_in_bounds",
]
