"""Glue between the training server and the launcher steering (Section 3.3).

The :class:`BreedController` is what the Melissa server owns.  Its job is to

* forward per-sample training losses into the steering sampler,
* decide, after every NN iteration, whether a resampling should be triggered,
* when triggered, ask the launcher for a consistent view of which simulations
  can still be re-parameterised (everything from ``S_{k+m}`` onwards, where
  ``k`` is the highest simulation id the launcher has seen and ``m`` the job
  limit), and
* push the new parameter vectors back through the launcher's
  ``update_parameters`` interface.

The controller is sampler-agnostic: with a :class:`~repro.breed.samplers.RandomSampler`
it simply never triggers, reproducing the paper's baseline behaviour with the
identical code path (so overhead comparisons are fair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.breed.samplers import ParameterSource, ResampleDecision, SteeringSampler
from repro.utils.logging import EventLog
from repro.utils.timer import Timer

__all__ = ["SteeringTarget", "SteeringRecord", "BreedController"]


class SteeringTarget(Protocol):
    """The launcher-side interface the controller steers (see §3.3)."""

    def steerable_simulation_ids(self) -> List[int]:
        """Ids of simulations whose parameters may still be replaced safely."""
        ...

    def update_parameters(self, simulation_id: int, parameters: np.ndarray, source: str) -> None:
        """Replace the input parameters of a pending simulation."""
        ...


@dataclass
class SteeringRecord:
    """Bookkeeping of one applied steering action (for analysis and tests)."""

    iteration: int
    resampling_index: int
    simulation_ids: List[int]
    sources: List[str]
    n_requested: int
    n_applied: int
    elapsed_seconds: float


@dataclass
class BreedController:
    """Owns the sampler and applies its decisions to the launcher."""

    sampler: SteeringSampler
    rng: np.random.Generator
    event_log: Optional[EventLog] = None
    #: accumulated wall-clock time spent inside resampling (overhead metric)
    steering_timer: Timer = field(default_factory=lambda: Timer(name="steering"))
    records: List[SteeringRecord] = field(default_factory=list)

    # ---------------------------------------------------------------- losses
    def observe_batch(
        self,
        iteration: int,
        simulation_ids: Sequence[int],
        timesteps: Sequence[int],
        sample_losses: Sequence[float],
        parameters: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        """Forward per-sample losses of one training batch to the sampler."""
        self.sampler.observe_batch(iteration, simulation_ids, timesteps, sample_losses, parameters)

    # -------------------------------------------------------------- steering
    def maybe_steer(self, iteration: int, target: SteeringTarget) -> Optional[SteeringRecord]:
        """Trigger-and-apply: called by the server after every NN iteration."""
        if not self.sampler.should_resample(iteration):
            return None
        with self.steering_timer.span():
            steerable = target.steerable_simulation_ids()
            if not steerable:
                if self.event_log is not None:
                    self.event_log.emit("breed", "steering_skipped", step=iteration, reason="no pending simulations")
                return None
            decision = self.sampler.resample(len(steerable), iteration, self.rng)
            if decision is None or len(decision) == 0:
                return None
            n_applied = self._apply(decision, steerable, target)
        record = SteeringRecord(
            iteration=iteration,
            resampling_index=decision.resampling_index,
            simulation_ids=list(steerable[:n_applied]),
            sources=list(decision.sources[:n_applied]),
            n_requested=len(steerable),
            n_applied=n_applied,
            elapsed_seconds=self.steering_timer.total,
        )
        self.records.append(record)
        if self.event_log is not None:
            self.event_log.emit(
                "breed",
                "steering_applied",
                step=iteration,
                n_applied=n_applied,
                n_uniform=sum(1 for s in record.sources if s == ParameterSource.MIX_UNIFORM),
                n_proposal=sum(1 for s in record.sources if s == ParameterSource.PROPOSAL),
            )
        return record

    def _apply(self, decision: ResampleDecision, steerable: List[int], target: SteeringTarget) -> int:
        n = min(len(decision), len(steerable))
        for index in range(n):
            sim_id = steerable[index]
            params = decision.parameters[index]
            target.update_parameters(sim_id, params, decision.sources[index])
            # Keep the sampler's view of parameters consistent for future windows.
            register = getattr(self.sampler, "register_parameters", None)
            if register is not None:
                register(sim_id, params)
        return n

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Sampler state plus applied-steering bookkeeping.

        The steering timer's accumulated wall-clock total is carried over so
        overhead reports cover the whole (interrupted) run; it is measurement,
        not behaviour, and stays excluded from bit-identity contracts.
        """
        return {
            "sampler": self.sampler.state_dict(),
            "steering_total_seconds": self.steering_timer.total,
            "steering_count": self.steering_timer.count,
            "records": [
                {
                    "iteration": record.iteration,
                    "resampling_index": record.resampling_index,
                    "simulation_ids": list(record.simulation_ids),
                    "sources": list(record.sources),
                    "n_requested": record.n_requested,
                    "n_applied": record.n_applied,
                    "elapsed_seconds": record.elapsed_seconds,
                }
                for record in self.records
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.sampler.load_state_dict(state["sampler"])
        self.steering_timer.total = float(state["steering_total_seconds"])
        self.steering_timer.count = int(state["steering_count"])
        self.records = [
            SteeringRecord(
                iteration=int(payload["iteration"]),
                resampling_index=int(payload["resampling_index"]),
                simulation_ids=[int(i) for i in payload["simulation_ids"]],
                sources=[str(s) for s in payload["sources"]],
                n_requested=int(payload["n_requested"]),
                n_applied=int(payload["n_applied"]),
                elapsed_seconds=float(payload["elapsed_seconds"]),
            )
            for payload in state["records"]
        ]

    # ------------------------------------------------------------- overhead
    @property
    def total_steering_seconds(self) -> float:
        """Total wall-clock time spent choosing new parameters (paper: negligible)."""
        return self.steering_timer.total

    @property
    def n_steering_events(self) -> int:
        return len(self.records)
