"""Adaptive resampling triggers (the paper's stated future work).

The published Breed uses a *static* period ``P``: resampling fires every ``P``
NN iterations, and the paper notes that "triggering resampling according to
metrics such as Effective Sample Size and/or Entropy is left for future work"
(Section 3.2) and lists an "adaptive trigger that uses the usual MCMC modeling
metrics" among the extensions (Section 4.1).

This module implements that extension so the ablation benches can compare it
against the static period:

* :class:`PeriodicTrigger` — the paper's behaviour, expressed in the same
  interface.
* :class:`AdaptiveTrigger` — fires when the *effective sample size* (or,
  optionally, the entropy) of the current window's importance weights exceeds
  a threshold fraction of the window, meaning the Q-landscape has changed
  enough that many distinct locations now carry weight and a new proposal is
  worthwhile; a cool-down enforces a minimum spacing and a cap enforces a
  maximum spacing so the trigger degrades gracefully to the periodic one.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.sampling.multinomial import effective_sample_size, entropy, normalize_weights

__all__ = ["ResamplingTrigger", "PeriodicTrigger", "AdaptiveTrigger"]


class ResamplingTrigger(abc.ABC):
    """Decides, per NN iteration, whether a Breed resampling should fire."""

    @abc.abstractmethod
    def should_fire(self, iteration: int, q_values: np.ndarray) -> bool:
        """Return True when a resampling should be triggered at ``iteration``."""

    def notify_fired(self, iteration: int) -> None:
        """Inform the trigger that a resampling was actually performed."""

    def state_dict(self) -> dict:
        """Mutable trigger state for session snapshots (stateless by default)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (no-op for stateless triggers)."""


@dataclass
class PeriodicTrigger(ResamplingTrigger):
    """Fire every ``period`` NN iterations (the paper's static behaviour)."""

    period: int = 300

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")
        self._last_fired = 0

    def should_fire(self, iteration: int, q_values: np.ndarray) -> bool:
        if iteration <= 0:
            return False
        return iteration % self.period == 0

    def notify_fired(self, iteration: int) -> None:
        self._last_fired = iteration

    def state_dict(self) -> dict:
        return {"last_fired": self._last_fired}

    def load_state_dict(self, state: dict) -> None:
        self._last_fired = int(state.get("last_fired", 0))


@dataclass
class AdaptiveTrigger(ResamplingTrigger):
    """Fire when the window's weight diversity (ESS or entropy) is high enough.

    Parameters
    ----------
    min_interval:
        Cool-down: never fire within this many iterations of the last firing.
    max_interval:
        Cap: always fire once this many iterations have elapsed since the last
        firing (even if the diversity criterion is not met), so the trigger
        never silently disables steering.
    ess_fraction:
        Fire when ``ESS(weights) / len(weights) >= ess_fraction``.
    use_entropy:
        When True the criterion uses normalised entropy
        ``H(weights) / log(len(weights))`` instead of the ESS fraction.
    """

    min_interval: int = 50
    max_interval: int = 500
    ess_fraction: float = 0.5
    use_entropy: bool = False

    def __post_init__(self) -> None:
        if self.min_interval < 1:
            raise ValueError("min_interval must be >= 1")
        if self.max_interval < self.min_interval:
            raise ValueError("max_interval must be >= min_interval")
        if not 0.0 < self.ess_fraction <= 1.0:
            raise ValueError("ess_fraction must be in (0, 1]")
        self._last_fired = 0
        #: history of (iteration, criterion value) evaluations, for analysis
        self.history: list[tuple[int, float]] = []

    # ------------------------------------------------------------ criterion
    def _criterion(self, q_values: np.ndarray) -> float:
        q = np.asarray(q_values, dtype=np.float64).reshape(-1)
        if q.size == 0:
            return 0.0
        weights = normalize_weights(q)
        if self.use_entropy:
            if q.size == 1:
                return 1.0
            return entropy(weights) / np.log(q.size)
        return effective_sample_size(weights) / q.size

    def should_fire(self, iteration: int, q_values: np.ndarray) -> bool:
        if iteration <= 0:
            return False
        elapsed = iteration - self._last_fired
        if elapsed < self.min_interval:
            return False
        if elapsed >= self.max_interval:
            return True
        value = self._criterion(q_values)
        self.history.append((iteration, value))
        return value >= self.ess_fraction

    def notify_fired(self, iteration: int) -> None:
        self._last_fired = iteration

    def state_dict(self) -> dict:
        """Cool-down anchor and criterion trace — both drive future firings."""
        return {
            "last_fired": self._last_fired,
            "history_iterations": [int(i) for i, _ in self.history],
            "history_values": [float(v) for _, v in self.history],
        }

    def load_state_dict(self, state: dict) -> None:
        self._last_fired = int(state.get("last_fired", 0))
        self.history = [
            (int(i), float(v))
            for i, v in zip(state.get("history_iterations", ()), state.get("history_values", ()))
        ]
