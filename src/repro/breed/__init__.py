"""Breed: loss-deviation acquisition + adaptive multiple importance sampling.

This package is the paper's primary contribution.  It is deliberately
independent of the Melissa framework simulation: the
:class:`~repro.breed.samplers.SteeringSampler` contract lets the same code be
driven by the on-line framework, by the offline examples, or directly by unit
tests.
"""

from repro.breed.acquisition import LossDeviationTracker, SampleLossObservation
from repro.breed.adaptive import AdaptiveTrigger, PeriodicTrigger, ResamplingTrigger
from repro.breed.amis import AMISConfig, AMISResult, AdaptiveImportanceSampler
from repro.breed.controller import BreedController, SteeringRecord, SteeringTarget
from repro.breed.mixing import MixingSchedule
from repro.breed.samplers import (
    BreedConfig,
    BreedSampler,
    ParameterSource,
    RandomSampler,
    ResampleDecision,
    SteeringSampler,
)

__all__ = [
    "LossDeviationTracker",
    "SampleLossObservation",
    "AdaptiveTrigger",
    "PeriodicTrigger",
    "ResamplingTrigger",
    "AMISConfig",
    "AMISResult",
    "AdaptiveImportanceSampler",
    "BreedController",
    "SteeringRecord",
    "SteeringTarget",
    "MixingSchedule",
    "BreedConfig",
    "BreedSampler",
    "ParameterSource",
    "RandomSampler",
    "ResampleDecision",
    "SteeringSampler",
]
