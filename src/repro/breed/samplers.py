"""Steering samplers: the uniform *Random* baseline and *Breed*.

Both implement :class:`SteeringSampler`, the contract the Melissa server's
steering mechanism talks to:

* :meth:`SteeringSampler.initial_parameters` draws the initial budget
  ``Λ_J`` (the paper samples it uniformly for both methods),
* :meth:`SteeringSampler.observe_batch` ingests the per-sample losses of each
  training batch (a no-op for Random),
* :meth:`SteeringSampler.should_resample` implements the periodic trigger
  (every ``P`` NN iterations for Breed, never for Random),
* :meth:`SteeringSampler.resample` produces replacement parameter vectors for
  the not-yet-submitted simulations.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.breed.acquisition import LossDeviationTracker
from repro.breed.adaptive import ResamplingTrigger
from repro.breed.amis import AMISConfig, AMISResult, AdaptiveImportanceSampler
from repro.breed.mixing import MixingSchedule
from repro.sampling.bounds import ParameterBounds
from repro.sampling.uniform import uniform_in_bounds

__all__ = [
    "ParameterSource",
    "ResampleDecision",
    "SteeringSampler",
    "RandomSampler",
    "BreedConfig",
    "BreedSampler",
]


class ParameterSource:
    """Provenance tags of executed parameter vectors (used by the Fig. 4 analysis)."""

    INITIAL_UNIFORM = "initial_uniform"
    MIX_UNIFORM = "mix_uniform"
    PROPOSAL = "proposal"


@dataclass
class ResampleDecision:
    """Replacement parameters produced by one steering/resampling trigger."""

    #: new parameter vectors, shape (K, d)
    parameters: np.ndarray
    #: provenance tag per vector (``ParameterSource`` values)
    sources: List[str]
    #: NN iteration at which the resampling was triggered
    iteration: int
    #: resampling iteration index ``s``
    resampling_index: int
    #: diagnostics of the underlying AMIS step (None for uniform-only decisions)
    amis: Optional[AMISResult] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.parameters = np.atleast_2d(np.asarray(self.parameters, dtype=np.float64))
        if self.parameters.shape[0] != len(self.sources):
            raise ValueError("parameters and sources must have the same length")

    def __len__(self) -> int:
        return self.parameters.shape[0]


class SteeringSampler(abc.ABC):
    """Contract between the steering mechanism and a sampling strategy."""

    def __init__(self, bounds: ParameterBounds) -> None:
        self.bounds = bounds

    @abc.abstractmethod
    def initial_parameters(self, n_simulations: int, rng: np.random.Generator) -> np.ndarray:
        """Draw the initial budget of parameter vectors ``Λ_J``."""

    def observe_batch(
        self,
        iteration: int,
        simulation_ids: Sequence[int],
        timesteps: Sequence[int],
        sample_losses: Sequence[float],
        parameters: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        """Ingest per-sample training losses (default: ignore them)."""

    def should_resample(self, iteration: int) -> bool:
        """Whether a resampling should be triggered at this NN iteration."""
        return False

    def resample(
        self, n_pending: int, iteration: int, rng: np.random.Generator
    ) -> Optional[ResampleDecision]:
        """Produce replacement parameters for ``n_pending`` simulations."""
        return None

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Mutable sampler state for session snapshots (stateless by default)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output (no-op for stateless samplers)."""

    @property
    def name(self) -> str:
        return self.__class__.__name__


class RandomSampler(SteeringSampler):
    """The paper's *Random* baseline: uniform steering, no adaptation."""

    def initial_parameters(self, n_simulations: int, rng: np.random.Generator) -> np.ndarray:
        return uniform_in_bounds(n_simulations, self.bounds, rng)

    @property
    def name(self) -> str:
        return "Random"


@dataclass(frozen=True)
class BreedConfig:
    """All Breed hyper-parameters (Table 1 of the paper).

    Attributes
    ----------
    sigma:
        Proposal width ``σ``.
    period:
        ``P`` — number of NN iterations between resampling triggers.
    window:
        ``N`` — size of the proposal population (last observed simulations).
    r_start, r_end, r_breakpoint:
        The ``(r_s, r_e, r_c)`` concentrate–explore schedule.
    sigma_decrement, max_retries:
        Out-of-bounds handling of the Gaussian draws.
    """

    sigma: float = 10.0
    period: int = 300
    window: int = 200
    r_start: float = 0.5
    r_end: float = 0.7
    r_breakpoint: int = 3
    sigma_decrement: float = 0.3
    max_retries: int = 5

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        # sigma / r validation is delegated to AMISConfig / MixingSchedule.
        AMISConfig(
            sigma=self.sigma,
            sigma_decrement=self.sigma_decrement,
            max_retries=self.max_retries,
        )
        MixingSchedule(self.r_start, self.r_end, self.r_breakpoint)

    def amis_config(self) -> AMISConfig:
        return AMISConfig(
            sigma=self.sigma,
            sigma_decrement=self.sigma_decrement,
            max_retries=self.max_retries,
        )

    def mixing_schedule(self) -> MixingSchedule:
        return MixingSchedule(self.r_start, self.r_end, self.r_breakpoint)

    #: Table-1 presets (studies 1–3); see ``repro.experiments.table1``.
    @classmethod
    def study1(cls) -> "BreedConfig":
        return cls(sigma=10.0, period=300, window=200, r_start=0.5, r_end=0.7, r_breakpoint=3)

    @classmethod
    def study2(cls) -> "BreedConfig":
        return cls(sigma=5.0, period=200, window=200, r_start=0.5, r_end=0.9, r_breakpoint=3)

    @classmethod
    def study3(cls) -> "BreedConfig":
        return cls(sigma=5.0, period=200, window=200, r_start=0.1, r_end=1.0, r_breakpoint=5)


class BreedSampler(SteeringSampler):
    """Breed: loss-deviation tracking + one-step AMIS steering.

    Parameters
    ----------
    bounds:
        Parameter box ``Λ``.
    config:
        Breed hyper-parameters (defaults to the paper's study-1 values).
    trigger:
        Optional resampling trigger (see :mod:`repro.breed.adaptive`).  When
        omitted, the paper's static periodic trigger (every ``config.period``
        NN iterations) is used; passing an
        :class:`~repro.breed.adaptive.AdaptiveTrigger` enables the ESS/entropy
        based future-work extension.
    """

    def __init__(
        self,
        bounds: ParameterBounds,
        config: BreedConfig | None = None,
        trigger: Optional[ResamplingTrigger] = None,
    ) -> None:
        super().__init__(bounds)
        self.config = config if config is not None else BreedConfig()
        self.trigger = trigger
        self.tracker = LossDeviationTracker()
        self.amis = AdaptiveImportanceSampler(bounds, self.config.amis_config())
        self.mixing = self.config.mixing_schedule()
        #: resampling iteration counter ``s``
        self.resampling_count = 0
        #: iteration of the last triggered resampling (-inf semantics via None)
        self._last_trigger_iteration: Optional[int] = None
        #: history of resampling decisions (analysis / Fig. 4)
        self.decisions: List[ResampleDecision] = []

    # ------------------------------------------------------------ interface
    def initial_parameters(self, n_simulations: int, rng: np.random.Generator) -> np.ndarray:
        params = uniform_in_bounds(n_simulations, self.bounds, rng)
        for sim_id, vector in enumerate(params):
            self.tracker.register_parameters(sim_id, vector)
        return params

    def register_parameters(self, simulation_id: int, parameters: np.ndarray) -> None:
        """Keep the tracker's parameter mapping in sync after a steering update."""
        self.tracker.reassign_parameters(simulation_id, parameters)

    def observe_batch(
        self,
        iteration: int,
        simulation_ids: Sequence[int],
        timesteps: Sequence[int],
        sample_losses: Sequence[float],
        parameters: Optional[Sequence[np.ndarray]] = None,
    ) -> None:
        self.tracker.observe_batch(iteration, simulation_ids, timesteps, sample_losses, parameters)

    def should_resample(self, iteration: int) -> bool:
        if iteration <= 0:
            return False
        # Guard against multiple triggers within the same iteration.
        if self._last_trigger_iteration == iteration:
            return False
        # Need at least one observed simulation to build a proposal.
        if len(self.tracker.observed_ids()) == 0:
            return False
        if self.trigger is not None:
            _, q_values, _ = self.tracker.window(self.config.window)
            return self.trigger.should_fire(iteration, q_values)
        return iteration % self.config.period == 0

    def resample(
        self, n_pending: int, iteration: int, rng: np.random.Generator
    ) -> Optional[ResampleDecision]:
        if n_pending <= 0:
            return None
        self._last_trigger_iteration = iteration
        locations, q_values, _ids = self.tracker.window(self.config.window)
        concentrate = self.mixing.concentrate_probability(self.resampling_count)
        result = self.amis.propose(
            locations=locations,
            q_values=q_values,
            n_samples=n_pending,
            concentrate_probability=concentrate,
            rng=rng,
        )
        sources = [
            ParameterSource.MIX_UNIFORM if uniform else ParameterSource.PROPOSAL
            for uniform in result.from_uniform
        ]
        decision = ResampleDecision(
            parameters=result.samples,
            sources=sources,
            iteration=iteration,
            resampling_index=self.resampling_count,
            amis=result,
        )
        self.decisions.append(decision)
        self.resampling_count += 1
        if self.trigger is not None:
            self.trigger.notify_fired(iteration)
        return decision

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Tracker statistics, resampling counters and past decisions.

        Decision history keeps the fields the analyses read (parameters,
        sources, iteration indices); the per-decision AMIS diagnostics are
        derived artefacts and are not carried across a restore.
        """
        return {
            "resampling_count": self.resampling_count,
            "last_trigger_iteration": self._last_trigger_iteration,
            "trigger": None if self.trigger is None else self.trigger.state_dict(),
            "tracker": self.tracker.state_dict(),
            "decisions": [
                {
                    "parameters": decision.parameters.copy(),
                    "sources": list(decision.sources),
                    "iteration": decision.iteration,
                    "resampling_index": decision.resampling_index,
                }
                for decision in self.decisions
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self.resampling_count = int(state["resampling_count"])
        last = state["last_trigger_iteration"]
        self._last_trigger_iteration = None if last is None else int(last)
        if self.trigger is not None and state.get("trigger") is not None:
            self.trigger.load_state_dict(state["trigger"])
        self.tracker.load_state_dict(state["tracker"])
        self.decisions = [
            ResampleDecision(
                parameters=np.asarray(payload["parameters"], dtype=np.float64),
                sources=[str(s) for s in payload["sources"]],
                iteration=int(payload["iteration"]),
                resampling_index=int(payload["resampling_index"]),
            )
            for payload in state["decisions"]
        ]

    @property
    def name(self) -> str:
        return "Breed"
