"""Loss-deviation based acquisition metric (Section 3.1, Eqs. 4–6).

Breed needs a per-parameter-vector informativeness score ``Q_j`` that can be
computed *only* from quantities already available during training (per-sample
losses of each batch), is comparable across NN iterations, and requires
O(1) memory per seen sample.  The paper's construction:

* for every sample ``x_{j,t}`` appearing in batch ``b_i`` with per-sample loss
  ``l^{(i)}_{jt}``, compute the positive normalised deviation from the batch
  statistics (Eq. 4)::

      δ^{(i)}_{jt} = max(l^{(i)}_{jt} − μ(l^{(i)}), 0) / σ(l^{(i)})

* average the deviations across the batches the sample appeared in (the set
  ``I_{jt}``) and then across time steps (Eqs. 5–6)::

      Q_j = (1/T) Σ_t (1/|I_{jt}|) Σ_{i∈I_{jt}} δ^{(i)}_{jt}

Both averages are maintained incrementally ("Not to store all the values, we
iteratively update the statistic upon the availability of new values").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.moving_average import OnlineMean

__all__ = ["SampleLossObservation", "LossDeviationTracker"]


@dataclass(frozen=True)
class SampleLossObservation:
    """One per-sample loss observation from one training batch.

    Attributes
    ----------
    simulation_id:
        Parameter-vector index ``j``.
    timestep:
        Time step ``t`` of the sample within its trajectory.
    iteration:
        NN training iteration ``i`` of the batch.
    sample_loss:
        ``l^{(i)}_{jt}``.
    batch_mean, batch_std:
        ``μ(l^{(i)})`` and ``σ(l^{(i)})`` of the batch the sample belonged to.
    """

    simulation_id: int
    timestep: int
    iteration: int
    sample_loss: float
    batch_mean: float
    batch_std: float

    def deviation(self, epsilon: float = 1e-12) -> float:
        """Eq. 4: positive deviation normalised by the batch standard deviation."""
        sigma = self.batch_std if self.batch_std > epsilon else epsilon
        return max(self.sample_loss - self.batch_mean, 0.0) / sigma


@dataclass
class _SimulationRecord:
    """Incremental statistics for one parameter vector ``λ_j``."""

    parameters: np.ndarray
    per_timestep: Dict[int, OnlineMean] = field(default_factory=dict)
    last_update_order: int = -1
    n_observations: int = 0

    def q_value(self) -> float:
        """Eq. 5–6: average of the per-timestep mean deviations."""
        if not self.per_timestep:
            return 0.0
        return float(np.mean([m.mean for m in self.per_timestep.values()]))


class LossDeviationTracker:
    """Maintains ``Q_j`` for every parameter vector whose samples were trained on.

    The tracker also keeps the order in which simulations last received an
    update, which the AMIS step uses to select its *window* (the last ``N``
    simulations "in order of Q_j value updates", Section 3.2).
    """

    def __init__(self, epsilon: float = 1e-12) -> None:
        self._records: Dict[int, _SimulationRecord] = {}
        self._epsilon = epsilon
        self._update_counter = 0
        #: total number of per-sample observations ingested
        self.n_observations = 0

    # -------------------------------------------------------------- ingest
    def register_parameters(self, simulation_id: int, parameters: np.ndarray) -> None:
        """Associate a parameter vector with a simulation id (idempotent)."""
        if simulation_id not in self._records:
            self._records[simulation_id] = _SimulationRecord(
                parameters=np.asarray(parameters, dtype=np.float64).copy()
            )

    def reassign_parameters(self, simulation_id: int, parameters: np.ndarray) -> None:
        """Overwrite a simulation's parameter vector after a steering update.

        A steered simulation has, by construction, never been executed, so any
        previously accumulated statistics for the id belong to the *old*
        parameters and are discarded along with them.
        """
        record = self._records.get(simulation_id)
        params = np.asarray(parameters, dtype=np.float64).copy()
        if record is None:
            self._records[simulation_id] = _SimulationRecord(parameters=params)
            return
        self.n_observations -= record.n_observations
        self._records[simulation_id] = _SimulationRecord(parameters=params)

    def observe(self, observation: SampleLossObservation, parameters: Optional[np.ndarray] = None) -> float:
        """Ingest one observation; returns the deviation value δ (Eq. 4)."""
        record = self._records.get(observation.simulation_id)
        if record is None:
            if parameters is None:
                raise KeyError(
                    f"simulation {observation.simulation_id} unknown; "
                    "call register_parameters first or pass parameters"
                )
            self.register_parameters(observation.simulation_id, parameters)
            record = self._records[observation.simulation_id]
        deviation = observation.deviation(self._epsilon)
        tracker = record.per_timestep.get(observation.timestep)
        if tracker is None:
            tracker = OnlineMean()
            record.per_timestep[observation.timestep] = tracker
        tracker.update(deviation)
        self._update_counter += 1
        record.last_update_order = self._update_counter
        record.n_observations += 1
        self.n_observations += 1
        return deviation

    def observe_batch(
        self,
        iteration: int,
        simulation_ids: Sequence[int],
        timesteps: Sequence[int],
        sample_losses: Sequence[float],
        parameters: Optional[Sequence[np.ndarray]] = None,
    ) -> Tuple[float, float]:
        """Ingest a whole training batch at once.

        Returns the batch mean/std used for the deviations (convenient for
        logging and for the Fig. 6 correlation analysis).
        """
        losses = np.asarray(sample_losses, dtype=np.float64)
        if losses.size == 0:
            return 0.0, 0.0
        mean = float(losses.mean())
        std = float(losses.std())
        for index, (sim_id, timestep, loss) in enumerate(zip(simulation_ids, timesteps, losses)):
            params = None if parameters is None else parameters[index]
            self.observe(
                SampleLossObservation(
                    simulation_id=int(sim_id),
                    timestep=int(timestep),
                    iteration=int(iteration),
                    sample_loss=float(loss),
                    batch_mean=mean,
                    batch_std=std,
                ),
                parameters=params,
            )
        return mean, std

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Every per-simulation statistic, preserving both dict orders.

        Record order and per-timestep order are preserved exactly:
        :meth:`window` feeds ``q_value`` means into AMIS, and
        :meth:`_SimulationRecord.q_value` averages ``per_timestep`` values in
        insertion order — floating-point summation order is part of the
        bit-identical resume contract.
        """
        return {
            "update_counter": self._update_counter,
            "n_observations": self.n_observations,
            "records": [
                {
                    "simulation_id": sid,
                    "parameters": record.parameters.copy(),
                    "last_update_order": record.last_update_order,
                    "n_observations": record.n_observations,
                    "timesteps": np.array(list(record.per_timestep), dtype=np.int64),
                    "means": np.array([m.mean for m in record.per_timestep.values()], dtype=np.float64),
                    "counts": np.array([m.count for m in record.per_timestep.values()], dtype=np.int64),
                }
                for sid, record in self._records.items()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self._update_counter = int(state["update_counter"])
        self.n_observations = int(state["n_observations"])
        self._records = {}
        for payload in state["records"]:
            record = _SimulationRecord(
                parameters=np.asarray(payload["parameters"], dtype=np.float64).copy(),
                last_update_order=int(payload["last_update_order"]),
                n_observations=int(payload["n_observations"]),
            )
            for timestep, mean, count in zip(payload["timesteps"], payload["means"], payload["counts"]):
                tracker = OnlineMean()
                tracker.mean = float(mean)
                tracker.count = int(count)
                record.per_timestep[int(timestep)] = tracker
            self._records[int(payload["simulation_id"])] = record

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, simulation_id: int) -> bool:
        return simulation_id in self._records

    def q_value(self, simulation_id: int) -> float:
        record = self._records.get(simulation_id)
        return record.q_value() if record is not None else 0.0

    def parameters(self, simulation_id: int) -> np.ndarray:
        return self._records[simulation_id].parameters

    def observed_ids(self) -> List[int]:
        """Simulation ids with at least one ingested observation."""
        return [sid for sid, rec in self._records.items() if rec.n_observations > 0]

    def window(self, size: int) -> Tuple[np.ndarray, np.ndarray, List[int]]:
        """Return the last ``size`` observed simulations by update recency.

        Returns
        -------
        locations:
            Parameter vectors, shape ``(n, d)`` with ``n <= size``.
        q_values:
            Matching ``Q_j`` values, shape ``(n,)``.
        ids:
            Matching simulation ids.
        """
        if size <= 0:
            raise ValueError("window size must be positive")
        observed = [
            (rec.last_update_order, sid, rec) for sid, rec in self._records.items() if rec.n_observations > 0
        ]
        observed.sort(key=lambda item: item[0], reverse=True)
        selected = observed[:size]
        if not selected:
            return np.empty((0, 0)), np.empty((0,)), []
        ids = [sid for _, sid, _ in selected]
        locations = np.stack([rec.parameters for _, _, rec in selected], axis=0)
        q_values = np.array([rec.q_value() for _, _, rec in selected], dtype=np.float64)
        return locations, q_values, ids

    def all_q_values(self) -> Dict[int, float]:
        return {sid: rec.q_value() for sid, rec in self._records.items() if rec.n_observations > 0}

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics for logging/monitoring."""
        q_values = list(self.all_q_values().values())
        if not q_values:
            return {"n_simulations": 0.0, "n_observations": float(self.n_observations)}
        arr = np.asarray(q_values)
        return {
            "n_simulations": float(len(q_values)),
            "n_observations": float(self.n_observations),
            "q_mean": float(arr.mean()),
            "q_std": float(arr.std()),
            "q_max": float(arr.max()),
        }
