"""Concentrate–explore mixing schedule ``r(s)`` (Section 3.2).

Importance-sampling proposals suffer from mode collapse and under-exploration,
so Breed mixes the AMIS proposal with the uniform distribution:
``r·q^(s)(·) + (1 − r)·U(Λ)``.  In the implementation each newly proposed
point is *kept* from the proposal with probability ``r^(s)`` and substituted
by a uniform point with probability ``1 − r^(s)`` (Fig. 1 of the paper: with
``R = 0.7``, 30 % of the points are replaced by uniform ones).

The paper uses a "linear–constant" schedule parameterised by the triplet
``(r_s, r_e, r_c)``: the concentrate probability starts at ``r_s`` (a warm-up
that keeps exploration high while the NN is still random), changes linearly
over ``r_c`` resampling iterations, and stays constant at ``r_e`` afterwards.
The exact formula printed in the paper is garbled by typesetting
(``r(s) = max(s·r_e − r_s / r_c, r_e)``); we implement the linear–constant
interpretation described in its Section 4.1 text and record the reading in
DESIGN.md::

    r(s) = r_s + (r_e − r_s) · min(s / r_c, 1)
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MixingSchedule"]


@dataclass(frozen=True)
class MixingSchedule:
    """Linear–constant concentrate–explore schedule.

    Attributes
    ----------
    r_start:
        ``r_s`` — concentrate probability at the first resampling iteration.
    r_end:
        ``r_e`` — constant value reached after the breakpoint.
    breakpoint:
        ``r_c`` — number of resampling iterations of the linear segment.
    """

    r_start: float = 0.5
    r_end: float = 0.7
    breakpoint: int = 3

    def __post_init__(self) -> None:
        for name, value in (("r_start", self.r_start), ("r_end", self.r_end)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.breakpoint < 1:
            raise ValueError(f"breakpoint must be >= 1, got {self.breakpoint}")

    def concentrate_probability(self, resampling_iteration: int) -> float:
        """``r(s)``: probability a proposed point is kept from the AMIS proposal."""
        if resampling_iteration < 0:
            raise ValueError("resampling_iteration must be non-negative")
        fraction = min(resampling_iteration / self.breakpoint, 1.0)
        return self.r_start + (self.r_end - self.r_start) * fraction

    def explore_probability(self, resampling_iteration: int) -> float:
        """``1 − r(s)``: probability a proposed point is replaced by a uniform one."""
        return 1.0 - self.concentrate_probability(resampling_iteration)

    def schedule(self, n_iterations: int) -> list[float]:
        """The full schedule for ``s = 0 .. n_iterations − 1`` (for plots/reports)."""
        return [self.concentrate_probability(s) for s in range(n_iterations)]
