"""One-step Adaptive Multiple Importance Sampling (Section 3.2, Eqs. 7–12).

Breed adapts the Population-Monte-Carlo recipe to the on-line training
setting: because data production is much slower than NN training, only *one*
PMC iteration is performed per resampling trigger.  Given the window of the
last ``N`` observed parameter vectors and their ``Q_j`` values:

1. importance weights ``w_j ∝ Q_j`` (Eq. 9; division by the proposal
   likelihood is omitted, as in the paper's implementation — footnote 1),
2. ``K`` locations are resampled with replacement from a multinomial over the
   window (Eq. 10),
3. the proposal ``q^(s)`` is the mixture of isotropic Gaussians of width ``σ``
   centred at the resampled locations (Eq. 11),
4. one new parameter vector is drawn from each mixture member (Eq. 12); if it
   falls outside the parameter box, ``σ`` is decreased by 0.3 for that member
   and the draw retried, at most five times, after which the member's location
   itself is used,
5. each drawn point is finally replaced by a uniform point with probability
   ``1 − r(s)`` (exploration mixing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sampling.bounds import ParameterBounds
from repro.sampling.gaussian import GaussianMixture, IsotropicGaussian
from repro.sampling.multinomial import (
    effective_sample_size,
    entropy,
    multinomial_resample,
    normalize_weights,
)

__all__ = ["AMISConfig", "AMISResult", "AdaptiveImportanceSampler"]


@dataclass(frozen=True)
class AMISConfig:
    """Hyper-parameters of the AMIS step.

    Attributes
    ----------
    sigma:
        Initial width of each Gaussian proposal member (``σ`` in the paper;
        expressed in the physical units of the parameter space, Kelvin for the
        heat case).
    sigma_decrement:
        Amount subtracted from a member's ``σ`` after an out-of-bounds draw
        (the paper uses ``3e-1``).
    max_retries:
        Maximum number of out-of-bounds redraws per member (paper: five).
    min_sigma:
        Numerical floor preventing ``σ`` from reaching zero during retries.
    """

    sigma: float = 10.0
    sigma_decrement: float = 0.3
    max_retries: int = 5
    min_sigma: float = 1e-3

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.sigma_decrement < 0:
            raise ValueError("sigma_decrement must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.min_sigma <= 0:
            raise ValueError("min_sigma must be positive")


@dataclass
class AMISResult:
    """Outcome of one AMIS resampling step (also used for the Fig. 4 analysis)."""

    #: newly proposed parameter vectors, shape (K, d)
    samples: np.ndarray
    #: per-sample flag: True when the point came from the uniform exploration mixture
    from_uniform: np.ndarray
    #: normalised importance weights over the window, shape (N,)
    weights: np.ndarray
    #: indices (into the window) of the resampled proposal locations, shape (K,)
    resampled_indices: np.ndarray
    #: per-member sigma actually used after out-of-bounds shrinking, shape (K,)
    member_sigmas: np.ndarray
    #: Kish effective sample size of the weights (diagnostic; future-work trigger)
    ess: float
    #: Shannon entropy of the weights (diagnostic; future-work trigger)
    weight_entropy: float
    #: number of draws that exhausted retries and fell back to their location
    n_fallbacks: int = 0
    #: the proposal mixture itself (None when K == 0)
    proposal: Optional[GaussianMixture] = field(default=None, repr=False)

    @property
    def n_samples(self) -> int:
        return int(self.samples.shape[0])

    @property
    def n_uniform(self) -> int:
        return int(self.from_uniform.sum())

    @property
    def n_proposal(self) -> int:
        return self.n_samples - self.n_uniform


class AdaptiveImportanceSampler:
    """Stateless-per-call AMIS sampler bound to a parameter box."""

    def __init__(self, bounds: ParameterBounds, config: AMISConfig | None = None) -> None:
        self.bounds = bounds
        self.config = config if config is not None else AMISConfig()

    # ----------------------------------------------------------------- step
    def propose(
        self,
        locations: np.ndarray,
        q_values: np.ndarray,
        n_samples: int,
        concentrate_probability: float,
        rng: np.random.Generator,
    ) -> AMISResult:
        """Run one AMIS step.

        Parameters
        ----------
        locations:
            Window of parameter vectors ``λ_j``, shape ``(N, d)``.
        q_values:
            Matching acquisition values ``Q_j``, shape ``(N,)``.
        n_samples:
            ``K`` — number of new parameter vectors to produce.
        concentrate_probability:
            ``r(s)``; each produced point is replaced by a uniform draw with
            probability ``1 − r(s)``.
        rng:
            Random generator (callers use a dedicated named stream).
        """
        locations = np.atleast_2d(np.asarray(locations, dtype=np.float64))
        q_values = np.asarray(q_values, dtype=np.float64).reshape(-1)
        if locations.shape[0] != q_values.shape[0]:
            raise ValueError("locations and q_values must have the same length")
        if not 0.0 <= concentrate_probability <= 1.0:
            raise ValueError("concentrate_probability must be in [0, 1]")
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        dim = self.bounds.dim
        if n_samples == 0:
            empty = np.empty((0, dim), dtype=np.float64)
            return AMISResult(
                samples=empty,
                from_uniform=np.zeros(0, dtype=bool),
                weights=np.empty(0),
                resampled_indices=np.empty(0, dtype=np.int64),
                member_sigmas=np.empty(0),
                ess=0.0,
                weight_entropy=0.0,
            )
        if locations.size == 0:
            # No observed window yet: degrade to pure uniform exploration.
            samples = self.bounds.scale_from_unit(rng.random((n_samples, dim)))
            return AMISResult(
                samples=samples,
                from_uniform=np.ones(n_samples, dtype=bool),
                weights=np.empty(0),
                resampled_indices=np.empty(0, dtype=np.int64),
                member_sigmas=np.empty(0),
                ess=0.0,
                weight_entropy=0.0,
            )
        if locations.shape[1] != dim:
            raise ValueError(
                f"locations dimensionality {locations.shape[1]} does not match bounds ({dim})"
            )
        if np.any(q_values < 0):
            raise ValueError("q_values must be non-negative")

        # Eq. 9: importance weights proportional to Q_j (self-normalised).
        weights = normalize_weights(q_values)
        ess = effective_sample_size(weights)
        weight_entropy = entropy(weights)

        # Eq. 10: multinomial resampling of K proposal locations.
        resampled = multinomial_resample(weights, n_samples, rng)

        # Eqs. 11–12: draw one point per Gaussian member, shrinking sigma on
        # out-of-bounds draws.
        samples = np.empty((n_samples, dim), dtype=np.float64)
        member_sigmas = np.empty(n_samples, dtype=np.float64)
        components: List[IsotropicGaussian] = []
        n_fallbacks = 0
        for k, location_index in enumerate(resampled):
            center = locations[location_index]
            sigma = self.config.sigma
            accepted: Optional[np.ndarray] = None
            for _ in range(self.config.max_retries + 1):
                candidate = center + sigma * rng.standard_normal(dim)
                if self.bounds.contains(candidate):
                    accepted = candidate
                    break
                sigma = max(sigma - self.config.sigma_decrement, self.config.min_sigma)
            if accepted is None:
                # Retries exhausted: "the location is left the same".
                accepted = center.copy()
                n_fallbacks += 1
            samples[k] = accepted
            member_sigmas[k] = sigma
            components.append(IsotropicGaussian(center.copy(), max(sigma, self.config.min_sigma)))

        # Exploration mixing: substitute with uniform points with prob. 1 - r.
        uniform_mask = rng.random(n_samples) >= concentrate_probability
        n_uniform = int(uniform_mask.sum())
        if n_uniform:
            samples[uniform_mask] = self.bounds.scale_from_unit(rng.random((n_uniform, dim)))

        proposal = GaussianMixture(components) if components else None
        return AMISResult(
            samples=samples,
            from_uniform=uniform_mask,
            weights=weights,
            resampled_indices=np.asarray(resampled, dtype=np.int64),
            member_sigmas=member_sigmas,
            ess=ess,
            weight_entropy=weight_entropy,
            n_fallbacks=n_fallbacks,
            proposal=proposal,
        )
