"""Versioned, atomic session snapshots: the ``SessionSnapshot`` format.

A snapshot is a *directory* capturing everything a
:class:`~repro.api.session.TrainingSession` owns at a tick boundary::

    <checkpoint_dir>/
        step-00000042/          # named by the session tick counter
            manifest.json       # schema version, config + fingerprint, counters,
                                # and the state tree with array placeholders
            arrays.npz          # every numpy array of the state tree
        step-00000063/
        latest.json             # atomic pointer to the newest snapshot

The state tree comes from ``TrainingSession.state_dict()``: nested dicts /
lists of JSON scalars and numpy arrays.  :func:`encode_state` lifts the arrays
out into a flat ``{key: array}`` mapping (stored as one ``.npz``) and replaces
them with ``{"__ndarray__": key}`` placeholders, so the manifest itself is
plain JSON — floats round-trip exactly (``repr`` shortest-float encoding) and
the RNG bit-generator states are arbitrary-precision integers, which JSON
also preserves exactly.  Restores are therefore *bit-identical*: a run killed
at any batch and restored from its latest snapshot produces the same metrics
and series as an uninterrupted run.

Write protocol (crash safety):

1. the snapshot is assembled in a ``.tmp-…`` sibling directory,
2. ``os.rename`` moves it to its final ``step-…`` name (atomic on POSIX),
3. ``latest.json`` is replaced atomically (tmp file + ``os.replace``),
4. snapshots beyond the retention budget — and stale tmp directories left by
   crashed writers — are pruned last.

A crash between any two steps leaves either the previous consistent snapshot
set, or the previous set plus one complete new snapshot.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro import __version__, telemetry
from repro.api.config import OnlineTrainingConfig
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import TrainingSession

__all__ = [
    "SCHEMA_VERSION",
    "SnapshotError",
    "SnapshotMismatchError",
    "decode_state",
    "encode_state",
    "latest_snapshot",
    "list_snapshots",
    "load_manifest",
    "restore_session",
    "resume_or_start",
    "save_session",
]

_LOGGER = get_logger("checkpoint")

#: bump when the manifest layout or any component state_dict changes shape
SCHEMA_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_ARRAYS_NAME = "arrays.npz"
_LATEST_NAME = "latest.json"
_STEP_PREFIX = "step-"
_TMP_PREFIX = ".tmp-"
_ARRAY_SENTINEL = "__ndarray__"


class SnapshotError(RuntimeError):
    """A snapshot is missing, incomplete, or structurally invalid."""


class SnapshotMismatchError(SnapshotError):
    """A snapshot belongs to a different run configuration."""


# ---------------------------------------------------------------------------
# State-tree <-> (JSON, arrays) encoding
# ---------------------------------------------------------------------------


def encode_state(state: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Split a state tree into a JSON-compatible tree plus an array mapping."""
    arrays: Dict[str, np.ndarray] = {}

    def visit(value: Any, path: str) -> Any:
        if isinstance(value, np.ndarray):
            key = f"a{len(arrays):05d}"
            arrays[key] = value
            return {_ARRAY_SENTINEL: key}
        if isinstance(value, np.bool_):
            return bool(value)
        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, dict):
            encoded = {}
            for key, item in value.items():
                if not isinstance(key, str):
                    raise TypeError(
                        f"state key {key!r} at {path!r} is {type(key).__name__}; "
                        "state_dict keys must be strings"
                    )
                if key == _ARRAY_SENTINEL:
                    raise TypeError(f"reserved key {_ARRAY_SENTINEL!r} used at {path!r}")
                encoded[key] = visit(item, f"{path}.{key}")
            return encoded
        if isinstance(value, (list, tuple)):
            return [visit(item, f"{path}[{index}]") for index, item in enumerate(value)]
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        raise TypeError(
            f"cannot snapshot value of type {type(value).__name__} at {path!r}"
        )

    return visit(state, "$"), arrays


def decode_state(encoded: Any, arrays: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`encode_state` (array placeholders resolved)."""
    if isinstance(encoded, dict):
        if set(encoded) == {_ARRAY_SENTINEL}:
            return arrays[encoded[_ARRAY_SENTINEL]]
        return {key: decode_state(item, arrays) for key, item in encoded.items()}
    if isinstance(encoded, list):
        return [decode_state(item, arrays) for item in encoded]
    return encoded


# ---------------------------------------------------------------------------
# Directory-level helpers
# ---------------------------------------------------------------------------


def list_snapshots(directory: str | Path) -> list[Path]:
    """Complete snapshot directories under ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        entry
        for entry in directory.iterdir()
        if entry.is_dir()
        and entry.name.startswith(_STEP_PREFIX)
        and (entry / _MANIFEST_NAME).exists()
    )


def latest_snapshot(directory: str | Path) -> Optional[Path]:
    """The newest complete snapshot under ``directory`` (None when empty).

    The ``latest.json`` pointer is consulted first; if it is missing or stale
    (e.g. the pointed-at snapshot was pruned by hand) the directory scan is
    the fallback, so a snapshot set always remains restorable.
    """
    directory = Path(directory)
    pointer = directory / _LATEST_NAME
    if pointer.exists():
        try:
            name = json.loads(pointer.read_text())["snapshot"]
            candidate = directory / str(name)
            if (candidate / _MANIFEST_NAME).exists():
                return candidate
        except (json.JSONDecodeError, KeyError, TypeError):
            _LOGGER.warning("ignoring corrupt latest pointer %s", pointer)
    snapshots = list_snapshots(directory)
    return snapshots[-1] if snapshots else None


def load_manifest(snapshot: str | Path) -> Dict[str, Any]:
    """Read and validate a snapshot's manifest."""
    snapshot = Path(snapshot)
    manifest_path = snapshot / _MANIFEST_NAME
    if not manifest_path.exists():
        raise SnapshotError(f"snapshot {snapshot} has no {_MANIFEST_NAME}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise SnapshotError(f"snapshot manifest {manifest_path} is corrupt: {error}") from error
    schema = manifest.get("schema")
    if schema != SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot {snapshot} has schema version {schema}, "
            f"this code reads version {SCHEMA_VERSION}"
        )
    return manifest


def _write_latest(directory: Path, manifest: Dict[str, Any], name: str) -> None:
    pointer = directory / _LATEST_NAME
    tmp = directory / f"{_LATEST_NAME}.tmp-{os.getpid()}"
    tmp.write_text(
        json.dumps(
            {
                "snapshot": name,
                "n_ticks": manifest["n_ticks"],
                "iteration": manifest["iteration"],
                "fingerprint": manifest["fingerprint"],
            },
            indent=2,
        )
    )
    os.replace(tmp, pointer)


def _prune(directory: Path, keep: int) -> None:
    snapshots = list_snapshots(directory)
    for stale in snapshots[:-keep] if keep > 0 else []:
        shutil.rmtree(stale, ignore_errors=True)
    for entry in directory.iterdir():
        # tmp leftovers of crashed writers: snapshot dirs and latest pointers
        # (their names carry the dead writer's pid, so nobody else owns them)
        if entry.is_dir() and entry.name.startswith(_TMP_PREFIX):
            shutil.rmtree(entry, ignore_errors=True)
        elif entry.is_file() and entry.name.startswith(f"{_LATEST_NAME}.tmp-"):
            entry.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# Save / restore
# ---------------------------------------------------------------------------


def save_session(
    session: "TrainingSession",
    directory: str | Path,
    keep: Optional[int] = None,
    compressed: bool = False,
) -> Path:
    """Snapshot ``session`` into ``directory`` atomically; returns the path.

    The snapshot is named after the session's tick counter; saving twice at
    the same tick is idempotent (the existing snapshot wins — it describes
    the same state).  ``keep`` bounds the number of retained snapshots.
    """
    start = time.perf_counter()
    with telemetry.tracer().span("checkpoint.save", cat="checkpoint", tick=session.n_ticks):
        final = _save_session(session, directory, keep, compressed)
    registry = telemetry.metrics()
    registry.counter("repro_checkpoint_saves_total", help="session snapshots written").inc()
    registry.histogram(
        "repro_checkpoint_save_seconds", help="snapshot save latency"
    ).observe(time.perf_counter() - start)
    return final


def _save_session(
    session: "TrainingSession",
    directory: str | Path,
    keep: Optional[int],
    compressed: bool,
) -> Path:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = f"{_STEP_PREFIX}{session.n_ticks:08d}"
    final = directory / name
    encoded, arrays = encode_state(session.state_dict())
    manifest = {
        "schema": SCHEMA_VERSION,
        "repro_version": __version__,
        "config": session.config.to_dict(),
        "fingerprint": session.config.digest(),
        "workload": session.workload_name,
        "method": session.sampler.name,
        "n_ticks": session.n_ticks,
        "iteration": session.server.iteration,
        "n_arrays": len(arrays),
        "state": encoded,
    }
    if final.exists():
        # Same-tick resave: idempotent only when the existing snapshot really
        # is ours.  A leftover from a *different* configuration (stale
        # directory reuse) must be replaced, or the latest pointer would
        # advertise our fingerprint over a foreign snapshot and every future
        # restore would fail the mismatch check.
        try:
            existing = load_manifest(final)
        except SnapshotError:
            existing = None
        if existing is not None and existing.get("fingerprint") == manifest["fingerprint"]:
            _write_latest(directory, manifest, name)
            if keep is not None:
                _prune(directory, keep)
            return final
        shutil.rmtree(final)
    tmp = directory / f"{_TMP_PREFIX}{name}-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        saver = np.savez_compressed if compressed else np.savez
        with open(tmp / _ARRAYS_NAME, "wb") as stream:
            saver(stream, **arrays)
        (tmp / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
        os.rename(tmp, final)
    finally:
        if tmp.exists():  # failed save: leave no half-written directory behind
            shutil.rmtree(tmp, ignore_errors=True)
    _write_latest(directory, manifest, name)
    if keep is not None:
        _prune(directory, keep)
    return final


def restore_session(
    snapshot: str | Path,
    config: Optional[OnlineTrainingConfig] = None,
    solver=None,
    validation_set=None,
    event_log=None,
) -> "TrainingSession":
    """Rebuild a :class:`TrainingSession` bit-identical to a saved snapshot.

    Parameters
    ----------
    snapshot:
        A snapshot directory (``…/step-XXXXXXXX``).
    config:
        Optional configuration the caller *expects* the snapshot to belong
        to; a fingerprint mismatch raises :class:`SnapshotMismatchError`.
        When omitted, the configuration embedded in the manifest is used.
    solver / validation_set / event_log:
        Optional pre-built run inputs, exactly as for ``TrainingSession``.
    """
    start = time.perf_counter()
    with telemetry.tracer().span("checkpoint.restore", cat="checkpoint"):
        session = _restore_session(snapshot, config, solver, validation_set, event_log)
    registry = telemetry.metrics()
    registry.counter("repro_checkpoint_restores_total", help="session snapshots restored").inc()
    registry.histogram(
        "repro_checkpoint_restore_seconds", help="snapshot restore latency"
    ).observe(time.perf_counter() - start)
    return session


def _restore_session(
    snapshot: str | Path,
    config: Optional[OnlineTrainingConfig],
    solver,
    validation_set,
    event_log,
) -> "TrainingSession":
    from repro.api.session import TrainingSession

    snapshot = Path(snapshot)
    manifest = load_manifest(snapshot)
    if config is not None and config.digest() != manifest["fingerprint"]:
        raise SnapshotMismatchError(
            f"snapshot {snapshot} was written by configuration "
            f"{manifest['fingerprint']}, caller expects {config.digest()}"
        )
    if config is None:
        config = OnlineTrainingConfig.from_dict(manifest["config"])
    arrays_path = snapshot / _ARRAYS_NAME
    if not arrays_path.exists():
        raise SnapshotError(f"snapshot {snapshot} has no {_ARRAYS_NAME}")
    with np.load(arrays_path) as archive:
        arrays = {key: archive[key].copy() for key in archive.files}
    state = decode_state(manifest["state"], arrays)
    session = TrainingSession(
        config, solver=solver, validation_set=validation_set, event_log=event_log
    )
    session.load_state_dict(state)
    return session


def resume_or_start(
    config: OnlineTrainingConfig,
    solver=None,
    validation_set=None,
    event_log=None,
    directory: Optional[str | Path] = None,
) -> "TrainingSession":
    """Restore the latest matching snapshot, or start a fresh session.

    ``directory`` defaults to ``config.checkpoint_dir``.  A snapshot written
    by a *different* configuration (stale directory reuse) is not restored:
    a warning is logged and the run starts from scratch, which is always
    correct — just slower.
    """
    from repro.api.session import TrainingSession

    directory = directory if directory is not None else config.checkpoint_dir
    if directory:
        snapshot = latest_snapshot(directory)
        if snapshot is not None:
            try:
                session = restore_session(
                    snapshot,
                    config=config,
                    solver=solver,
                    validation_set=validation_set,
                    event_log=event_log,
                )
            except SnapshotMismatchError:
                _LOGGER.warning(
                    "snapshot %s belongs to a different configuration; starting fresh",
                    snapshot,
                )
            except SnapshotError as error:
                _LOGGER.warning("cannot restore snapshot %s (%s); starting fresh", snapshot, error)
            else:
                _LOGGER.info(
                    "resuming session from %s (tick %d, iteration %d)",
                    snapshot,
                    session.n_ticks,
                    session.server.iteration,
                )
                return session
    return TrainingSession(
        config, solver=solver, validation_set=validation_set, event_log=event_log
    )
