"""Periodic snapshot policy riding the session's ``on_tick`` hook.

The :class:`CheckpointPolicy` is an observer — it never changes what the
training loop computes, it only persists the loop's state at tick boundaries.
``every_n_batches`` counts *training iterations* (the paper's unit of
progress); ``every_n_ticks`` counts driver rounds, useful for the data-
production phase before the reservoir watermark is reached, when no batches
run yet.  Both may be combined; a snapshot is written whenever either period
elapses, at most once per tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, TYPE_CHECKING

from repro.checkpoint.snapshot import save_session

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import TrainingSession

__all__ = ["CheckpointPolicy"]


@dataclass
class CheckpointPolicy:
    """Save a session snapshot every N training batches and/or ticks."""

    directory: str | Path
    #: snapshot period in training iterations (0 disables the batch trigger)
    every_n_batches: int = 0
    #: snapshot period in session ticks (0 disables the tick trigger)
    every_n_ticks: int = 0
    #: retention: number of most-recent snapshots kept in ``directory``
    keep: int = 3
    #: write compressed ``.npz`` archives (slower saves, smaller snapshots)
    compressed: bool = False
    #: snapshots written by this policy instance
    n_saved: int = field(default=0, init=False)
    #: path of the most recent snapshot written by this policy
    last_path: Optional[Path] = field(default=None, init=False)
    _batch_marker: int = field(default=0, init=False, repr=False)
    _tick_marker: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.every_n_batches < 0 or self.every_n_ticks < 0:
            raise ValueError("snapshot periods must be non-negative")
        if self.every_n_batches == 0 and self.every_n_ticks == 0:
            raise ValueError("at least one of every_n_batches/every_n_ticks must be > 0")
        if self.keep < 1:
            raise ValueError("keep must be >= 1")

    # ------------------------------------------------------------ lifecycle
    def attach(self, session: "TrainingSession") -> "CheckpointPolicy":
        """Subscribe to ``session.on_tick``; returns the policy for chaining.

        The period markers start from the session's *current* counters, so a
        freshly restored session does not immediately re-save the snapshot it
        was just restored from.
        """
        self._batch_marker = self._period_index(session.server.iteration, self.every_n_batches)
        self._tick_marker = self._period_index(session.n_ticks, self.every_n_ticks)
        session.on_tick.append(self.on_tick)
        return self

    @staticmethod
    def _period_index(counter: int, period: int) -> int:
        return counter // period if period > 0 else 0

    def should_save(self, session: "TrainingSession") -> bool:
        """Whether the session just crossed a batch/tick snapshot period."""
        if self.every_n_batches > 0:
            if self._period_index(session.server.iteration, self.every_n_batches) > self._batch_marker:
                return True
        if self.every_n_ticks > 0:
            if self._period_index(session.n_ticks, self.every_n_ticks) > self._tick_marker:
                return True
        return False

    def on_tick(self, session: "TrainingSession") -> None:
        """Tick hook: save when a period elapsed since the last snapshot."""
        if self.should_save(session):
            self.save(session)

    def save(self, session: "TrainingSession") -> Path:
        """Write one snapshot now and advance the period markers."""
        path = save_session(
            session, self.directory, keep=self.keep, compressed=self.compressed
        )
        self._batch_marker = self._period_index(session.server.iteration, self.every_n_batches)
        self._tick_marker = self._period_index(session.n_ticks, self.every_n_ticks)
        self.n_saved += 1
        self.last_path = path
        return path
