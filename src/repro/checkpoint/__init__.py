"""Fault-tolerant session checkpointing with bit-identical mid-run resume.

The paper's Melissa framework targets long-running, elastic studies where
component failures are expected; this subsystem gives the reproduction the
matching within-run durability.  A :class:`~repro.api.session.TrainingSession`
can snapshot *everything it owns* — model weights, Adam moments, reservoir
content and seen-counts, breed/sampler statistics, scheduler/launcher ledgers,
mid-trajectory client progress, RNG stream states, transport counters — into a
versioned on-disk :mod:`snapshot <repro.checkpoint.snapshot>` and later resume
**bit-identically**: a run killed at any batch and restored from its latest
snapshot produces exactly the metrics and series of an uninterrupted run.

Typical use::

    from repro.checkpoint import CheckpointPolicy, resume_or_start

    config = OnlineTrainingConfig(checkpoint_dir="ckpt/run0", checkpoint_every=100)
    session = resume_or_start(config)   # picks up ckpt/run0 if it exists
    result = session.run()              # snapshots every 100 batches

or, through the study engine / CLI::

    runner.run_all(configs, checkpoint="study.jsonl", checkpoint_every=100)
    python -m repro.cli fig3a --checkpoint-every 100          # … SIGKILL …
    python -m repro.cli fig3a --checkpoint-every 100 --restore
"""

from repro.checkpoint.policy import CheckpointPolicy
from repro.checkpoint.snapshot import (
    SCHEMA_VERSION,
    SnapshotError,
    SnapshotMismatchError,
    decode_state,
    encode_state,
    latest_snapshot,
    list_snapshots,
    load_manifest,
    restore_session,
    resume_or_start,
    save_session,
)

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointPolicy",
    "SnapshotError",
    "SnapshotMismatchError",
    "decode_state",
    "encode_state",
    "latest_snapshot",
    "list_snapshots",
    "load_manifest",
    "restore_session",
    "resume_or_start",
    "save_session",
]
