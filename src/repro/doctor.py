"""``repro doctor`` — environment and artifact health checks.

A read-only diagnostic pass over the operational residue the toolkit can
leave behind, reported as a plain-text table (and ``--json`` for scripts):

* **shm segments** — leftover ``/dev/shm`` blocks created by the
  shared-memory executor (:func:`repro.workflow.shm.orphaned_segments`).
  A crashed parent process (SIGKILL before its cleanup ``finally``) is the
  only way these survive; they hold real memory until removed.
* **service roots** — ``server.json`` files advertising study services.
  Each advertised URL is probed with a short-timeout health request; a root
  whose server does not answer *and* has no clean ``shutdown.marker`` is
  reported as a crashed server (its jobs will recover on the next
  ``repro serve --root <dir>``).
* **checkpoint usage** — disk consumed by session-snapshot directories
  (``*.snapshots`` and ``step-*`` trees) under the scanned roots, so
  oversized retention is visible before the disk fills.
* **campaign manifests** — campaign roots (``manifest.jsonl`` ledgers, see
  :mod:`repro.campaign`) whose latest invocation has a node marked running
  but whose writing process is gone: an abandoned campaign, reported with
  the exact ``repro campaign --root <dir> --resume`` command that re-enters
  it bit-identically.

Exit status: 0 when healthy, 1 when something needs attention (orphaned
segments, a crashed service root, or an abandoned campaign).
"""

from __future__ import annotations

import argparse
import json
import os
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["build_doctor_parser", "diagnose", "doctor_main"]

#: health-probe timeout: doctors must not hang on a wedged server
_PROBE_TIMEOUT_SECONDS = 2.0


def _probe_health(url: str, timeout: float = _PROBE_TIMEOUT_SECONDS) -> Optional[Dict[str, Any]]:
    """The server's health payload, or ``None`` when it does not answer."""
    try:
        with urllib.request.urlopen(f"{url}/v1/health", timeout=timeout) as response:
            return json.loads(response.read().decode())
    except (urllib.error.URLError, OSError, ValueError):
        return None


def _scan_service_roots(roots: List[Path]) -> List[Dict[str, Any]]:
    """Inspect every ``server.json`` under the scanned roots (recursive)."""
    findings: List[Dict[str, Any]] = []
    seen = set()
    for root in roots:
        if not root.is_dir():
            continue
        for marker in sorted(root.rglob("server.json")):
            key = marker.resolve()
            if key in seen:
                continue
            seen.add(key)
            try:
                advertised = json.loads(marker.read_text())
            except (json.JSONDecodeError, OSError):
                findings.append(
                    {"root": str(marker.parent), "status": "corrupt", "url": None}
                )
                continue
            url = str(advertised.get("url", ""))
            health = _probe_health(url) if url else None
            if health is not None:
                status = "live"
            elif (marker.parent / "shutdown.marker").exists():
                status = "stopped"  # clean shutdown; server.json is just stale
            else:
                status = "crashed"  # no server, no clean-stop marker
            findings.append(
                {
                    "root": str(marker.parent),
                    "status": status,
                    "url": url or None,
                    "version": advertised.get("version"),
                }
            )
    return findings


def _tree_bytes(path: Path) -> int:
    total = 0
    for dirpath, _dirnames, filenames in os.walk(path):
        for name in filenames:
            try:
                total += os.path.getsize(os.path.join(dirpath, name))
            except OSError:  # pragma: no cover - racing deletion
                continue
    return total


def _scan_checkpoints(roots: List[Path]) -> List[Dict[str, Any]]:
    """Disk usage of snapshot trees (``*.snapshots`` dirs and ``step-*`` sets)."""
    findings: List[Dict[str, Any]] = []
    seen = set()
    for root in roots:
        if not root.is_dir():
            continue
        for directory in sorted(root.rglob("*.snapshots")):
            key = directory.resolve()
            if key in seen or not directory.is_dir():
                continue
            seen.add(key)
            findings.append(
                {
                    "directory": str(directory),
                    "bytes": _tree_bytes(directory),
                    "snapshots": sum(1 for _ in directory.rglob("step-*")),
                }
            )
    return findings


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could signal (0 probes only)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by someone else
        return True
    return True


def _scan_campaigns(roots: List[Path]) -> List[Dict[str, Any]]:
    """Classify every campaign manifest under the scanned roots.

    ``finished`` — latest invocation reached ``campaign_finished``;
    ``running`` — open node attempts and the recording pid is alive;
    ``abandoned`` — open node attempts but the pid is gone (killed mid-node);
    a finished campaign with no open attempts and a dead pid is ``stale``
    only in the sense that nothing needs doing, so it stays ``finished``.
    """
    from repro.campaign.manifest import CampaignManifest

    findings: List[Dict[str, Any]] = []
    seen = set()
    for root in roots:
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("manifest.jsonl")):
            key = path.resolve()
            if key in seen:
                continue
            seen.add(key)
            manifest = CampaignManifest(path)
            events = manifest.load()
            if not events or events[0].get("event") != "campaign_started":
                continue  # some other JSONL file, not a campaign ledger
            invocation = manifest.last_invocation()
            campaign = invocation[0].get("campaign") if invocation else None
            open_nodes = manifest.running_nodes()
            if manifest.finished():
                status = "finished"
            elif open_nodes and any(_pid_alive(pid) for pid in open_nodes.values()):
                status = "running"
            elif not _pid_alive(int(invocation[-1].get("pid", 0))):
                status = "abandoned"
            else:
                status = "running"
            findings.append(
                {
                    "root": str(path.parent),
                    "campaign": campaign,
                    "status": status,
                    "running_nodes": sorted(open_nodes),
                    "pid": int(invocation[-1].get("pid", 0)) if invocation else 0,
                }
            )
    return findings


def diagnose(roots: List[Path]) -> Dict[str, Any]:
    """Run every check; the payload ``doctor_main`` renders and exits on."""
    from repro.workflow.shm import orphaned_segments

    segments = orphaned_segments()
    services = _scan_service_roots(roots)
    checkpoints = _scan_checkpoints(roots)
    campaigns = _scan_campaigns(roots)
    issues: List[str] = []
    if segments:
        issues.append(
            f"{len(segments)} orphaned shm segment(s) hold memory; "
            f"remove with: rm " + " ".join(f"/dev/shm/{name}" for name in segments)
        )
    for service in services:
        if service["status"] == "crashed":
            issues.append(
                f"service root {service['root']} advertises {service['url']} but no "
                f"server answers and no clean shutdown marker exists; "
                f"`repro serve --root {service['root']}` recovers its jobs"
            )
        elif service["status"] == "corrupt":
            issues.append(f"service root {service['root']} has an unreadable server.json")
    for campaign in campaigns:
        if campaign["status"] == "abandoned":
            nodes = ", ".join(campaign["running_nodes"]) or "?"
            issues.append(
                f"campaign {campaign['campaign']!r} at {campaign['root']} was "
                f"abandoned (node(s) {nodes} marked running, pid {campaign['pid']} "
                f"is gone); resume with: "
                f"repro campaign --root {campaign['root']} --resume"
            )
    return {
        "orphaned_shm_segments": segments,
        "service_roots": services,
        "checkpoint_usage": checkpoints,
        "campaigns": campaigns,
        "issues": issues,
        "healthy": not issues,
    }


def build_doctor_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro doctor",
        description="Diagnose operational residue: orphaned shared-memory "
                    "segments, stale/crashed service roots, and checkpoint "
                    "disk usage.  Read-only; exit 1 when attention is needed.",
    )
    parser.add_argument(
        "roots", nargs="*", default=None, metavar="DIR",
        help="directories to scan for server.json files and snapshot trees "
             "(default: ., results/, service/)",
    )
    parser.add_argument("--json", action="store_true", help="emit the findings as JSON")
    return parser


def doctor_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.cli doctor``."""
    from repro.analysis.report import format_table

    args = build_doctor_parser().parse_args(argv)
    roots = [Path(r) for r in (args.roots or [".", "results", "service"])]
    report = diagnose(roots)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0 if report["healthy"] else 1

    segments = report["orphaned_shm_segments"]
    print(f"shm segments: {len(segments)} orphaned")
    for name in segments:
        print(f"  /dev/shm/{name}")
    if report["service_roots"]:
        print(format_table(
            ["service root", "status", "url"],
            [(s["root"], s["status"], s["url"] or "-") for s in report["service_roots"]],
        ))
    else:
        print("service roots: none found")
    if report["checkpoint_usage"]:
        print(format_table(
            ["checkpoint directory", "snapshots", "MiB"],
            [
                (c["directory"], str(c["snapshots"]), f"{c['bytes'] / 2**20:.2f}")
                for c in report["checkpoint_usage"]
            ],
        ))
    else:
        print("checkpoint snapshots: none found")
    if report["campaigns"]:
        print(format_table(
            ["campaign root", "campaign", "status", "open nodes"],
            [
                (c["root"], c["campaign"] or "-", c["status"],
                 ", ".join(c["running_nodes"]) or "-")
                for c in report["campaigns"]
            ],
        ))
    else:
        print("campaign manifests: none found")
    for issue in report["issues"]:
        print(f"ISSUE: {issue}")
    print("healthy" if report["healthy"] else "attention needed")
    return 0 if report["healthy"] else 1
