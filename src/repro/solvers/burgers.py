"""1-D viscous Burgers solver with a Cole–Hopf analytic reference.

The first *nonlinear* workload of the repository::

    du/dt + u * du/dx = nu * d²u/dx²       on [0, L]
    u(0, t) = u_left,  u(L, t) = u_right   (Dirichlet far-field states)
    u(x, 0) = c - a * tanh(a (x - x0) / (2 nu))

with ``c = (u_left + u_right) / 2`` and ``a = (u_left - u_right) / 2``.  That
initial profile is exactly the Cole–Hopf travelling-wave solution of the
viscous Burgers equation, so the trajectory has a closed form — the front
translates rigidly with speed ``c`` (:func:`cole_hopf_wave`) — which the
solver tests use to bound the discretisation error of the nonlinear scheme.

Parameter vector: ``λ = [u_left, u_right, x0]`` with ``u_left > u_right >= 0``
(a compressive front moving right; the viscous maximum principle then keeps
``u`` inside ``[u_right, u_left]`` for the whole run).

The scheme is explicit: a conservative upwind flux ``f = u²/2`` (valid for the
non-negative velocity regime the parameter box enforces) plus a central
diffusion stencil.  Stability requires

* advection: ``max|u| * dt / dx <= 1`` — depends on ``λ``, so it is checked
  when the trajectory starts (the maximum principle makes the initial check
  sufficient),
* diffusion: ``nu * dt / dx² <= 1/2`` — checked at configuration time.

Violations raise a ``ValueError`` naming the failed CFL condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.solvers.base import Solver

__all__ = ["Burgers1DConfig", "Burgers1DSolver", "cole_hopf_wave"]


def cole_hopf_wave(
    x: np.ndarray,
    t: float,
    u_left: float,
    u_right: float,
    x0: float,
    nu: float = 0.01,
) -> np.ndarray:
    """Exact Cole–Hopf travelling-wave solution of viscous Burgers.

    ``u(x, t) = c - a tanh(a (x - x0 - c t) / (2 nu))`` with
    ``c = (u_left + u_right)/2`` and ``a = (u_left - u_right)/2``: the viscous
    shock profile connecting ``u_left`` (upstream) to ``u_right``
    (downstream), translating rigidly at the Rankine–Hugoniot speed ``c``.
    """
    c = 0.5 * (u_left + u_right)
    a = 0.5 * (u_left - u_right)
    xi = np.asarray(x, dtype=np.float64) - x0 - c * t
    return c - a * np.tanh(a * xi / (2.0 * nu))


@dataclass(frozen=True)
class Burgers1DConfig:
    """Discretisation configuration of the viscous Burgers problem.

    Attributes
    ----------
    n_points:
        Grid nodes including the two Dirichlet boundary nodes.
    n_timesteps:
        Time steps per trajectory (excluding ``t = 0``).
    dt:
        Time-step size; the diffusive CFL bound is checked here, the
        velocity-dependent advective bound when a trajectory starts.
    nu:
        Viscosity (sets the front width ``~ 2 nu / a``).
    length:
        Domain length.
    """

    n_points: int = 64
    n_timesteps: int = 100
    dt: float = 0.005
    nu: float = 0.01
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.n_points < 4:
            raise ValueError("n_points must be >= 4")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0 or self.nu <= 0 or self.length <= 0:
            raise ValueError("dt, nu and length must be positive")
        dx = self.length / (self.n_points - 1)
        diffusive = self.nu * self.dt / dx**2
        if diffusive > 0.5 + 1e-12:
            raise ValueError(
                f"CFL violation (burgers, diffusion): nu*dt/dx^2 = {diffusive:.4f} > 0.5; "
                f"reduce dt or n_points (workload_options={{'dt': ...}})"
            )

    @property
    def dx(self) -> float:
        return self.length / (self.n_points - 1)

    @property
    def coordinates(self) -> np.ndarray:
        return np.linspace(0.0, self.length, self.n_points)


class Burgers1DSolver(Solver):
    """Explicit conservative-upwind solver for the viscous Burgers equation.

    Parameter vector: ``λ = [u_left, u_right, x0]``.  The solver is a pure
    deterministic function of ``λ`` (checkpoint restore fast-forwards it).
    """

    def __init__(self, config: Burgers1DConfig | None = None) -> None:
        self.config = config if config is not None else Burgers1DConfig()
        self.n_timesteps = self.config.n_timesteps
        self._x = self.config.coordinates

    @property
    def field_size(self) -> int:
        return self.config.n_points

    @property
    def parameter_dim(self) -> int:
        return 3

    def _check_parameters(self, parameters: Sequence[float]) -> np.ndarray:
        params = self.validate_parameters(parameters)
        u_left, u_right, _ = params
        if not u_left > u_right:
            raise ValueError(
                f"burgers needs a compressive front: u_left > u_right, "
                f"got u_left={u_left:g}, u_right={u_right:g}"
            )
        if u_right < 0:
            raise ValueError(
                f"the upwind flux assumes non-negative velocities, got u_right={u_right:g}"
            )
        advective = u_left * self.config.dt / self.config.dx
        if advective > 1.0 + 1e-12:
            raise ValueError(
                f"CFL violation (burgers, advection): max|u|*dt/dx = {advective:.4f} > 1; "
                f"reduce dt or n_points (workload_options={{'dt': ...}})"
            )
        return params

    def initial_field(self, parameters: Sequence[float]) -> np.ndarray:
        u_left, u_right, x0 = self._check_parameters(parameters)
        return cole_hopf_wave(self._x, 0.0, u_left, u_right, x0, nu=self.config.nu)

    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        u_left, u_right, x0 = self._check_parameters(parameters)
        cfg = self.config
        field = cole_hopf_wave(self._x, 0.0, u_left, u_right, x0, nu=cfg.nu)
        yield field.copy()
        dx = cfg.dx
        dt_dx = cfg.dt / dx
        diff = cfg.nu * cfg.dt / dx**2
        for _ in range(self.n_timesteps):
            flux = 0.5 * field * field
            # Conservative left-biased (upwind for u >= 0) flux difference on
            # the interior; Dirichlet nodes stay pinned to the far-field states.
            divergence = flux[1:-1] - flux[:-2]
            laplacian = field[2:] - 2.0 * field[1:-1] + field[:-2]
            interior = field[1:-1] - dt_dx * divergence + diff * laplacian
            field = np.concatenate(([u_left], interior, [u_right]))
            yield field.copy()

    def exact(self, parameters: Sequence[float], t: float) -> np.ndarray:
        """Closed-form Cole–Hopf field at physical time ``t`` (for validation)."""
        u_left, u_right, x0 = self._check_parameters(parameters)
        return cole_hopf_wave(self._x, t, u_left, u_right, x0, nu=self.config.nu)
