"""Trajectory containers.

A *trajectory* is the sequence of solution fields produced by a solver for one
input-parameter vector ``λ_j``:  ``x_j = [x_{j,0} → x_{j,1} → … → x_{j,T}]``
(Section 2.1 of the paper).  In the on-line setting the fields are streamed
time step by time step, so the container also supports incremental appends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

__all__ = ["TimeStepSample", "Trajectory"]


@dataclass(frozen=True)
class TimeStepSample:
    """One training sample: a solution field at one time step of one trajectory.

    Attributes
    ----------
    simulation_id:
        Index ``j`` of the parameter vector in the experiment budget.
    parameters:
        Input-parameter vector ``λ_j`` (for the heat case: ``[T0..T4]``).
    timestep:
        Time-step index ``t``.
    field:
        Flattened solution field ``x_{j,t}`` (length ``M²`` for the 2-D heat
        case).
    """

    simulation_id: int
    parameters: np.ndarray
    timestep: int
    field: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", np.asarray(self.parameters, dtype=np.float64))
        object.__setattr__(self, "field", np.asarray(self.field, dtype=np.float64).reshape(-1))

    @property
    def key(self) -> tuple[int, int]:
        """Unique identifier ``(j, t)`` of the sample within an experiment."""
        return (self.simulation_id, self.timestep)


@dataclass
class Trajectory:
    """Full (or partially streamed) trajectory for one parameter vector."""

    simulation_id: int
    parameters: np.ndarray
    fields: List[np.ndarray] = field(default_factory=list)
    timesteps: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.parameters = np.asarray(self.parameters, dtype=np.float64)

    def append(self, timestep: int, field_values: np.ndarray) -> TimeStepSample:
        """Append one time step and return the corresponding sample."""
        if self.timesteps and timestep <= self.timesteps[-1]:
            raise ValueError(
                f"timesteps must be strictly increasing, got {timestep} after {self.timesteps[-1]}"
            )
        flat = np.asarray(field_values, dtype=np.float64).reshape(-1)
        self.fields.append(flat)
        self.timesteps.append(int(timestep))
        return TimeStepSample(self.simulation_id, self.parameters, int(timestep), flat)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[TimeStepSample]:
        for t, f in zip(self.timesteps, self.fields):
            yield TimeStepSample(self.simulation_id, self.parameters, t, f)

    def as_array(self) -> np.ndarray:
        """Stack the fields into a ``(T, M²)`` array."""
        if not self.fields:
            return np.empty((0, 0), dtype=np.float64)
        return np.stack(self.fields, axis=0)

    def sample_at(self, timestep: int) -> Optional[TimeStepSample]:
        """Return the sample at a given time step, or ``None`` if absent."""
        try:
            index = self.timesteps.index(timestep)
        except ValueError:
            return None
        return TimeStepSample(self.simulation_id, self.parameters, timestep, self.fields[index])

    @property
    def final_field(self) -> np.ndarray:
        if not self.fields:
            raise ValueError("trajectory is empty")
        return self.fields[-1]
