"""1-D heat-equation solver.

Not part of the paper's evaluation (which uses the 2-D case), but included as
a second, cheaper PDE for the extension examples and for cross-checking the
numerical schemes against the closed-form separation-of-variables solution in
:mod:`repro.solvers.analytic`.

Problem definition::

    du/dt = alpha * d²u/dx²          on [0, L]
    u(0, t) = T_left,  u(L, t) = T_right
    u(x, 0) = T0

Parameter vector: ``λ = [T0, T_left, T_right]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np
import scipy.sparse as sparse
import scipy.sparse.linalg as sparse_linalg

from repro.solvers.base import Solver
from repro.solvers.grid import Grid1D

__all__ = ["Heat1DConfig", "Heat1DImplicitSolver"]


@dataclass(frozen=True)
class Heat1DConfig:
    """Discretisation configuration of the 1-D heat problem."""

    n_points: int = 64
    n_timesteps: int = 100
    dt: float = 0.01
    alpha: float = 1.0
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.n_points < 3:
            raise ValueError("n_points must be >= 3")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0 or self.alpha <= 0 or self.length <= 0:
            raise ValueError("dt, alpha and length must be positive")

    @property
    def grid(self) -> Grid1D:
        return Grid1D(n_points=self.n_points, length=self.length)


class Heat1DImplicitSolver(Solver):
    """Backward-Euler finite-difference solver for the 1-D heat equation."""

    def __init__(self, config: Heat1DConfig | None = None) -> None:
        self.config = config if config is not None else Heat1DConfig()
        self.grid = self.config.grid
        self.n_timesteps = self.config.n_timesteps
        m = self.config.n_points - 2
        dx2 = self.grid.dx**2
        laplacian = sparse.diags(
            [np.ones(m - 1), -2.0 * np.ones(m), np.ones(m - 1)], offsets=[-1, 0, 1], format="csc"
        ) / dx2
        system = sparse.identity(m, format="csc") - self.config.dt * self.config.alpha * laplacian
        self._lu = sparse_linalg.splu(system)
        self._dx2 = dx2

    @property
    def field_size(self) -> int:
        return self.config.n_points

    @property
    def parameter_dim(self) -> int:
        return 3

    def initial_field(self, parameters: Sequence[float]) -> np.ndarray:
        t0, t_left, t_right = self.validate_parameters(parameters)
        field = np.full(self.config.n_points, t0, dtype=np.float64)
        field[0] = t_left
        field[-1] = t_right
        return field

    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        params = self.validate_parameters(parameters)
        _, t_left, t_right = params
        field = self.initial_field(params)
        yield field.copy()
        dt_alpha = self.config.dt * self.config.alpha
        boundary_term = np.zeros(self.config.n_points - 2)
        boundary_term[0] = dt_alpha * t_left / self._dx2
        boundary_term[-1] = dt_alpha * t_right / self._dx2
        interior = field[1:-1].copy()
        for _ in range(self.n_timesteps):
            rhs = interior + boundary_term
            interior = self._lu.solve(rhs)
            field[1:-1] = interior
            yield field.copy()

    def steady_state(self, parameters: Sequence[float]) -> np.ndarray:
        """Exact stationary solution: linear profile between the two boundaries."""
        _, t_left, t_right = self.validate_parameters(parameters)
        x = self.grid.coordinates / self.config.length
        return t_left + (t_right - t_left) * x
