"""2-D heat-equation solvers (the paper's "HeatPDE" case, Appendix B.1).

The PDE on the unit square with Dirichlet boundaries is::

    du/dt = alpha * (d²u/dx1² + d²u/dx2²)
    u(x1=0, x2, t) = T1      u(x1=L, x2, t) = T2
    u(x1, x2=0, t) = T3      u(x1, x2=L, t) = T4
    u(x, t=0)      = T0

discretised with second-order central differences on an ``M × M`` Cartesian
grid.  Two time integrators are provided:

* :class:`Heat2DImplicitSolver` — implicit (backward) Euler, the scheme used
  by the paper's in-house solver.  The linear system ``(I - dt*alpha*L) u^{n+1}
  = u^n + boundary terms`` is assembled once as a sparse matrix and
  pre-factorised with ``scipy.sparse.linalg.splu`` so each time step is a pair
  of triangular solves.  Unconditionally stable.
* :class:`Heat2DExplicitSolver` — forward Euler, used for cross-validation of
  the implicit scheme and as a cheaper option in tests (stability requires
  ``dt <= dx²/(4 alpha)``; the solver sub-cycles internally when needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np
import scipy.sparse as sparse
import scipy.sparse.linalg as sparse_linalg

from repro.solvers.base import Solver
from repro.solvers.grid import Grid2D

__all__ = ["Heat2DConfig", "Heat2DImplicitSolver", "Heat2DExplicitSolver", "apply_dirichlet_boundaries"]


@dataclass(frozen=True)
class Heat2DConfig:
    """Discretisation configuration of the 2-D heat problem.

    Attributes
    ----------
    grid_size:
        ``M`` — number of nodes per side (the paper uses 64).
    n_timesteps:
        ``T`` — number of solver iterations per trajectory (the paper uses 100).
    dt:
        Time-step size in seconds (the paper uses 0.01 s).
    alpha:
        Thermal diffusivity (fixed to 1 m²/s in the paper).
    length:
        Physical side length of the square domain.
    """

    grid_size: int = 64
    n_timesteps: int = 100
    dt: float = 0.01
    alpha: float = 1.0
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.grid_size < 3:
            raise ValueError("grid_size must be >= 3")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.length <= 0:
            raise ValueError("length must be positive")

    @property
    def grid(self) -> Grid2D:
        return Grid2D(n=self.grid_size, length=self.length)

    def scaled(self, grid_size: int | None = None, n_timesteps: int | None = None) -> "Heat2DConfig":
        """Return a copy with a different resolution (used by scaled-down benches)."""
        return Heat2DConfig(
            grid_size=grid_size if grid_size is not None else self.grid_size,
            n_timesteps=n_timesteps if n_timesteps is not None else self.n_timesteps,
            dt=self.dt,
            alpha=self.alpha,
            length=self.length,
        )


def apply_dirichlet_boundaries(field: np.ndarray, t1: float, t2: float, t3: float, t4: float) -> np.ndarray:
    """Impose the four Dirichlet boundary temperatures on a 2-D field in place.

    Boundary layout matches the paper's Eqs. (14)–(15): ``T1`` at ``x1 = 0``,
    ``T2`` at ``x1 = L``, ``T3`` at ``x2 = 0``, ``T4`` at ``x2 = L``.  Corners
    take the value of the last boundary applied (``T3``/``T4``), matching the
    reference in-house solver's behaviour; corner choice does not affect the
    interior solution.
    """
    field[0, :] = t1
    field[-1, :] = t2
    field[:, 0] = t3
    field[:, -1] = t4
    return field


def _laplacian_interior(n: int, dx: float) -> sparse.csr_matrix:
    """5-point Laplacian on the ``(n-2)²`` interior nodes (Dirichlet)."""
    m = n - 2
    main = -4.0 * np.ones(m)
    off = np.ones(m - 1)
    lap_1d = sparse.diags([off, main, off], offsets=[-1, 0, 1], format="csr")
    identity = sparse.identity(m, format="csr")
    # 2-D Laplacian via Kronecker sums; row-major (x1 slow, x2 fast) ordering.
    lap_2d = sparse.kron(identity, sparse.diags([np.ones(m - 1), -2.0 * np.ones(m), np.ones(m - 1)], [-1, 0, 1])) + sparse.kron(
        sparse.diags([np.ones(m - 1), -2.0 * np.ones(m), np.ones(m - 1)], [-1, 0, 1]), identity
    )
    del lap_1d, main, off
    return (lap_2d / (dx * dx)).tocsr()


def _boundary_contribution(
    n: int, dx: float, t1: float, t2: float, t3: float, t4: float
) -> np.ndarray:
    """Contribution of the Dirichlet boundary values to the interior Laplacian."""
    m = n - 2
    contrib = np.zeros((m, m), dtype=np.float64)
    # Neighbours across the x1 = 0 boundary (first interior row).
    contrib[0, :] += t1
    # Neighbours across the x1 = L boundary (last interior row).
    contrib[-1, :] += t2
    # Neighbours across the x2 = 0 boundary (first interior column).
    contrib[:, 0] += t3
    # Neighbours across the x2 = L boundary (last interior column).
    contrib[:, -1] += t4
    return contrib.reshape(-1) / (dx * dx)


class Heat2DImplicitSolver(Solver):
    """Backward-Euler finite-difference solver (pre-factorised sparse system)."""

    def __init__(self, config: Heat2DConfig | None = None) -> None:
        self.config = config if config is not None else Heat2DConfig()
        self.grid = self.config.grid
        self.n_timesteps = self.config.n_timesteps
        m = self.config.grid_size - 2
        laplacian = _laplacian_interior(self.config.grid_size, self.grid.dx)
        system = sparse.identity(m * m, format="csc") - self.config.dt * self.config.alpha * laplacian.tocsc()
        # One-time LU factorisation; every time step is then two triangular solves.
        self._lu = sparse_linalg.splu(system)

    # ------------------------------------------------------------ interface
    @property
    def field_size(self) -> int:
        return self.grid.n_total

    @property
    def parameter_dim(self) -> int:
        return 5

    def initial_field(self, parameters: Sequence[float]) -> np.ndarray:
        """Initial temperature field: interior at ``T0``, boundaries imposed."""
        t0, t1, t2, t3, t4 = self.validate_parameters(parameters)
        field = np.full(self.grid.shape, t0, dtype=np.float64)
        return apply_dirichlet_boundaries(field, t1, t2, t3, t4)

    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        params = self.validate_parameters(parameters)
        t0, t1, t2, t3, t4 = params
        dt_alpha = self.config.dt * self.config.alpha
        boundary_term = dt_alpha * _boundary_contribution(
            self.config.grid_size, self.grid.dx, t1, t2, t3, t4
        )
        field = self.initial_field(params)
        yield field.reshape(-1).copy()
        interior = field[1:-1, 1:-1].reshape(-1).copy()
        for _ in range(self.n_timesteps):
            rhs = interior + boundary_term
            interior = self._lu.solve(rhs)
            field[1:-1, 1:-1] = interior.reshape(
                self.config.grid_size - 2, self.config.grid_size - 2
            )
            yield field.reshape(-1).copy()

    def steady_state(self, parameters: Sequence[float]) -> np.ndarray:
        """Solve the stationary (Laplace) problem directly; used for validation."""
        params = self.validate_parameters(parameters)
        _, t1, t2, t3, t4 = params
        m = self.config.grid_size - 2
        laplacian = _laplacian_interior(self.config.grid_size, self.grid.dx)
        rhs = -_boundary_contribution(self.config.grid_size, self.grid.dx, t1, t2, t3, t4)
        interior = sparse_linalg.spsolve(laplacian.tocsc(), rhs)
        field = np.zeros(self.grid.shape, dtype=np.float64)
        field[1:-1, 1:-1] = interior.reshape(m, m)
        apply_dirichlet_boundaries(field, t1, t2, t3, t4)
        return field.reshape(-1)


class Heat2DExplicitSolver(Solver):
    """Forward-Euler solver with automatic sub-cycling for stability."""

    def __init__(self, config: Heat2DConfig | None = None) -> None:
        self.config = config if config is not None else Heat2DConfig()
        self.grid = self.config.grid
        self.n_timesteps = self.config.n_timesteps
        dx = self.grid.dx
        stable_dt = dx * dx / (4.0 * self.config.alpha)
        # Sub-cycle so that each macro step dt is integrated stably.
        self._substeps = max(1, int(np.ceil(self.config.dt / (0.9 * stable_dt))))
        self._sub_dt = self.config.dt / self._substeps

    @property
    def field_size(self) -> int:
        return self.grid.n_total

    @property
    def parameter_dim(self) -> int:
        return 5

    @property
    def substeps(self) -> int:
        """Number of internal sub-steps per macro time step (>= 1)."""
        return self._substeps

    def initial_field(self, parameters: Sequence[float]) -> np.ndarray:
        t0, t1, t2, t3, t4 = self.validate_parameters(parameters)
        field = np.full(self.grid.shape, t0, dtype=np.float64)
        return apply_dirichlet_boundaries(field, t1, t2, t3, t4)

    def _step_once(self, field: np.ndarray, boundary: Tuple[float, float, float, float]) -> np.ndarray:
        """One explicit sub-step (reference form, kept for tests/debugging).

        :meth:`steps` uses the fused in-place formulation below, which
        performs this exact arithmetic without the per-sub-step temporaries.
        """
        dx2 = self.grid.dx * self.grid.dx
        lap = np.zeros_like(field)
        lap[1:-1, 1:-1] = (
            field[2:, 1:-1] + field[:-2, 1:-1] + field[1:-1, 2:] + field[1:-1, :-2] - 4.0 * field[1:-1, 1:-1]
        ) / dx2
        field = field + self._sub_dt * self.config.alpha * lap
        return apply_dirichlet_boundaries(field, *boundary)

    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        """Yield the field at ``t = 0, 1, …, n_timesteps`` (flattened copies).

        The sub-cycled stencil update is fused: the interior Laplacian, the
        Euler update and the Dirichlet re-imposition collapse into a handful
        of ``out=``-buffered ufunc calls on two preallocated interior-sized
        scratch arrays, eliminating the three full-grid temporaries the
        straightforward expression allocates per sub-step.  The element-wise
        operation order matches :meth:`_step_once` exactly, so every yielded
        field is bit-identical (asserted in ``tests/solvers/test_heat2d.py``).
        """
        params = self.validate_parameters(parameters)
        field = self.initial_field(params)
        yield field.reshape(-1).copy()
        dx2 = self.grid.dx * self.grid.dx
        coef = self._sub_dt * self.config.alpha
        interior = field[1:-1, 1:-1]
        buf = np.empty_like(interior)
        tmp = np.empty_like(interior)
        for _ in range(self.n_timesteps):
            for _ in range(self._substeps):
                # lap = (N + S + E + W - 4·C) / dx²  — same op order as the
                # reference expression in _step_once.
                np.add(field[2:, 1:-1], field[:-2, 1:-1], out=buf)
                np.add(buf, field[1:-1, 2:], out=buf)
                np.add(buf, field[1:-1, :-2], out=buf)
                np.multiply(interior, 4.0, out=tmp)
                np.subtract(buf, tmp, out=buf)
                np.divide(buf, dx2, out=buf)
                # interior ← interior + coef·lap; the boundary rows/columns
                # are Dirichlet-pinned, so re-imposing them is a no-op.
                np.multiply(buf, coef, out=buf)
                np.add(interior, buf, out=interior)
            yield field.reshape(-1).copy()
