"""Solver protocol shared by every PDE solver in the repository.

Solvers are *autoregressive*: :meth:`Solver.solve` yields successive solution
fields.  The Melissa client wraps this iterator and streams each field to the
server as soon as it is produced, which is the behaviour the on-line training
framework (and hence Breed) depends on.
"""

from __future__ import annotations

import abc
from typing import Iterator, Sequence

import numpy as np

from repro.solvers.trajectory import Trajectory

__all__ = ["Solver"]


class Solver(abc.ABC):
    """Abstract autoregressive PDE solver."""

    #: number of time steps produced per trajectory (excluding the initial state)
    n_timesteps: int

    @property
    @abc.abstractmethod
    def field_size(self) -> int:
        """Length of the flattened solution field (surrogate output size)."""

    @property
    @abc.abstractmethod
    def parameter_dim(self) -> int:
        """Dimensionality of the input-parameter vector ``λ``."""

    @abc.abstractmethod
    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        """Yield flattened solution fields for ``t = 0, 1, …, n_timesteps``.

        The first yielded field is the initial condition (``t = 0``).
        """

    def solve(self, parameters: Sequence[float], simulation_id: int = 0) -> Trajectory:
        """Run the full trajectory and return it as a :class:`Trajectory`."""
        trajectory = Trajectory(simulation_id=simulation_id, parameters=np.asarray(parameters))
        for timestep, field in enumerate(self.steps(parameters)):
            trajectory.append(timestep, field)
        return trajectory

    def validate_parameters(self, parameters: Sequence[float]) -> np.ndarray:
        """Check the parameter-vector shape and return it as an array."""
        params = np.asarray(parameters, dtype=np.float64).reshape(-1)
        if params.shape[0] != self.parameter_dim:
            raise ValueError(
                f"expected {self.parameter_dim} parameters, got {params.shape[0]}"
            )
        if not np.all(np.isfinite(params)):
            raise ValueError("parameters must be finite")
        return params
