"""Cartesian grids for the finite-difference solvers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["Grid1D", "Grid2D"]


@dataclass(frozen=True)
class Grid1D:
    """Uniform 1-D grid on ``[0, length]`` with ``n_points`` nodes."""

    n_points: int
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.n_points < 3:
            raise ValueError("Grid1D requires at least 3 points")
        if self.length <= 0:
            raise ValueError("length must be positive")

    @property
    def dx(self) -> float:
        return self.length / (self.n_points - 1)

    @property
    def coordinates(self) -> np.ndarray:
        return np.linspace(0.0, self.length, self.n_points)

    @property
    def n_interior(self) -> int:
        return self.n_points - 2


@dataclass(frozen=True)
class Grid2D:
    """Uniform square grid on ``[0, length]²`` with ``n x n`` nodes.

    The paper discretises the temperature field on an ``M × M`` Cartesian grid
    (Appendix B.1); the surrogate output layer therefore has ``M²`` neurons.
    """

    n: int
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.n < 3:
            raise ValueError("Grid2D requires at least 3 points per side")
        if self.length <= 0:
            raise ValueError("length must be positive")

    @property
    def dx(self) -> float:
        return self.length / (self.n - 1)

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    @property
    def n_total(self) -> int:
        """Total number of nodes, i.e. the surrogate's output dimension ``M²``."""
        return self.n * self.n

    @property
    def n_interior(self) -> int:
        return (self.n - 2) * (self.n - 2)

    @property
    def coordinates(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshgrid coordinate arrays ``(X1, X2)`` with shape ``(n, n)``."""
        axis = np.linspace(0.0, self.length, self.n)
        return np.meshgrid(axis, axis, indexing="ij")

    def interior_index(self) -> np.ndarray:
        """Boolean mask of interior (non-boundary) nodes, shape ``(n, n)``."""
        mask = np.zeros((self.n, self.n), dtype=bool)
        mask[1:-1, 1:-1] = True
        return mask

    def boundary_index(self) -> np.ndarray:
        """Boolean mask of boundary nodes."""
        return ~self.interior_index()

    def flatten_field(self, field: np.ndarray) -> np.ndarray:
        """Flatten a 2-D field into the surrogate's output vector (row-major)."""
        field = np.asarray(field, dtype=np.float64)
        if field.shape != self.shape:
            raise ValueError(f"field shape {field.shape} does not match grid {self.shape}")
        return field.reshape(-1)

    def unflatten_field(self, vector: np.ndarray) -> np.ndarray:
        """Reverse of :meth:`flatten_field`."""
        vec = np.asarray(vector, dtype=np.float64)
        if vec.size != self.n_total:
            raise ValueError(f"vector has {vec.size} entries, expected {self.n_total}")
        return vec.reshape(self.shape)
