"""1-D reaction–diffusion (Fisher–KPP) solver.

The third new workload family: diffusion coupled to a logistic reaction::

    du/dt = D * d²u/dx² + r * u * (1 - u)     on [0, L]
    du/dx = 0 at x = 0, L                     (zero-flux Neumann boundaries)
    u(x, 0) = A * exp(-(x - x0)² / (2 sigma0²))

Parameter vector: ``λ = [rate, amplitude, center]`` — the reaction rate ``r``,
the seed amplitude ``A`` and the seed position ``x0`` (``sigma0`` is a
configuration knob).  For ``A ∈ [0, 1]`` the continuous dynamics stay inside
the invariant region ``[0, 1]`` and the seeded population grows and spreads as
the classic KPP front (asymptotic speed ``2 sqrt(r D)``).

The scheme is explicit Euler: a central diffusion stencil with reflected
ghost nodes for the Neumann condition, plus the pointwise logistic source.  It
preserves the ``[0, 1]`` invariant region exactly when the *combined* step is
a sub-convex update,

* ``2 * D * dt / dx² + r * dt <= 1``

(which implies the individual diffusive and reaction limits).  The
rate-independent part ``D * dt / dx² <= 1/2`` is checked at configuration
time for early feedback; the full condition — rate is a run parameter — is
checked when the trajectory starts.  Violations raise a ``ValueError``
naming the failed stability condition.
Useful exact limits for validation: ``r = 0`` reduces to pure Neumann
diffusion (mass is conserved to round-off by the reflected stencil), and the
uniform states ``u ≡ 0`` / ``u ≡ 1`` are fixed points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.solvers.base import Solver

__all__ = ["FisherKPPConfig", "FisherKPPSolver", "kpp_front_speed"]


def kpp_front_speed(rate: float, diffusivity: float) -> float:
    """Asymptotic KPP front speed ``2 sqrt(r D)`` (for validation heuristics)."""
    return 2.0 * float(np.sqrt(rate * diffusivity))


@dataclass(frozen=True)
class FisherKPPConfig:
    """Discretisation configuration of the Fisher–KPP problem.

    Attributes
    ----------
    n_points:
        Grid nodes (Neumann boundaries at both ends).
    n_timesteps:
        Time steps per trajectory (excluding ``t = 0``).
    dt:
        Time-step size; the diffusive bound is checked here, the
        rate-dependent reaction bound when a trajectory starts.
    diffusivity:
        ``D`` — sets the front width and speed together with the rate.
    sigma0:
        Width of the initial Gaussian seed.
    length:
        Domain length.
    """

    n_points: int = 64
    n_timesteps: int = 100
    dt: float = 0.01
    diffusivity: float = 0.002
    sigma0: float = 0.05
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.n_points < 4:
            raise ValueError("n_points must be >= 4")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0 or self.diffusivity < 0 or self.length <= 0 or self.sigma0 <= 0:
            raise ValueError("dt, sigma0 and length must be positive, diffusivity non-negative")
        dx = self.length / (self.n_points - 1)
        diffusive = self.diffusivity * self.dt / dx**2
        if diffusive > 0.5 + 1e-12:
            raise ValueError(
                f"CFL violation (fisher, diffusion): D*dt/dx^2 = {diffusive:.4f} > 0.5; "
                f"reduce dt or n_points (workload_options={{'dt': ...}})"
            )

    @property
    def dx(self) -> float:
        return self.length / (self.n_points - 1)

    @property
    def coordinates(self) -> np.ndarray:
        return np.linspace(0.0, self.length, self.n_points)


class FisherKPPSolver(Solver):
    """Explicit Euler solver for the Fisher–KPP equation with Neumann walls.

    Parameter vector: ``λ = [rate, amplitude, center]``.  The solver is a
    pure deterministic function of ``λ`` (checkpoint restore fast-forwards
    it); for amplitudes in ``[0, 1]`` every produced field stays in the
    ``[0, 1]`` invariant region.
    """

    def __init__(self, config: FisherKPPConfig | None = None) -> None:
        self.config = config if config is not None else FisherKPPConfig()
        self.n_timesteps = self.config.n_timesteps
        self._x = self.config.coordinates

    @property
    def field_size(self) -> int:
        return self.config.n_points

    @property
    def parameter_dim(self) -> int:
        return 3

    def _check_parameters(self, parameters: Sequence[float]) -> np.ndarray:
        params = self.validate_parameters(parameters)
        rate, amplitude, _ = params
        if rate < 0:
            raise ValueError(f"reaction rate must be non-negative, got {rate:g}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(
                f"seed amplitude must lie in the invariant region [0, 1], got {amplitude:g}"
            )
        # [0, 1]-invariance of the combined explicit step needs
        # 2*D*dt/dx^2 + r*dt <= 1 (sub-convexity); the two individual limits
        # alone are NOT sufficient.
        cfg = self.config
        combined = 2.0 * cfg.diffusivity * cfg.dt / cfg.dx**2 + rate * cfg.dt
        if combined > 1.0 + 1e-12:
            raise ValueError(
                f"stability violation (fisher, reaction+diffusion): "
                f"2*D*dt/dx^2 + r*dt = {combined:.4f} > 1 breaks the [0, 1] invariant "
                f"region; reduce dt (workload_options={{'dt': ...}}) or the rate bound"
            )
        return params

    def initial_field(self, parameters: Sequence[float]) -> np.ndarray:
        _, amplitude, center = self._check_parameters(parameters)
        return amplitude * np.exp(-0.5 * ((self._x - center) / self.config.sigma0) ** 2)

    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        rate, amplitude, center = self._check_parameters(parameters)
        cfg = self.config
        field = amplitude * np.exp(-0.5 * ((self._x - center) / cfg.sigma0) ** 2)
        yield field.copy()
        diff = cfg.diffusivity * cfg.dt / cfg.dx**2
        for _ in range(self.n_timesteps):
            # Reflected ghost nodes implement the zero-flux Neumann condition.
            padded = np.concatenate(([field[1]], field, [field[-2]]))
            laplacian = padded[2:] - 2.0 * field + padded[:-2]
            field = field + diff * laplacian + cfg.dt * rate * field * (1.0 - field)
            yield field.copy()
