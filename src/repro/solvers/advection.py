"""1-D and 2-D advection–diffusion solvers on periodic domains.

The first workload family beyond pure diffusion: a passive scalar transported
with constant velocity while diffusing::

    du/dt + c · ∇u = nu * ∇²u        on the periodic box [0, L)^d
    u(x, 0) = A * G_sigma(x - x0)    (periodically wrapped Gaussian pulse)

Parameter vectors:

* 1-D: ``λ = [amplitude, center, width]``,
* 2-D: ``λ = [amplitude, center_x, center_y, width]``.

The schemes are explicit: first-order upwind for the advective term plus a
second-order central stencil for diffusion.  Explicit transport is only
stable under the CFL conditions

* advection: ``(Σ_k |c_k|) · dt / dx <= 1``,
* diffusion: ``nu · dt / dx² <= 1/(2d)``,

which are checked at configuration time — a violating ``dt``/``n_points``
combination raises a ``ValueError`` naming the failing condition instead of
silently producing garbage fields.

Because the domain is periodic the exact solution stays closed-form: the heat
kernel maps a Gaussian pulse to a Gaussian pulse translated by ``c·t`` with
variance grown by ``2·nu·t`` (:func:`advected_gaussian_1d` /
:func:`advected_gaussian_2d`), which the solver tests use to bound the
discretisation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.solvers.base import Solver

__all__ = [
    "AdvectionDiffusion1DConfig",
    "AdvectionDiffusion1DSolver",
    "AdvectionDiffusion2DConfig",
    "AdvectionDiffusion2DSolver",
    "advected_gaussian_1d",
    "advected_gaussian_2d",
    "wrapped_gaussian",
]


def wrapped_gaussian(
    offset: np.ndarray, sigma: float, length: float = 1.0, n_images: int = 3
) -> np.ndarray:
    """Periodically wrapped (unnormalised) Gaussian ``Σ_m exp(-(d+mL)²/2σ²)``.

    ``offset`` is the signed distance to the pulse center; summing over
    ``2·n_images + 1`` periodic images makes the profile exact on the circle
    up to tails of order ``exp(-(n_images·L)²/2σ²)`` (far below float
    precision for the pulse widths used here).
    """
    offset = np.asarray(offset, dtype=np.float64)
    total = np.zeros_like(offset)
    for m in range(-n_images, n_images + 1):
        shifted = offset + m * length
        total += np.exp(-0.5 * (shifted / sigma) ** 2)
    return total


def advected_gaussian_1d(
    x: np.ndarray,
    t: float,
    amplitude: float,
    center: float,
    width: float,
    velocity: float = 1.0,
    nu: float = 0.01,
    length: float = 1.0,
) -> np.ndarray:
    """Exact solution of 1-D periodic advection–diffusion for a Gaussian pulse.

    The pulse translates with ``velocity`` and spreads to variance
    ``width² + 2·nu·t``; the amplitude decays by ``width / width_t`` so total
    mass is conserved.
    """
    width_t = float(np.sqrt(width * width + 2.0 * nu * t))
    offset = np.asarray(x, dtype=np.float64) - center - velocity * t
    return amplitude * (width / width_t) * wrapped_gaussian(offset, width_t, length)


def advected_gaussian_2d(
    x: np.ndarray,
    y: np.ndarray,
    t: float,
    amplitude: float,
    center: Tuple[float, float],
    width: float,
    velocity: Tuple[float, float] = (1.0, 0.5),
    nu: float = 0.005,
    length: float = 1.0,
) -> np.ndarray:
    """Exact solution of 2-D periodic advection–diffusion for a Gaussian blob.

    The 2-D heat kernel factorises, so the solution is the product of two
    wrapped 1-D profiles with the shared grown width and an amplitude factor
    ``(width / width_t)²``.
    """
    width_t = float(np.sqrt(width * width + 2.0 * nu * t))
    dx = np.asarray(x, dtype=np.float64) - center[0] - velocity[0] * t
    dy = np.asarray(y, dtype=np.float64) - center[1] - velocity[1] * t
    profile = wrapped_gaussian(dx, width_t, length) * wrapped_gaussian(dy, width_t, length)
    return amplitude * (width / width_t) ** 2 * profile


def _check_cfl(advective: float, diffusive: float, what: str) -> None:
    """Raise a loud, named error when an explicit stability bound is violated."""
    if advective > 1.0 + 1e-12:
        raise ValueError(
            f"CFL violation ({what}, advection): |velocity|*dt/dx = {advective:.4f} > 1; "
            f"reduce dt or n_points (workload_options={{'dt': ...}})"
        )
    if diffusive > 1.0 + 1e-12:
        raise ValueError(
            f"CFL violation ({what}, diffusion): the explicit diffusion stencil needs "
            f"nu*dt/dx^2 <= 1/(2*dim), got {diffusive:.4f}x the limit; "
            f"reduce dt or n_points (workload_options={{'dt': ...}})"
        )


@dataclass(frozen=True)
class AdvectionDiffusion1DConfig:
    """Discretisation configuration of the 1-D advection–diffusion problem.

    Attributes
    ----------
    n_points:
        Number of periodic grid nodes (``dx = length / n_points``).
    n_timesteps:
        Time steps per trajectory (excluding ``t = 0``).
    dt:
        Time-step size; must satisfy both CFL conditions (checked here).
    velocity:
        Constant transport speed ``c``.
    nu:
        Diffusivity.
    length:
        Period of the domain.
    """

    n_points: int = 64
    n_timesteps: int = 100
    dt: float = 0.004
    velocity: float = 1.0
    nu: float = 0.01
    length: float = 1.0

    def __post_init__(self) -> None:
        if self.n_points < 4:
            raise ValueError("n_points must be >= 4")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0 or self.nu < 0 or self.length <= 0:
            raise ValueError("dt and length must be positive, nu non-negative")
        dx = self.length / self.n_points
        _check_cfl(
            abs(self.velocity) * self.dt / dx,
            2.0 * self.nu * self.dt / dx**2,
            "advection1d",
        )

    @property
    def dx(self) -> float:
        return self.length / self.n_points

    @property
    def coordinates(self) -> np.ndarray:
        """Node coordinates ``[0, dx, …, L - dx]`` (periodic, no duplicate)."""
        return np.linspace(0.0, self.length, self.n_points, endpoint=False)


class AdvectionDiffusion1DSolver(Solver):
    """Explicit upwind + central-diffusion solver on the periodic interval.

    Parameter vector: ``λ = [amplitude, center, width]`` of the initial
    Gaussian pulse.  The solver is a pure deterministic function of ``λ``, so
    checkpoint restore fast-forwards it like every other solver.
    """

    def __init__(self, config: AdvectionDiffusion1DConfig | None = None) -> None:
        self.config = config if config is not None else AdvectionDiffusion1DConfig()
        self.n_timesteps = self.config.n_timesteps
        self._x = self.config.coordinates

    @property
    def field_size(self) -> int:
        return self.config.n_points

    @property
    def parameter_dim(self) -> int:
        return 3

    def initial_field(self, parameters: Sequence[float]) -> np.ndarray:
        amplitude, center, width = self.validate_parameters(parameters)
        if width <= 0:
            raise ValueError("pulse width must be positive")
        return amplitude * wrapped_gaussian(self._x - center, width, self.config.length)

    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        cfg = self.config
        field = self.initial_field(parameters)
        yield field.copy()
        dx = cfg.dx
        adv = cfg.velocity * cfg.dt / dx
        diff = cfg.nu * cfg.dt / dx**2
        for _ in range(self.n_timesteps):
            if cfg.velocity >= 0:
                gradient = field - np.roll(field, 1)
            else:
                gradient = np.roll(field, -1) - field
            laplacian = np.roll(field, 1) - 2.0 * field + np.roll(field, -1)
            field = field - adv * gradient + diff * laplacian
            yield field.copy()

    def exact(self, parameters: Sequence[float], t: float) -> np.ndarray:
        """Closed-form field at physical time ``t`` (for validation)."""
        amplitude, center, width = self.validate_parameters(parameters)
        return advected_gaussian_1d(
            self._x, t, amplitude, center, width,
            velocity=self.config.velocity, nu=self.config.nu, length=self.config.length,
        )


@dataclass(frozen=True)
class AdvectionDiffusion2DConfig:
    """Discretisation configuration of the 2-D advection–diffusion problem."""

    grid_size: int = 32
    n_timesteps: int = 50
    dt: float = 0.005
    velocity: Tuple[float, float] = (1.0, 0.5)
    nu: float = 0.005
    length: float = 1.0

    def __post_init__(self) -> None:
        # Tolerate list-typed velocity from JSON-borne workload_options.
        object.__setattr__(self, "velocity", tuple(float(v) for v in self.velocity))
        if len(self.velocity) != 2:
            raise ValueError("velocity must have two components")
        if self.grid_size < 4:
            raise ValueError("grid_size must be >= 4")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0 or self.nu < 0 or self.length <= 0:
            raise ValueError("dt and length must be positive, nu non-negative")
        dx = self.length / self.grid_size
        speed = abs(self.velocity[0]) + abs(self.velocity[1])
        _check_cfl(
            speed * self.dt / dx,
            4.0 * self.nu * self.dt / dx**2,
            "advection2d",
        )

    @property
    def dx(self) -> float:
        return self.length / self.grid_size

    @property
    def coordinates(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshgrid node coordinates (periodic, ``indexing="ij"``)."""
        axis = np.linspace(0.0, self.length, self.grid_size, endpoint=False)
        return tuple(np.meshgrid(axis, axis, indexing="ij"))  # type: ignore[return-value]


class AdvectionDiffusion2DSolver(Solver):
    """Dimension-split upwind + central-diffusion solver on the periodic square.

    Parameter vector: ``λ = [amplitude, center_x, center_y, width]``.  Fields
    are flattened row-major to ``grid_size²`` like the heat2d workload.
    """

    def __init__(self, config: AdvectionDiffusion2DConfig | None = None) -> None:
        self.config = config if config is not None else AdvectionDiffusion2DConfig()
        self.n_timesteps = self.config.n_timesteps
        self._x, self._y = self.config.coordinates

    @property
    def field_size(self) -> int:
        return self.config.grid_size**2

    @property
    def parameter_dim(self) -> int:
        return 4

    def initial_field(self, parameters: Sequence[float]) -> np.ndarray:
        amplitude, cx, cy, width = self.validate_parameters(parameters)
        if width <= 0:
            raise ValueError("pulse width must be positive")
        profile = wrapped_gaussian(self._x - cx, width, self.config.length) * wrapped_gaussian(
            self._y - cy, width, self.config.length
        )
        return (amplitude * profile).ravel()

    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        """Yield the field at ``t = 0, 1, …, n_timesteps`` (flattened copies).

        The dimension-split update is fused: the four periodic shifts are
        written into preallocated buffers (two slice copies each, replacing
        the eight ``np.roll`` allocations per step) and the upwind gradients,
        Laplacian and Euler update run through ``out=``-buffered ufuncs in
        the exact element-wise operation order of the straightforward
        expression, so every yielded field is bit-identical (asserted in
        ``tests/solvers/test_advection.py``).
        """
        cfg = self.config
        field = self.initial_field(parameters).reshape(cfg.grid_size, cfg.grid_size)
        yield field.ravel().copy()
        dx = cfg.dx
        ax = cfg.velocity[0] * cfg.dt / dx
        ay = cfg.velocity[1] * cfg.dt / dx
        diff = cfg.nu * cfg.dt / dx**2
        # Scratch buffers reused across every time step.
        x_prev = np.empty_like(field)   # np.roll(field, +1, axis=0)
        x_next = np.empty_like(field)   # np.roll(field, -1, axis=0)
        y_prev = np.empty_like(field)   # np.roll(field, +1, axis=1)
        y_next = np.empty_like(field)   # np.roll(field, -1, axis=1)
        grad = np.empty_like(field)
        lap = np.empty_like(field)
        new = np.empty_like(field)
        for _ in range(self.n_timesteps):
            # Periodic shifts (the roll results), two slice copies each.
            x_prev[0, :] = field[-1, :]
            x_prev[1:, :] = field[:-1, :]
            x_next[-1, :] = field[0, :]
            x_next[:-1, :] = field[1:, :]
            y_prev[:, 0] = field[:, -1]
            y_prev[:, 1:] = field[:, :-1]
            y_next[:, -1] = field[:, 0]
            y_next[:, :-1] = field[:, 1:]
            # laplacian = x_prev + x_next + y_prev + y_next - 4·field
            np.add(x_prev, x_next, out=lap)
            np.add(lap, y_prev, out=lap)
            np.add(lap, y_next, out=lap)
            np.multiply(field, 4.0, out=new)
            np.subtract(lap, new, out=lap)
            # new = ((field - ax·grad_x) - ay·grad_y) + diff·laplacian
            if cfg.velocity[0] >= 0:
                np.subtract(field, x_prev, out=grad)
            else:
                np.subtract(x_next, field, out=grad)
            np.multiply(grad, ax, out=grad)
            np.subtract(field, grad, out=new)
            if cfg.velocity[1] >= 0:
                np.subtract(field, y_prev, out=grad)
            else:
                np.subtract(y_next, field, out=grad)
            np.multiply(grad, ay, out=grad)
            np.subtract(new, grad, out=new)
            np.multiply(lap, diff, out=lap)
            np.add(new, lap, out=new)
            field, new = new, field
            yield field.ravel().copy()

    def exact(self, parameters: Sequence[float], t: float) -> np.ndarray:
        """Closed-form flattened field at physical time ``t`` (for validation)."""
        amplitude, cx, cy, width = self.validate_parameters(parameters)
        return advected_gaussian_2d(
            self._x, self._y, t, amplitude, (cx, cy), width,
            velocity=self.config.velocity, nu=self.config.nu, length=self.config.length,
        ).ravel()
