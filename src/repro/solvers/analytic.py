"""Analytic reference solutions used to validate the finite-difference solvers.

Two references are provided:

* the steady-state solution of the 2-D problem (a Laplace equation with
  piecewise-constant Dirichlet data) via a truncated separation-of-variables
  series, and
* the transient solution of the 1-D problem with constant Dirichlet boundary
  conditions via a Fourier sine series.

Both converge quickly with a modest number of modes and are used in the solver
test-suite to bound the discretisation error.

:class:`Analytic1DSolver` additionally wraps the transient 1-D series in the
:class:`~repro.solvers.base.Solver` protocol, giving the on-line training
framework a discretisation-free workload: every streamed field is the exact
solution, so surrogate error is purely a learning artefact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.solvers.base import Solver

__all__ = [
    "laplace_edge_series",
    "steady_state_2d",
    "transient_1d",
    "Analytic1DConfig",
    "Analytic1DSolver",
]


def laplace_edge_series(
    x1: np.ndarray,
    x2: np.ndarray,
    value: float,
    length: float = 1.0,
    n_modes: int = 101,
) -> np.ndarray:
    """Laplace solution on the square with one hot edge.

    Solves ``∇²u = 0`` with ``u = value`` on the edge ``x1 = 0`` and ``u = 0``
    on the three other edges, via the classic series::

        u(x1, x2) = Σ_{n odd} (4 value / (n π)) ·
                    sinh(n π (L - x1)/L) / sinh(n π) · sin(n π x2 / L)

    ``x1`` and ``x2`` are meshgrid arrays of the same shape.
    """
    x1 = np.asarray(x1, dtype=np.float64)
    x2 = np.asarray(x2, dtype=np.float64)
    u = np.zeros_like(x1, dtype=np.float64)
    for n in range(1, n_modes + 1, 2):
        k = n * np.pi / length
        # sinh(a)/sinh(b) with 0 <= a <= b computed overflow-free as
        # exp(a - b) * (1 - exp(-2a)) / (1 - exp(-2b)).
        a = k * (length - x1)
        b = k * length
        ratio = np.exp(a - b) * (1.0 - np.exp(-2.0 * a)) / (1.0 - np.exp(-2.0 * b))
        u += (4.0 * value / (n * np.pi)) * ratio * np.sin(k * x2)
    return u


def steady_state_2d(
    grid_coordinates: tuple[np.ndarray, np.ndarray],
    t1: float,
    t2: float,
    t3: float,
    t4: float,
    length: float = 1.0,
    n_modes: int = 101,
) -> np.ndarray:
    """Steady-state temperature field for the paper's 2-D heat problem.

    The stationary limit of Eq. (13) is a Laplace problem whose solution is the
    superposition of four single-hot-edge solutions: ``T1`` at ``x1 = 0``,
    ``T2`` at ``x1 = L``, ``T3`` at ``x2 = 0`` and ``T4`` at ``x2 = L``.
    """
    x1, x2 = grid_coordinates
    u = np.zeros_like(np.asarray(x1, dtype=np.float64))
    # Edge x1 = 0 at T1.
    u += laplace_edge_series(x1, x2, t1, length=length, n_modes=n_modes)
    # Edge x1 = L at T2: mirror x1.
    u += laplace_edge_series(length - x1, x2, t2, length=length, n_modes=n_modes)
    # Edge x2 = 0 at T3: swap roles of x1/x2.
    u += laplace_edge_series(x2, x1, t3, length=length, n_modes=n_modes)
    # Edge x2 = L at T4: swap and mirror.
    u += laplace_edge_series(length - x2, x1, t4, length=length, n_modes=n_modes)
    return u


def transient_1d(
    x: np.ndarray,
    t: float,
    t0: float,
    t_left: float,
    t_right: float,
    alpha: float = 1.0,
    length: float = 1.0,
    n_modes: int = 400,
) -> np.ndarray:
    """Exact transient solution of the 1-D heat problem with constant Dirichlet data.

    Decomposes ``u = u_ss + v`` where ``u_ss(x)`` is the linear steady state and
    ``v`` solves the homogeneous-boundary problem with initial data
    ``T0 - u_ss(x)``.  The Fourier sine coefficients of that initial data are::

        b_n = (2 / (n π)) [ (T0 - T_left) (1 - (-1)^n) + (T_right - T_left) (-1)^n ]

    and ``v(x, t) = Σ b_n sin(n π x / L) exp(-α (n π / L)² t)``.
    """
    x = np.asarray(x, dtype=np.float64)
    u_ss = t_left + (t_right - t_left) * x / length
    u = u_ss.copy()
    for n in range(1, n_modes + 1):
        k = n * np.pi / length
        sign = -1.0 if n % 2 else 1.0
        coeff = (2.0 / (n * np.pi)) * ((t0 - t_left) * (1.0 - sign) + (t_right - t_left) * sign)
        u += coeff * np.sin(k * x) * np.exp(-alpha * k * k * t)
    return u


@dataclass(frozen=True)
class Analytic1DConfig:
    """Sampling configuration of the closed-form 1-D transient solution."""

    n_points: int = 64
    n_timesteps: int = 100
    dt: float = 0.01
    alpha: float = 1.0
    length: float = 1.0
    n_modes: int = 200

    def __post_init__(self) -> None:
        if self.n_points < 3:
            raise ValueError("n_points must be >= 3")
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0 or self.alpha <= 0 or self.length <= 0:
            raise ValueError("dt, alpha and length must be positive")
        if self.n_modes < 1:
            raise ValueError("n_modes must be >= 1")


class Analytic1DSolver(Solver):
    """Exact transient 1-D heat trajectories via the Fourier sine series.

    Parameter vector: ``λ = [T0, T_left, T_right]``, as for
    :class:`~repro.solvers.heat1d.Heat1DImplicitSolver`.  The ``t = 0`` field
    is the exact (discontinuous) initial condition rather than its truncated
    series, avoiding Gibbs oscillations at the boundaries.
    """

    def __init__(self, config: Analytic1DConfig | None = None) -> None:
        self.config = config if config is not None else Analytic1DConfig()
        self.n_timesteps = self.config.n_timesteps
        self._x = np.linspace(0.0, self.config.length, self.config.n_points)

    @property
    def field_size(self) -> int:
        return self.config.n_points

    @property
    def parameter_dim(self) -> int:
        return 3

    def initial_field(self, parameters: Sequence[float]) -> np.ndarray:
        t0, t_left, t_right = self.validate_parameters(parameters)
        field = np.full(self.config.n_points, t0, dtype=np.float64)
        field[0] = t_left
        field[-1] = t_right
        return field

    def steps(self, parameters: Sequence[float]) -> Iterator[np.ndarray]:
        t0, t_left, t_right = self.validate_parameters(parameters)
        yield self.initial_field(parameters)
        for step in range(1, self.n_timesteps + 1):
            field = transient_1d(
                self._x,
                step * self.config.dt,
                t0,
                t_left,
                t_right,
                alpha=self.config.alpha,
                length=self.config.length,
                n_modes=self.config.n_modes,
            )
            # The series can overshoot the physical range by a tiny Gibbs
            # residual at early times; clip to the maximum-principle bounds so
            # min-max output scaling stays exact.
            lo = min(t0, t_left, t_right)
            hi = max(t0, t_left, t_right)
            yield np.clip(field, lo, hi)
