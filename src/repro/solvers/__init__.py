"""Finite-difference PDE solvers (the "oracle" labelling the training data)."""

from repro.solvers.analytic import (
    Analytic1DConfig,
    Analytic1DSolver,
    laplace_edge_series,
    steady_state_2d,
    transient_1d,
)
from repro.solvers.base import Solver
from repro.solvers.grid import Grid1D, Grid2D
from repro.solvers.heat1d import Heat1DConfig, Heat1DImplicitSolver
from repro.solvers.heat2d import (
    Heat2DConfig,
    Heat2DExplicitSolver,
    Heat2DImplicitSolver,
    apply_dirichlet_boundaries,
)
from repro.solvers.trajectory import TimeStepSample, Trajectory

__all__ = [
    "Analytic1DConfig",
    "Analytic1DSolver",
    "laplace_edge_series",
    "steady_state_2d",
    "transient_1d",
    "Solver",
    "Grid1D",
    "Grid2D",
    "Heat1DConfig",
    "Heat1DImplicitSolver",
    "Heat2DConfig",
    "Heat2DExplicitSolver",
    "Heat2DImplicitSolver",
    "apply_dirichlet_boundaries",
    "TimeStepSample",
    "Trajectory",
]
