"""PDE solvers (the "oracle" labelling the training data).

Four physics families implement the shared :class:`~repro.solvers.base.Solver`
protocol:

* heat diffusion — :mod:`~repro.solvers.heat2d`, :mod:`~repro.solvers.heat1d`
  and the closed-form :mod:`~repro.solvers.analytic`,
* advection–diffusion — :mod:`~repro.solvers.advection` (1-D and 2-D periodic
  transport with an exact advected-Gaussian reference),
* viscous Burgers — :mod:`~repro.solvers.burgers` (nonlinear, with the exact
  Cole–Hopf travelling wave),
* reaction–diffusion — :mod:`~repro.solvers.reaction_diffusion` (Fisher–KPP).

All solvers are deterministic pure functions of their parameter vector, which
is what lets checkpoint restore fast-forward mid-trajectory clients without
persisting solution fields.
"""

from repro.solvers.advection import (
    AdvectionDiffusion1DConfig,
    AdvectionDiffusion1DSolver,
    AdvectionDiffusion2DConfig,
    AdvectionDiffusion2DSolver,
    advected_gaussian_1d,
    advected_gaussian_2d,
    wrapped_gaussian,
)
from repro.solvers.analytic import (
    Analytic1DConfig,
    Analytic1DSolver,
    laplace_edge_series,
    steady_state_2d,
    transient_1d,
)
from repro.solvers.base import Solver
from repro.solvers.burgers import Burgers1DConfig, Burgers1DSolver, cole_hopf_wave
from repro.solvers.grid import Grid1D, Grid2D
from repro.solvers.heat1d import Heat1DConfig, Heat1DImplicitSolver
from repro.solvers.heat2d import (
    Heat2DConfig,
    Heat2DExplicitSolver,
    Heat2DImplicitSolver,
    apply_dirichlet_boundaries,
)
from repro.solvers.reaction_diffusion import FisherKPPConfig, FisherKPPSolver, kpp_front_speed
from repro.solvers.trajectory import TimeStepSample, Trajectory

__all__ = [
    "AdvectionDiffusion1DConfig",
    "AdvectionDiffusion1DSolver",
    "AdvectionDiffusion2DConfig",
    "AdvectionDiffusion2DSolver",
    "advected_gaussian_1d",
    "advected_gaussian_2d",
    "wrapped_gaussian",
    "Analytic1DConfig",
    "Analytic1DSolver",
    "laplace_edge_series",
    "steady_state_2d",
    "transient_1d",
    "Solver",
    "Burgers1DConfig",
    "Burgers1DSolver",
    "cole_hopf_wave",
    "Grid1D",
    "Grid2D",
    "Heat1DConfig",
    "Heat1DImplicitSolver",
    "Heat2DConfig",
    "Heat2DExplicitSolver",
    "Heat2DImplicitSolver",
    "apply_dirichlet_boundaries",
    "FisherKPPConfig",
    "FisherKPPSolver",
    "kpp_front_speed",
    "TimeStepSample",
    "Trajectory",
]
