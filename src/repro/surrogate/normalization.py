"""Input/output normalisation for the surrogate.

The surrogate input mixes Kelvin temperatures in ``[100, 500]`` with a time
step index in ``[0, T]``, and its output is a temperature field in roughly the
same Kelvin range.  Training an MLP directly on those scales is ill-
conditioned, so inputs and targets are mapped to ``[0, 1]`` (min–max, with the
bounds known a priori from the experiment configuration, so the scaler is
identical for on-line and off-line training and never needs fitting on data).

A fit-from-data standard scaler is also provided for the offline example and
for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sampling.bounds import ParameterBounds

__all__ = ["MinMaxScaler", "StandardScaler", "SurrogateScalers"]


@dataclass
class MinMaxScaler:
    """Affine map from ``[low, high]`` (per feature) to ``[0, 1]``."""

    low: np.ndarray
    high: np.ndarray

    def __post_init__(self) -> None:
        self.low = np.asarray(self.low, dtype=np.float64).reshape(-1)
        self.high = np.asarray(self.high, dtype=np.float64).reshape(-1)
        if self.low.shape != self.high.shape:
            raise ValueError("low and high must have the same shape")
        if np.any(self.high <= self.low):
            raise ValueError("high must be strictly greater than low for every feature")

    @property
    def dim(self) -> int:
        return self.low.shape[0]

    def transform(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        return (arr - self.low) / (self.high - self.low)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        return arr * (self.high - self.low) + self.low

    @classmethod
    def from_bounds(cls, bounds: ParameterBounds) -> "MinMaxScaler":
        return cls(bounds.low_array, bounds.high_array)

    @classmethod
    def scalar(cls, low: float, high: float) -> "MinMaxScaler":
        return cls(np.array([low]), np.array([high]))


@dataclass
class StandardScaler:
    """Zero-mean / unit-variance scaler fit from data (offline pipelines)."""

    mean: Optional[np.ndarray] = None
    std: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        arr = np.asarray(values, dtype=np.float64)
        self.mean = arr.mean(axis=0)
        std = arr.std(axis=0)
        self.std = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        return (np.asarray(values, dtype=np.float64) - self.mean) / self.std

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("StandardScaler.inverse_transform called before fit")
        return np.asarray(values, dtype=np.float64) * self.std + self.mean


@dataclass
class SurrogateScalers:
    """The pair of scalers used by the multi-parametric direct surrogate.

    * ``input_scaler`` maps the 6-dimensional NN input ``[T0..T4, t]`` to
      ``[0, 1]^6``.
    * ``output_scaler`` maps every field value (a temperature bounded by the
      extreme parameter values, by the discrete maximum principle) to
      ``[0, 1]``.
    """

    input_scaler: MinMaxScaler
    output_scaler: MinMaxScaler

    @classmethod
    def from_bounds(cls, bounds: ParameterBounds, n_timesteps: int) -> "SurrogateScalers":
        """Build the a-priori min-max scalers for any bounded-field workload.

        Inputs are the parameter vector plus the time-step index; outputs are
        field values bounded by the extreme parameter values (which holds for
        every heat workload by the discrete maximum principle).
        """
        input_low = np.concatenate([bounds.low_array, [0.0]])
        input_high = np.concatenate([bounds.high_array, [float(n_timesteps)]])
        field_low = float(bounds.low_array.min())
        field_high = float(bounds.high_array.max())
        return cls(
            input_scaler=MinMaxScaler(input_low, input_high),
            output_scaler=MinMaxScaler.scalar(field_low, field_high),
        )

    @classmethod
    def from_field_range(
        cls,
        bounds: ParameterBounds,
        n_timesteps: int,
        field_low: float,
        field_high: float,
    ) -> "SurrogateScalers":
        """Build scalers with an *explicit* output range.

        :meth:`from_bounds` assumes the field values share the parameter
        range (true for the heat workloads, where every parameter is a
        temperature); workloads whose parameters are geometric — pulse
        centers, widths, reaction rates — pass their a-priori field range
        here instead.
        """
        input_low = np.concatenate([bounds.low_array, [0.0]])
        input_high = np.concatenate([bounds.high_array, [float(n_timesteps)]])
        return cls(
            input_scaler=MinMaxScaler(input_low, input_high),
            output_scaler=MinMaxScaler.scalar(float(field_low), float(field_high)),
        )

    @classmethod
    def for_heat2d(cls, bounds: ParameterBounds, n_timesteps: int) -> "SurrogateScalers":
        """Backward-compatible alias of :meth:`from_bounds`."""
        return cls.from_bounds(bounds, n_timesteps)

    def encode_input(self, parameters: np.ndarray, timestep: float | np.ndarray) -> np.ndarray:
        """Build and normalise NN input rows from parameters and time steps.

        ``parameters`` may be a single vector (returns one row) or a batch of
        vectors paired with an array of time steps.
        """
        params = np.asarray(parameters, dtype=np.float64)
        if params.ndim == 1:
            row = np.concatenate([params, [float(timestep)]])
            return self.input_scaler.transform(row)
        steps = np.asarray(timestep, dtype=np.float64).reshape(-1, 1)
        if steps.shape[0] != params.shape[0]:
            raise ValueError("parameters and timesteps must have the same batch size")
        rows = np.concatenate([params, steps], axis=1)
        return self.input_scaler.transform(rows)

    def encode_output(self, field: np.ndarray) -> np.ndarray:
        return self.output_scaler.transform(np.asarray(field, dtype=np.float64))

    def decode_output(self, field: np.ndarray) -> np.ndarray:
        return self.output_scaler.inverse_transform(np.asarray(field, dtype=np.float64))
