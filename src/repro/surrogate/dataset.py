"""Offline dataset utilities.

The paper contrasts on-line training against the standard *off-line* pipeline
(generate the full dataset with the solver, store it, read it back in
epoch-based training).  These helpers implement that baseline so the examples
and benches can compare both regimes on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.solvers.base import Solver
from repro.surrogate.normalization import SurrogateScalers

__all__ = ["OfflineDataset", "generate_offline_dataset", "BatchIterator"]


@dataclass
class OfflineDataset:
    """A fully materialised supervised dataset of ``(λ, t) → field`` pairs.

    Attributes
    ----------
    inputs:
        Normalised NN inputs, shape ``(n_samples, input_dim)``.
    targets:
        Normalised NN targets, shape ``(n_samples, output_dim)``.
    simulation_ids / timesteps:
        Provenance of each sample (used by analysis code).
    """

    inputs: np.ndarray
    targets: np.ndarray
    simulation_ids: np.ndarray
    timesteps: np.ndarray

    def __post_init__(self) -> None:
        self.inputs = np.asarray(self.inputs, dtype=np.float64)
        self.targets = np.asarray(self.targets, dtype=np.float64)
        self.simulation_ids = np.asarray(self.simulation_ids, dtype=np.int64)
        self.timesteps = np.asarray(self.timesteps, dtype=np.int64)
        n = self.inputs.shape[0]
        if not (self.targets.shape[0] == self.simulation_ids.shape[0] == self.timesteps.shape[0] == n):
            raise ValueError("all dataset arrays must have the same first dimension")

    def __len__(self) -> int:
        return self.inputs.shape[0]

    def subset(self, indices: Sequence[int]) -> "OfflineDataset":
        idx = np.asarray(indices, dtype=np.int64)
        return OfflineDataset(
            self.inputs[idx], self.targets[idx], self.simulation_ids[idx], self.timesteps[idx]
        )

    def split(self, fraction: float, rng: np.random.Generator) -> Tuple["OfflineDataset", "OfflineDataset"]:
        """Random split into (train, held-out) with ``fraction`` in train."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        n = len(self)
        permutation = rng.permutation(n)
        cut = int(round(fraction * n))
        return self.subset(permutation[:cut]), self.subset(permutation[cut:])

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(
            path,
            inputs=self.inputs,
            targets=self.targets,
            simulation_ids=self.simulation_ids,
            timesteps=self.timesteps,
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "OfflineDataset":
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        with np.load(path) as archive:
            return cls(
                archive["inputs"],
                archive["targets"],
                archive["simulation_ids"],
                archive["timesteps"],
            )

    @property
    def nbytes(self) -> int:
        """Storage footprint of the dataset — the off-line pipeline's cost."""
        return int(self.inputs.nbytes + self.targets.nbytes)


def generate_offline_dataset(
    solver: Solver,
    parameter_vectors: np.ndarray,
    scalers: SurrogateScalers,
    include_initial_step: bool = True,
) -> OfflineDataset:
    """Run the solver for every parameter vector and materialise the dataset."""
    inputs: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    sim_ids: List[int] = []
    steps: List[int] = []
    vectors = np.atleast_2d(np.asarray(parameter_vectors, dtype=np.float64))
    for sim_id, params in enumerate(vectors):
        for timestep, field in enumerate(solver.steps(params)):
            if timestep == 0 and not include_initial_step:
                continue
            inputs.append(scalers.encode_input(params, timestep))
            targets.append(scalers.encode_output(field))
            sim_ids.append(sim_id)
            steps.append(timestep)
    return OfflineDataset(
        inputs=np.stack(inputs, axis=0),
        targets=np.stack(targets, axis=0),
        simulation_ids=np.asarray(sim_ids),
        timesteps=np.asarray(steps),
    )


class BatchIterator:
    """Epoch-based mini-batch iterator over an :class:`OfflineDataset`."""

    def __init__(
        self,
        dataset: OfflineDataset,
        batch_size: int,
        rng: np.random.Generator,
        shuffle: bool = True,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.rng = rng
        self.shuffle = shuffle
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and idx.size < self.batch_size:
                break
            yield self.dataset.inputs[idx], self.dataset.targets[idx], idx
