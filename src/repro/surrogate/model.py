"""The multi-parametric direct surrogate model.

Architecture (Section 4 / Appendix B.1 of the paper): a multilayer perceptron
with an input layer of 6 neurons (``[T0, T1, T2, T3, T4, t]``), ``L`` hidden
layers of ``H`` neurons with ReLU activations, and an output layer of ``M²``
neurons producing the flattened temperature field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.surrogate.normalization import SurrogateScalers

__all__ = ["SurrogateConfig", "DirectSurrogate", "build_mlp"]


@dataclass(frozen=True)
class SurrogateConfig:
    """Hyper-parameters of the surrogate MLP.

    Attributes
    ----------
    input_dim:
        NN input size; 6 for the heat case (5 parameters + time step).
    output_dim:
        NN output size; ``M²`` for the heat case.
    hidden_size:
        ``H`` — width of every hidden layer.
    n_hidden_layers:
        ``L`` — number of hidden layers.
    activation:
        Hidden activation, ``"relu"`` (paper default) or ``"tanh"``.
    """

    input_dim: int = 6
    output_dim: int = 64 * 64
    hidden_size: int = 16
    n_hidden_layers: int = 1
    activation: str = "relu"

    def __post_init__(self) -> None:
        if self.input_dim <= 0 or self.output_dim <= 0:
            raise ValueError("input_dim and output_dim must be positive")
        if self.hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if self.n_hidden_layers < 1:
            raise ValueError("n_hidden_layers must be >= 1")
        from repro.api.registry import ACTIVATIONS

        if self.activation not in ACTIVATIONS:
            raise ValueError(f"unsupported activation {self.activation!r}")

    @property
    def label(self) -> str:
        """Short label used in figure legends, e.g. ``H=16, L=2``."""
        return f"H={self.hidden_size}, L={self.n_hidden_layers}"


def _activation_module(name: str) -> nn.Module:
    # Imported lazily: the registry lives in repro.api, which itself imports
    # this module at package-initialisation time.
    from repro.api.registry import get_activation

    try:
        factory = get_activation(name)
    except KeyError:
        raise ValueError(f"unsupported activation {name!r}") from None
    return factory()


def build_mlp(config: SurrogateConfig, rng: Optional[np.random.Generator] = None) -> nn.Sequential:
    """Construct the MLP described by ``config``."""
    rng = rng if rng is not None else np.random.default_rng()
    layers: list[nn.Module] = [nn.Linear(config.input_dim, config.hidden_size, rng=rng)]
    layers.append(_activation_module(config.activation))
    for _ in range(config.n_hidden_layers - 1):
        layers.append(nn.Linear(config.hidden_size, config.hidden_size, rng=rng))
        layers.append(_activation_module(config.activation))
    layers.append(nn.Linear(config.hidden_size, config.output_dim, rng=rng))
    return nn.Sequential(*layers)


class DirectSurrogate(nn.Module):
    """Multi-parametric direct surrogate ``u_θ(λ, t) = û_λ(·, t)``.

    The model owns its normalisation scalers so callers interact with physical
    units: :meth:`predict_field` accepts raw Kelvin parameters and a time-step
    index and returns a denormalised field.
    """

    def __init__(
        self,
        config: SurrogateConfig,
        scalers: SurrogateScalers,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.scalers = scalers
        self.mlp = build_mlp(config, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass on already-normalised inputs (shape ``(batch, input_dim)``)."""
        return self.mlp(x)

    # ------------------------------------------------------------ inference
    def predict_field(self, parameters: Sequence[float], timestep: int) -> np.ndarray:
        """Predict the physical (denormalised) field for one ``(λ, t)`` pair."""
        encoded = self.scalers.encode_input(np.asarray(parameters, dtype=np.float64), timestep)
        with nn.no_grad():
            prediction = self.forward(Tensor(encoded[None, :]))
        return self.scalers.decode_output(prediction.data[0])

    def predict_trajectory(self, parameters: Sequence[float], timesteps: Sequence[int]) -> np.ndarray:
        """Predict several time steps of one trajectory, shape ``(T, output_dim)``."""
        params = np.asarray(parameters, dtype=np.float64)
        batch = self.scalers.encode_input(
            np.repeat(params[None, :], len(timesteps), axis=0), np.asarray(timesteps, dtype=np.float64)
        )
        with nn.no_grad():
            prediction = self.forward(Tensor(batch))
        return self.scalers.decode_output(prediction.data)

    # --------------------------------------------------------------- info
    def num_parameters(self) -> int:
        return self.mlp.num_parameters()

    def __repr__(self) -> str:  # pragma: no cover
        return f"DirectSurrogate({self.config.label}, params={self.num_parameters()})"
