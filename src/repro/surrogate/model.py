"""The multi-parametric direct surrogate model.

Architecture (Section 4 / Appendix B.1 of the paper): a multilayer perceptron
with an input layer of 6 neurons (``[T0, T1, T2, T3, T4, t]``), ``L`` hidden
layers of ``H`` neurons with ReLU activations, and an output layer of ``M²``
neurons producing the flattened temperature field.

The MLP is the paper's architecture and remains the default; the
``architecture`` registry key on :class:`SurrogateConfig` selects alternative
surrogate bodies — ``"residual"`` (skip-connected MLP) and ``"conv2d"``
(dense stem + convolutional trunk over the square output grid) ship as
built-ins, and :func:`repro.api.register_architecture` accepts user-defined
factories.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.surrogate.normalization import SurrogateScalers

__all__ = [
    "SurrogateConfig",
    "DirectSurrogate",
    "build_mlp",
    "build_residual_mlp",
    "build_conv_surrogate",
    "build_surrogate",
]


@dataclass(frozen=True)
class SurrogateConfig:
    """Hyper-parameters of the surrogate MLP.

    Attributes
    ----------
    input_dim:
        NN input size; 6 for the heat case (5 parameters + time step).
    output_dim:
        NN output size; ``M²`` for the heat case.
    hidden_size:
        ``H`` — width of every hidden layer.
    n_hidden_layers:
        ``L`` — number of hidden layers.
    activation:
        Hidden activation, ``"relu"`` (paper default) or ``"tanh"``.
    architecture:
        Surrogate-architecture registry key; ``"mlp"`` (paper default),
        ``"residual"``, ``"conv2d"``, or any name registered through
        :func:`repro.api.register_architecture`.
    """

    input_dim: int = 6
    output_dim: int = 64 * 64
    hidden_size: int = 16
    n_hidden_layers: int = 1
    activation: str = "relu"
    architecture: str = "mlp"

    def __post_init__(self) -> None:
        if self.input_dim <= 0 or self.output_dim <= 0:
            raise ValueError("input_dim and output_dim must be positive")
        if self.hidden_size <= 0:
            raise ValueError("hidden_size must be positive")
        if self.n_hidden_layers < 1:
            raise ValueError("n_hidden_layers must be >= 1")
        from repro.api.registry import ACTIVATIONS, ARCHITECTURES

        if self.activation not in ACTIVATIONS:
            raise ValueError(f"unsupported activation {self.activation!r}")
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"unsupported architecture {self.architecture!r}; "
                f"available: {ARCHITECTURES.names()}"
            )

    @property
    def label(self) -> str:
        """Short label used in figure legends, e.g. ``H=16, L=2``."""
        base = f"H={self.hidden_size}, L={self.n_hidden_layers}"
        if self.architecture != "mlp":
            return f"{base}, {self.architecture}"
        return base


def _activation_module(name: str) -> nn.Module:
    # Imported lazily: the registry lives in repro.api, which itself imports
    # this module at package-initialisation time.
    from repro.api.registry import get_activation

    try:
        factory = get_activation(name)
    except KeyError:
        raise ValueError(f"unsupported activation {name!r}") from None
    return factory()


def build_mlp(config: SurrogateConfig, rng: Optional[np.random.Generator] = None) -> nn.Sequential:
    """Construct the MLP described by ``config`` (the paper's architecture)."""
    rng = rng if rng is not None else np.random.default_rng()
    layers: list[nn.Module] = [nn.Linear(config.input_dim, config.hidden_size, rng=rng)]
    layers.append(_activation_module(config.activation))
    for _ in range(config.n_hidden_layers - 1):
        layers.append(nn.Linear(config.hidden_size, config.hidden_size, rng=rng))
        layers.append(_activation_module(config.activation))
    layers.append(nn.Linear(config.hidden_size, config.output_dim, rng=rng))
    return nn.Sequential(*layers)


def build_residual_mlp(
    config: SurrogateConfig, rng: Optional[np.random.Generator] = None
) -> nn.Sequential:
    """Skip-connected MLP: dense stem, ``L`` residual blocks, dense head.

    Each residual block wraps ``Linear(H, H) → activation`` in an additive
    skip connection, so gradients reach early layers along the identity path.
    Parameter count matches an ``L+1``-layer plain MLP of the same width.
    """
    rng = rng if rng is not None else np.random.default_rng()
    layers: list[nn.Module] = [
        nn.Linear(config.input_dim, config.hidden_size, rng=rng),
        _activation_module(config.activation),
    ]
    for _ in range(config.n_hidden_layers):
        block = nn.Sequential(
            nn.Linear(config.hidden_size, config.hidden_size, rng=rng),
            _activation_module(config.activation),
        )
        layers.append(nn.Residual(block))
    layers.append(nn.Linear(config.hidden_size, config.output_dim, rng=rng))
    return nn.Sequential(*layers)


def build_conv_surrogate(
    config: SurrogateConfig, rng: Optional[np.random.Generator] = None
) -> nn.Sequential:
    """Convolutional surrogate over the square output grid.

    A dense stem lifts the parameter vector ``(λ, t)`` to ``hidden_size``
    feature maps on the ``g×g`` grid (``g = sqrt(output_dim)``); ``L``
    3×3 same-padded conv blocks mix neighbouring cells — matching the local
    stencil structure of the PDE solution operator — and a final 3×3 conv
    projects down to the single-channel field, flattened back to
    ``output_dim``.
    """
    grid = math.isqrt(config.output_dim)
    if grid * grid != config.output_dim:
        raise ValueError(
            f"architecture 'conv2d' requires a square output grid; "
            f"output_dim={config.output_dim} is not a perfect square"
        )
    rng = rng if rng is not None else np.random.default_rng()
    channels = config.hidden_size
    layers: list[nn.Module] = [
        nn.Linear(config.input_dim, channels * grid * grid, rng=rng),
        _activation_module(config.activation),
        nn.Reshape(channels, grid, grid),
    ]
    for _ in range(config.n_hidden_layers):
        layers.append(nn.Conv2d(channels, channels, 3, padding="same", rng=rng))
        layers.append(_activation_module(config.activation))
    layers.append(nn.Conv2d(channels, 1, 3, padding="same", rng=rng))
    layers.append(nn.Reshape(grid * grid))
    return nn.Sequential(*layers)


def build_surrogate(
    config: SurrogateConfig, rng: Optional[np.random.Generator] = None
) -> nn.Module:
    """Construct the surrogate body named by ``config.architecture``.

    Resolution goes through the :data:`repro.api.registry.ARCHITECTURES`
    registry, so user-registered architectures participate on equal footing
    with the built-ins.  For ``"mlp"`` this is exactly :func:`build_mlp`,
    including the RNG draw sequence — checkpoints and seeded runs predating
    the registry reproduce bit-identically.
    """
    from repro.api.registry import get_architecture

    try:
        factory = get_architecture(config.architecture)
    except KeyError:
        raise ValueError(
            f"unsupported architecture {config.architecture!r}"
        ) from None
    return factory(config, rng if rng is not None else np.random.default_rng())


class DirectSurrogate(nn.Module):
    """Multi-parametric direct surrogate ``u_θ(λ, t) = û_λ(·, t)``.

    The model owns its normalisation scalers so callers interact with physical
    units: :meth:`predict_field` accepts raw Kelvin parameters and a time-step
    index and returns a denormalised field.
    """

    def __init__(
        self,
        config: SurrogateConfig,
        scalers: SurrogateScalers,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.scalers = scalers
        # Kept under the historical ``mlp`` attribute name regardless of the
        # selected architecture: state-dict keys (``mlp.layer0.weight``, …)
        # are a checkpoint-format contract.
        self.mlp = build_surrogate(config, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Forward pass on already-normalised inputs (shape ``(batch, input_dim)``)."""
        return self.mlp(x)

    # ------------------------------------------------------------ inference
    def predict_field(self, parameters: Sequence[float], timestep: int) -> np.ndarray:
        """Predict the physical (denormalised) field for one ``(λ, t)`` pair."""
        encoded = self.scalers.encode_input(np.asarray(parameters, dtype=np.float64), timestep)
        with nn.no_grad():
            prediction = self.forward(Tensor(encoded[None, :]))
        return self.scalers.decode_output(prediction.data[0])

    def predict_trajectory(self, parameters: Sequence[float], timesteps: Sequence[int]) -> np.ndarray:
        """Predict several time steps of one trajectory, shape ``(T, output_dim)``."""
        params = np.asarray(parameters, dtype=np.float64)
        batch = self.scalers.encode_input(
            np.repeat(params[None, :], len(timesteps), axis=0), np.asarray(timesteps, dtype=np.float64)
        )
        with nn.no_grad():
            prediction = self.forward(Tensor(batch))
        return self.scalers.decode_output(prediction.data)

    # --------------------------------------------------------------- info
    def num_parameters(self) -> int:
        return self.mlp.num_parameters()

    def __repr__(self) -> str:  # pragma: no cover
        return f"DirectSurrogate({self.config.label}, params={self.num_parameters()})"
