"""Fixed validation set and validation-loss evaluation.

Section 4 of the paper: "the pre-created fixed validation set has 200
full-trajectory simulations with parameters generated from a quasi-uniform
Halton sequence".  The validation loss reported on the figures is the MSE of
the surrogate over every ``(λ, t)`` pair of that set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor
from repro.sampling.bounds import ParameterBounds
from repro.sampling.halton import halton_in_bounds
from repro.solvers.base import Solver
from repro.surrogate.model import DirectSurrogate
from repro.surrogate.normalization import SurrogateScalers

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.api imports us)
    from repro.api.workloads import Workload

__all__ = [
    "ValidationSet",
    "build_validation_set",
    "validation_set_for_workload",
    "validation_loss",
]


@dataclass
class ValidationSet:
    """Pre-computed normalised validation inputs/targets."""

    inputs: np.ndarray
    targets: np.ndarray
    parameters: np.ndarray
    n_trajectories: int
    n_timesteps: int

    def __post_init__(self) -> None:
        self.inputs = np.asarray(self.inputs, dtype=np.float64)
        self.targets = np.asarray(self.targets, dtype=np.float64)
        self.parameters = np.asarray(self.parameters, dtype=np.float64)
        if self.inputs.shape[0] != self.targets.shape[0]:
            raise ValueError("inputs and targets must align")

    def __len__(self) -> int:
        return self.inputs.shape[0]


def build_validation_set(
    solver: Solver,
    bounds: ParameterBounds,
    scalers: SurrogateScalers,
    n_trajectories: int,
    skip: int = 1,
    rng: Optional[np.random.Generator] = None,
    scramble: bool = False,
) -> ValidationSet:
    """Generate the fixed Halton-sequence validation set by running the solver."""
    if n_trajectories <= 0:
        raise ValueError("n_trajectories must be positive")
    vectors = halton_in_bounds(n_trajectories, bounds, skip=skip, rng=rng, scramble=scramble)
    inputs = []
    targets = []
    for params in vectors:
        for timestep, field in enumerate(solver.steps(params)):
            inputs.append(scalers.encode_input(params, timestep))
            targets.append(scalers.encode_output(field))
    return ValidationSet(
        inputs=np.stack(inputs, axis=0),
        targets=np.stack(targets, axis=0),
        parameters=vectors,
        n_trajectories=n_trajectories,
        n_timesteps=solver.n_timesteps,
    )


def validation_set_for_workload(
    workload: "Workload",
    n_trajectories: int,
    solver: Optional[Solver] = None,
    skip: int = 1,
    rng: Optional[np.random.Generator] = None,
    scramble: bool = False,
) -> Optional[ValidationSet]:
    """Fixed validation set of a :class:`~repro.api.workloads.Workload`.

    Convenience wrapper over :func:`build_validation_set` that pulls the
    solver, parameter bounds and scalers from the workload — the single path
    the training session, the study-input cache and the experiment harness
    all use, so every consumer builds the *same* set for a given scenario.
    Returns ``None`` when ``n_trajectories <= 0`` (validation disabled).

    ``solver`` may be passed to reuse an already-factorised instance.
    """
    if n_trajectories <= 0:
        return None
    return build_validation_set(
        solver=solver if solver is not None else workload.build_solver(),
        bounds=workload.bounds,
        scalers=workload.build_scalers(),
        n_trajectories=n_trajectories,
        skip=skip,
        rng=rng,
        scramble=scramble,
    )


def validation_loss(
    model: DirectSurrogate,
    validation_set: ValidationSet,
    batch_size: int = 1024,
) -> float:
    """MSE of the surrogate over the whole validation set (normalised units)."""
    total = 0.0
    count = 0
    with nn.no_grad():
        for start in range(0, len(validation_set), batch_size):
            stop = min(start + batch_size, len(validation_set))
            prediction = model(Tensor(validation_set.inputs[start:stop]))
            diff = prediction.data - validation_set.targets[start:stop]
            total += float(np.sum(diff * diff))
            count += diff.size
    return total / count if count else float("nan")
