"""Multi-parametric direct surrogate: model, scalers, datasets and validation."""

from repro.surrogate.dataset import BatchIterator, OfflineDataset, generate_offline_dataset
from repro.surrogate.model import DirectSurrogate, SurrogateConfig, build_mlp
from repro.surrogate.normalization import MinMaxScaler, StandardScaler, SurrogateScalers
from repro.surrogate.validation import ValidationSet, build_validation_set, validation_loss

__all__ = [
    "BatchIterator",
    "OfflineDataset",
    "generate_offline_dataset",
    "DirectSurrogate",
    "SurrogateConfig",
    "build_mlp",
    "MinMaxScaler",
    "StandardScaler",
    "SurrogateScalers",
    "ValidationSet",
    "build_validation_set",
    "validation_loss",
]
