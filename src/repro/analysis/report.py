"""Plain-text rendering of the reproduced figures and tables.

The benchmarks regenerate the paper's tables and figures as *text*: series of
(iteration, loss) points, histogram rows and correlation coefficients.  This
module centralises the formatting so all benches print consistent, easily
diffable reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.analysis.correlation import CorrelationMatrix
from repro.analysis.curves import LossCurve, downsample_series
from repro.analysis.deviation import DeviationHistogram

__all__ = [
    "format_table",
    "render_loss_curves",
    "render_histograms",
    "render_correlation",
    "render_metrics",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Simple fixed-width text table."""
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append([f"{v:.5g}" if isinstance(v, float) else str(v) for v in row])
    widths = [max(len(r[i]) for r in str_rows) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(str_rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_loss_curves(curves: Mapping[str, LossCurve], n_points: int = 8) -> str:
    """Render a set of loss curves as downsampled (iteration, loss) series."""
    blocks: List[str] = []
    for label, curve in curves.items():
        blocks.append(f"== {label} ==")
        rows = []
        for it, loss in downsample_series(curve.train_iterations, curve.smoothed_train_losses, n_points):
            rows.append(("train", int(it), loss))
        for it, loss in downsample_series(curve.validation_iterations, curve.validation_losses, n_points):
            rows.append(("validation", int(it), loss))
        blocks.append(format_table(["series", "iteration", "mse"], rows))
        blocks.append(
            f"final: train={curve.final_train_loss:.5g} "
            f"validation={curve.final_validation_loss:.5g} "
            f"gap={curve.overfit_gap:+.5g}"
        )
        blocks.append("")
    return "\n".join(blocks)


def render_histograms(histograms: Mapping[str, DeviationHistogram], bar_width: int = 40) -> str:
    """ASCII rendering of deviation histograms with their means."""
    blocks: List[str] = []
    max_count = max((int(h.counts.max()) if h.counts.size else 0) for h in histograms.values())
    max_count = max(max_count, 1)
    for label, hist in histograms.items():
        blocks.append(f"== {label} (n={hist.n}, mean deviation={hist.mean:.2f}) ==")
        for lo, hi, count in hist.as_rows():
            bar = "#" * int(round(bar_width * count / max_count))
            blocks.append(f"[{lo:7.2f}, {hi:7.2f})  {count:5d}  {bar}")
        blocks.append("")
    return "\n".join(blocks)


def render_correlation(matrix: CorrelationMatrix) -> str:
    """Correlation matrix (lower triangle) plus the Section-4.2 key findings."""
    lines = [matrix.render(), "", "key findings:"]
    for name, value in matrix.key_findings().items():
        lines.append(f"  {name:<28s} {value:+.3f}")
    return "\n".join(lines)


def render_metrics(metrics: Mapping[str, Dict[str, float]]) -> str:
    """Render a {label -> {metric -> value}} mapping as a table."""
    all_keys: List[str] = []
    for values in metrics.values():
        for key in values:
            if key not in all_keys:
                all_keys.append(key)
    rows = []
    for label, values in metrics.items():
        rows.append([label, *[values.get(k, float("nan")) for k in all_keys]])
    return format_table(["run", *all_keys], rows)
