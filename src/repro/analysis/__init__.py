"""Analysis of training runs: loss curves, deviation histograms, correlations."""

from repro.analysis.correlation import (
    CORRELATION_COLUMNS,
    CorrelationMatrix,
    correlation_matrix,
    pearson_correlation,
)
from repro.analysis.curves import (
    PAPER_SMOOTHING_WINDOW,
    LossCurve,
    curve_from_history,
    downsample_series,
    overfit_metrics,
)
from repro.analysis.deviation import (
    DeviationHistogram,
    compare_runs,
    histogram_by_source,
    parameter_vector_deviation,
)
from repro.analysis.report import (
    format_table,
    render_correlation,
    render_histograms,
    render_loss_curves,
    render_metrics,
)

__all__ = [
    "CORRELATION_COLUMNS",
    "CorrelationMatrix",
    "correlation_matrix",
    "pearson_correlation",
    "PAPER_SMOOTHING_WINDOW",
    "LossCurve",
    "curve_from_history",
    "downsample_series",
    "overfit_metrics",
    "DeviationHistogram",
    "compare_runs",
    "histogram_by_source",
    "parameter_vector_deviation",
    "format_table",
    "render_correlation",
    "render_histograms",
    "render_loss_curves",
    "render_metrics",
]
