"""Training/validation loss-curve series (Figure 3 of the paper).

The paper plots, per run, the training MSE smoothed with a 40-iteration moving
window and the validation MSE evaluated periodically, both on a logarithmic
y-axis, annotated with the last validation value.  :class:`LossCurve` carries
exactly those series so the figure benches can print them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.melissa.server import TrainingHistory
from repro.utils.moving_average import moving_average

__all__ = [
    "LossCurve",
    "curve_from_history",
    "curve_from_series",
    "downsample_series",
    "overfit_metrics",
]

#: smoothing window used by the paper's Figure 3 ("a moving window of 40 iterations")
PAPER_SMOOTHING_WINDOW = 40


@dataclass
class LossCurve:
    """Train/validation loss series of one run."""

    label: str
    train_iterations: np.ndarray
    train_losses: np.ndarray
    smoothed_train_losses: np.ndarray
    validation_iterations: np.ndarray
    validation_losses: np.ndarray
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def final_validation_loss(self) -> float:
        return float(self.validation_losses[-1]) if self.validation_losses.size else float("nan")

    @property
    def final_train_loss(self) -> float:
        return float(self.smoothed_train_losses[-1]) if self.smoothed_train_losses.size else float("nan")

    @property
    def overfit_gap(self) -> float:
        """Final validation − final (smoothed) train loss; positive ⇒ overfitting."""
        return self.final_validation_loss - self.final_train_loss

    def summary_row(self) -> Dict[str, float]:
        return {
            "final_train_loss": self.final_train_loss,
            "final_validation_loss": self.final_validation_loss,
            "overfit_gap": self.overfit_gap,
            "n_iterations": float(self.train_iterations[-1]) if self.train_iterations.size else 0.0,
        }


def curve_from_history(
    history: TrainingHistory,
    label: str,
    smoothing_window: int = PAPER_SMOOTHING_WINDOW,
) -> LossCurve:
    """Build a :class:`LossCurve` from a server training history."""
    train_iters, train_losses, val_iters, val_losses = history.as_arrays()
    return curve_from_series(
        {
            "train_iterations": train_iters,
            "train_losses": train_losses,
            "validation_iterations": val_iters,
            "validation_losses": val_losses,
        },
        label=label,
        smoothing_window=smoothing_window,
    )


def curve_from_series(
    series: Dict[str, Sequence[float]],
    label: str,
    smoothing_window: int = PAPER_SMOOTHING_WINDOW,
) -> LossCurve:
    """Build a :class:`LossCurve` from a ``RunResult.series`` mapping.

    The study engine ships runs across process boundaries as plain
    ``train_iterations`` / ``train_losses`` / ``validation_iterations`` /
    ``validation_losses`` lists; this rebuilds the same curve
    :func:`curve_from_history` produces in-process.
    """
    train_iters = np.asarray(series.get("train_iterations", ()), dtype=np.float64)
    train_losses = np.asarray(series.get("train_losses", ()), dtype=np.float64)
    val_iters = np.asarray(series.get("validation_iterations", ()), dtype=np.float64)
    val_losses = np.asarray(series.get("validation_losses", ()), dtype=np.float64)
    smoothed = (
        moving_average(train_losses, smoothing_window) if train_losses.size else train_losses.copy()
    )
    return LossCurve(
        label=label,
        train_iterations=train_iters,
        train_losses=train_losses,
        smoothed_train_losses=smoothed,
        validation_iterations=val_iters,
        validation_losses=val_losses,
    )


def downsample_series(iterations: Sequence[float], values: Sequence[float], n_points: int) -> List[tuple[float, float]]:
    """Pick ``n_points`` evenly spaced (iteration, value) pairs for text reports."""
    iters = np.asarray(iterations, dtype=np.float64)
    vals = np.asarray(values, dtype=np.float64)
    if iters.size == 0:
        return []
    if n_points >= iters.size:
        return list(zip(iters.tolist(), vals.tolist()))
    indices = np.linspace(0, iters.size - 1, n_points).round().astype(int)
    return [(float(iters[i]), float(vals[i])) for i in indices]


def overfit_metrics(curves: Dict[str, LossCurve]) -> Dict[str, Dict[str, float]]:
    """Summary comparison across runs: final losses and overfit gaps per label."""
    return {label: curve.summary_row() for label, curve in curves.items()}
