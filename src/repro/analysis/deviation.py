"""Input-parameter deviation analysis (Figure 4 of the paper).

The paper's "central insight" is that Breed shifts the distribution of chosen
input parameters towards vectors whose five temperatures are more *dissimilar*
(more internal spread ⇒ more dynamic trajectories ⇒ harder to learn).  The
statistic plotted in Figure 4 is a per-vector deviation of the components
``T0..T4``; we use the (population) standard deviation of the five
temperatures, whose values for uniform draws on ``[100, 500]^5`` fall in the
20–180 range shown on the paper's x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.breed.samplers import ParameterSource

__all__ = [
    "parameter_vector_deviation",
    "DeviationHistogram",
    "histogram_by_source",
    "compare_runs",
]


def parameter_vector_deviation(parameters: np.ndarray) -> np.ndarray:
    """Per-vector spread of the parameter components.

    Accepts a single vector or a batch ``(n, d)``; returns a scalar or ``(n,)``
    array of standard deviations across the ``d`` components.
    """
    arr = np.asarray(parameters, dtype=np.float64)
    if arr.ndim == 1:
        return np.asarray(arr.std())
    if arr.ndim != 2:
        raise ValueError("parameters must be a vector or a (n, d) batch")
    return arr.std(axis=1)


@dataclass
class DeviationHistogram:
    """Histogram of per-vector deviations for one group of parameter vectors."""

    label: str
    deviations: np.ndarray
    bin_edges: np.ndarray
    counts: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.deviations.mean()) if self.deviations.size else float("nan")

    @property
    def n(self) -> int:
        return int(self.deviations.size)

    def as_rows(self) -> List[Tuple[float, float, int]]:
        """(bin start, bin end, count) rows for text rendering."""
        return [
            (float(self.bin_edges[i]), float(self.bin_edges[i + 1]), int(self.counts[i]))
            for i in range(self.counts.size)
        ]


def _build_histogram(label: str, deviations: np.ndarray, bin_edges: np.ndarray) -> DeviationHistogram:
    counts, _ = np.histogram(deviations, bins=bin_edges)
    return DeviationHistogram(label=label, deviations=deviations, bin_edges=bin_edges, counts=counts)


def _default_bins(all_deviations: Sequence[np.ndarray], n_bins: int) -> np.ndarray:
    stacked = np.concatenate([np.atleast_1d(d) for d in all_deviations if np.size(d)]) if all_deviations else np.array([0.0, 1.0])
    lo = float(stacked.min()) if stacked.size else 0.0
    hi = float(stacked.max()) if stacked.size else 1.0
    if hi <= lo:
        hi = lo + 1.0
    return np.linspace(lo, hi, n_bins + 1)


def histogram_by_source(
    parameters: np.ndarray,
    sources: Sequence[str],
    n_bins: int = 16,
) -> Dict[str, DeviationHistogram]:
    """Figure 4a: compare uniform-sourced vs proposal-sourced vectors of one run.

    Vectors whose parameters came from a uniform draw (initial budget or the
    exploration mixture) go into the ``"Uniform"`` histogram; vectors from the
    AMIS proposal into ``"Proposal"``.
    """
    params = np.atleast_2d(np.asarray(parameters, dtype=np.float64))
    if params.shape[0] != len(sources):
        raise ValueError("parameters and sources must have the same length")
    deviations = parameter_vector_deviation(params)
    uniform_mask = np.array(
        [s in (ParameterSource.INITIAL_UNIFORM, ParameterSource.MIX_UNIFORM) for s in sources]
    )
    uniform_dev = deviations[uniform_mask]
    proposal_dev = deviations[~uniform_mask]
    bins = _default_bins([uniform_dev, proposal_dev], n_bins)
    return {
        "Uniform": _build_histogram("Uniform", uniform_dev, bins),
        "Proposal": _build_histogram("Proposal", proposal_dev, bins),
    }


def compare_runs(
    run_parameters: Dict[str, np.ndarray],
    n_bins: int = 16,
) -> Dict[str, DeviationHistogram]:
    """Figure 4b: compare the executed-parameter deviation of whole runs.

    ``run_parameters`` maps a label (e.g. ``"Random"``, ``"Breed"``) to the
    ``(S, d)`` array of executed parameter vectors of that run.
    """
    deviations = {
        label: parameter_vector_deviation(np.atleast_2d(params))
        for label, params in run_parameters.items()
    }
    bins = _default_bins(list(deviations.values()), n_bins)
    return {label: _build_histogram(label, dev, bins) for label, dev in deviations.items()}
