"""Correlation analysis of the training statistics (Figure 6 of the paper).

During a Breed run every training-batch sample yields one observation row with
the columns of the paper's correlation matrix:

* ``i`` — NN iteration,
* ``j`` — parameter (simulation) index,
* ``t`` — time step,
* ``l``  — per-sample loss ``l^{(i)}_{jt}``,
* ``U`` — indicator that the sample's simulation parameters were uniform-drawn,
* ``μ`` — batch loss,
* ``δ`` — the loss-deviation metric.

The headline numbers of Section 4.2: the deviation metric has essentially no
correlation with the NN iteration (≈ −0.02) but a positive correlation with
the per-sample loss (≈ +0.27), while raw batch/sample losses do correlate with
the iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.melissa.server import SampleStatistic

__all__ = ["CORRELATION_COLUMNS", "CorrelationMatrix", "correlation_matrix", "pearson_correlation"]

#: column order matching the paper's Figure 6
CORRELATION_COLUMNS: tuple[str, ...] = (
    "iteration",
    "simulation_id",
    "timestep",
    "sample_loss",
    "uniform",
    "batch_loss",
    "deviation",
)


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient, with degenerate inputs mapping to 0."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("x and y must have the same length")
    if x.size < 2:
        return 0.0
    sx = x.std()
    sy = y.std()
    if sx <= 1e-15 or sy <= 1e-15:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


@dataclass
class CorrelationMatrix:
    """Full correlation matrix over the Figure-6 columns."""

    columns: tuple[str, ...]
    matrix: np.ndarray

    def value(self, a: str, b: str) -> float:
        ia = self.columns.index(a)
        ib = self.columns.index(b)
        return float(self.matrix[ia, ib])

    def key_findings(self) -> Dict[str, float]:
        """The specific coefficients discussed in Section 4.2."""
        return {
            "deviation_vs_iteration": self.value("deviation", "iteration"),
            "deviation_vs_sample_loss": self.value("deviation", "sample_loss"),
            "batch_loss_vs_iteration": self.value("batch_loss", "iteration"),
            "sample_loss_vs_iteration": self.value("sample_loss", "iteration"),
        }

    def rows(self) -> List[List[float]]:
        return [[float(v) for v in row] for row in self.matrix]

    def render(self) -> str:
        """Lower-triangle text rendering matching the paper's figure layout."""
        width = max(len(c) for c in self.columns) + 2
        lines = []
        for i, row_name in enumerate(self.columns):
            cells = [f"{self.matrix[i, j]:+.2f}" for j in range(i + 1)]
            lines.append(row_name.ljust(width) + "  ".join(cells))
        lines.append(" " * width + "  ".join(c[:5].ljust(5) for c in self.columns))
        return "\n".join(lines)


def correlation_matrix(statistics: Sequence[SampleStatistic]) -> CorrelationMatrix:
    """Compute the Figure-6 correlation matrix from recorded sample statistics."""
    if not statistics:
        raise ValueError("no sample statistics were recorded; "
                         "run with record_sample_statistics=True")
    data = {
        "iteration": np.array([s.iteration for s in statistics], dtype=np.float64),
        "simulation_id": np.array([s.simulation_id for s in statistics], dtype=np.float64),
        "timestep": np.array([s.timestep for s in statistics], dtype=np.float64),
        "sample_loss": np.array([s.sample_loss for s in statistics], dtype=np.float64),
        "uniform": np.array([1.0 if s.uniform else 0.0 for s in statistics], dtype=np.float64),
        "batch_loss": np.array([s.batch_loss for s in statistics], dtype=np.float64),
        "deviation": np.array([s.deviation for s in statistics], dtype=np.float64),
    }
    n = len(CORRELATION_COLUMNS)
    matrix = np.eye(n)
    for a in range(n):
        for b in range(a + 1, n):
            value = pearson_correlation(data[CORRELATION_COLUMNS[a]], data[CORRELATION_COLUMNS[b]])
            matrix[a, b] = value
            matrix[b, a] = value
    return CorrelationMatrix(columns=CORRELATION_COLUMNS, matrix=matrix)
