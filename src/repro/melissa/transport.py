"""In-process transport simulating the framework's messaging fabric.

The real Melissa deployment connects clients to the server over ZeroMQ; the
reproduction replaces it with bounded FIFO channels.  The transport records
volume statistics so the framework-overhead benchmark can report how many
bytes would have crossed the network (and, for the off-line comparison, how
many bytes would have been written to disk instead).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Sequence

from repro import telemetry
from repro.melissa.messages import Message, TimeStepMessage
from repro.telemetry import NULL_COUNTER

__all__ = ["Channel", "InProcessTransport", "TransportStats"]


@dataclass
class TransportStats:
    """Counters of messages/bytes that flowed through a channel.

    ``n_dropped`` counts messages a bounded channel *rejected* (``put``
    returned ``False``), making back-pressure observable in overhead reports.

    The plain integer counters are the canonical record — they are what the
    session snapshots and the overhead experiment read, and their
    ``state_dict`` layout is frozen.  When :mod:`repro.telemetry` metrics
    are enabled, :meth:`bind_metrics` additionally mirrors every update into
    registry-backed, channel-labelled counters so live transport volume is
    scrapeable (``repro_transport_messages_total{channel="data"}`` …)
    without touching the canonical totals.
    """

    n_messages: int = 0
    n_bytes: int = 0
    max_depth: int = 0
    n_dropped: int = 0

    # Telemetry mirrors (not dataclass fields: never pickled/serialized,
    # never part of the state_dict layout).  Null objects until bound.
    _m_messages = NULL_COUNTER
    _m_bytes = NULL_COUNTER
    _m_dropped = NULL_COUNTER

    def bind_metrics(self, channel: str) -> None:
        """Mirror this channel's counters into the telemetry registry."""
        registry = telemetry.metrics()
        self._m_messages = registry.counter(
            "repro_transport_messages_total", help="messages accounted per channel"
        ).labels(channel=channel)
        self._m_bytes = registry.counter(
            "repro_transport_bytes_total", help="payload bytes accounted per channel"
        ).labels(channel=channel)
        self._m_dropped = registry.counter(
            "repro_transport_dropped_total", help="messages rejected by bounded channels"
        ).labels(channel=channel)

    def record(self, message: Message, depth: int) -> None:
        self.n_messages += 1
        self._m_messages.inc()
        if isinstance(message, TimeStepMessage):
            self.n_bytes += message.nbytes
            self._m_bytes.inc(message.nbytes)
        self.max_depth = max(self.max_depth, depth)

    def record_batch(self, messages: Sequence[Message], depth: int) -> None:
        """Account a whole batch in one call.

        Totals are exactly those of calling :meth:`record` per message at
        the same ``depth`` — the counters are sums and a running max, so
        batching is free of accounting drift.
        """
        if not messages:
            return
        n_bytes = sum(
            message.nbytes for message in messages if isinstance(message, TimeStepMessage)
        )
        self.n_messages += len(messages)
        self.n_bytes += n_bytes
        self._m_messages.inc(len(messages))
        self._m_bytes.inc(n_bytes)
        if depth > self.max_depth:
            self.max_depth = depth

    def record_drop(self) -> None:
        self.n_dropped += 1
        self._m_dropped.inc()


class Channel:
    """A bounded FIFO message channel.

    ``maxsize=0`` means unbounded.  ``put`` returns ``False`` when the channel
    is full, mirroring the back-pressure the real framework applies to clients
    when the server cannot keep up.
    """

    def __init__(self, name: str, maxsize: int = 0) -> None:
        self.name = name
        self.maxsize = maxsize
        self._queue: Deque[Message] = deque()
        self.stats = TransportStats()
        if telemetry.metrics_enabled():
            self.stats.bind_metrics(name)

    def put(self, message: Message) -> bool:
        if self.maxsize and len(self._queue) >= self.maxsize:
            self.stats.record_drop()
            return False
        self._queue.append(message)
        self.stats.record(message, len(self._queue))
        return True

    def account(self, message: Message) -> None:
        """Record volume statistics for ``message`` without enqueueing it.

        The in-process run loop hands messages straight to its local pending
        queue; this path keeps the byte/message accounting of a real network
        hop without the pointless ``put``/``get`` round-trip.
        """
        self.stats.record(message, len(self._queue))

    def account_batch(self, messages: Sequence[Message]) -> None:
        """Volume-account one batch of messages in a single call.

        The batched equivalent of :meth:`account` — one trajectory chunk per
        call instead of one call per message — with identical totals and
        ``state_dict`` layout.
        """
        self.stats.record_batch(messages, len(self._queue))

    def get(self) -> Optional[Message]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def drain(self, limit: Optional[int] = None) -> List[Message]:
        """Pop up to ``limit`` messages (all of them when ``limit`` is None)."""
        out: List[Message] = []
        while self._queue and (limit is None or len(out) < limit):
            out.append(self._queue.popleft())
        return out

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Message]:  # pragma: no cover - convenience
        return iter(list(self._queue))


class InProcessTransport:
    """Named channels connecting the framework components."""

    def __init__(self, data_channel_maxsize: int = 0) -> None:
        self.channels: Dict[str, Channel] = {
            # clients -> server (solution fields)
            "data": Channel("data", maxsize=data_channel_maxsize),
            # server -> launcher (steering requests)
            "steering": Channel("steering"),
            # launcher -> server (job lifecycle notifications)
            "jobs": Channel("jobs"),
        }

    def channel(self, name: str) -> Channel:
        if name not in self.channels:
            self.channels[name] = Channel(name)
        return self.channels[name]

    @property
    def data(self) -> Channel:
        return self.channels["data"]

    @property
    def steering(self) -> Channel:
        return self.channels["steering"]

    @property
    def jobs(self) -> Channel:
        return self.channels["jobs"]

    def account(self, message: Message) -> None:
        """Volume-account a client→server message on the data channel."""
        self.data.account(message)

    def account_batch(self, messages: Sequence[Message]) -> None:
        """Volume-account one client→server trajectory chunk on the data channel."""
        self.data.account_batch(messages)

    # ---------------------------------------------------------------- state
    def state_dict(self) -> Dict[str, object]:
        """Per-channel volume counters (in-flight queue contents are owned by
        the session's pending queue and snapshotted there)."""
        return {
            "channels": [
                {
                    "name": channel.name,
                    "maxsize": channel.maxsize,
                    "n_messages": channel.stats.n_messages,
                    "n_bytes": channel.stats.n_bytes,
                    "max_depth": channel.stats.max_depth,
                    "n_dropped": channel.stats.n_dropped,
                }
                for channel in self.channels.values()
            ]
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        for payload in state["channels"]:  # type: ignore[union-attr]
            channel = self.channel(str(payload["name"]))
            channel.maxsize = int(payload["maxsize"])
            channel.stats.n_messages = int(payload["n_messages"])
            channel.stats.n_bytes = int(payload["n_bytes"])
            channel.stats.max_depth = int(payload["max_depth"])
            channel.stats.n_dropped = int(payload["n_dropped"])

    def total_bytes(self) -> int:
        return sum(c.stats.n_bytes for c in self.channels.values())

    def total_messages(self) -> int:
        return sum(c.stats.n_messages for c in self.channels.values())

    def total_dropped(self) -> int:
        return sum(c.stats.n_dropped for c in self.channels.values())
