"""Backward-compatible entry point of the on-line training driver.

Historically this module held the entire driver: a 70-line monolithic tick
loop hard-wired to the Heat2D implicit solver.  That loop now lives in
:class:`repro.api.session.TrainingSession`, decomposed into explicit
``submit`` / ``produce`` / ``receive`` / ``train`` / ``should_stop`` phases
over a pluggable :class:`~repro.api.workloads.Workload`; the configuration and
result dataclasses moved to :mod:`repro.api.config` and
:mod:`repro.api.session`.

Everything documented here keeps working unchanged:

* :class:`OnlineTrainingConfig`, :class:`OnlineTrainingResult` are re-exported,
* :func:`run_online_training` is a thin wrapper that builds a
  :class:`TrainingSession` and runs it to completion — for the default
  ``workload="heat2d"`` the behaviour (including every RNG stream) is
  identical to the historic loop,
* :func:`build_solver` / :func:`build_sampler` resolve through the
  :mod:`repro.api.registry` registries.
"""

from __future__ import annotations

from typing import Optional

from repro.api.config import OnlineTrainingConfig
from repro.api.session import OnlineTrainingResult, TrainingSession
from repro.breed.samplers import SteeringSampler
from repro.solvers.base import Solver
from repro.surrogate.validation import ValidationSet
from repro.utils.logging import EventLog

__all__ = [
    "OnlineTrainingConfig",
    "OnlineTrainingResult",
    "TrainingSession",
    "run_online_training",
    "build_solver",
    "build_sampler",
]


def build_solver(config: OnlineTrainingConfig) -> Solver:
    """Construct the (shared) solver of the configured workload."""
    return config.build_workload().build_solver()


def build_sampler(config: OnlineTrainingConfig) -> SteeringSampler:
    """Construct the configured steering sampler."""
    return config.build_sampler()


def run_online_training(
    config: OnlineTrainingConfig,
    solver: Optional[Solver] = None,
    validation_set: Optional[ValidationSet] = None,
    event_log: Optional[EventLog] = None,
) -> OnlineTrainingResult:
    """Run one complete on-line training experiment and return its results.

    Parameters
    ----------
    config:
        The run configuration.
    solver:
        Optional pre-built solver (sharing one across runs avoids re-factorising
        the implicit system when sweeping hyper-parameters).
    validation_set:
        Optional pre-built validation set (again, reusable across runs of a
        study since the paper keeps it fixed).
    event_log:
        Optional structured event log for debugging / tests.
    """
    session = TrainingSession(
        config,
        solver=solver,
        validation_set=validation_set,
        event_log=event_log,
    )
    return session.run()
