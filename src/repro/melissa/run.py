"""End-to-end on-line training driver.

This module wires the whole framework together — launcher, batch scheduler,
clients, transport, reservoir, server, steering controller — and runs the
cooperative loop that simulates the asynchronous execution of the real system:

1. the launcher keeps the scheduler fed with at most ``m`` client jobs,
2. running clients each stream a bounded number of time steps per tick,
3. once the reservoir watermark is reached, the server performs a configurable
   number of training iterations per tick (the paper notes the training thread
   typically runs faster than the receiving thread),
4. after every training iteration the steering controller may trigger a Breed
   resampling that rewrites the parameters of not-yet-submitted simulations.

:func:`run_online_training` is the single public entry point used by the
examples, the experiment studies and the benchmarks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.breed.controller import BreedController, SteeringRecord
from repro.breed.samplers import (
    BreedConfig,
    BreedSampler,
    ParameterSource,
    RandomSampler,
    SteeringSampler,
)
from repro.melissa.client import ClientFactory
from repro.melissa.launcher import Launcher
from repro.melissa.messages import TimeStepMessage
from repro.melissa.reservoir import Reservoir
from repro.melissa.scheduler import BatchScheduler
from repro.melissa.server import TrainingHistory, TrainingServer
from repro.melissa.transport import InProcessTransport
from repro.nn.optim import Adam
from repro.sampling.bounds import HEAT2D_BOUNDS, ParameterBounds
from repro.solvers.base import Solver
from repro.solvers.heat2d import Heat2DConfig, Heat2DImplicitSolver
from repro.surrogate.model import DirectSurrogate, SurrogateConfig
from repro.surrogate.normalization import SurrogateScalers
from repro.surrogate.validation import ValidationSet, build_validation_set
from repro.utils.logging import EventLog
from repro.utils.rng import RngStreams

__all__ = ["OnlineTrainingConfig", "OnlineTrainingResult", "run_online_training", "build_solver"]


@dataclass(frozen=True)
class OnlineTrainingConfig:
    """Complete configuration of one on-line training run.

    Defaults correspond to a *scaled-down* version of the paper's setup that
    runs in seconds on a single CPU core; the full-size values from Section 4
    (``grid_size=64``, ``n_timesteps=100``, ``n_simulations=800``,
    ``reservoir_watermark=300``, ``max_iterations≈5000``,
    ``n_validation_trajectories=200``) can be set explicitly.
    """

    # --- steering method -------------------------------------------------
    method: str = "breed"                      # "breed" or "random"
    breed: BreedConfig = field(default_factory=BreedConfig)
    # --- PDE / workload ---------------------------------------------------
    heat: Heat2DConfig = field(default_factory=lambda: Heat2DConfig(grid_size=12, n_timesteps=20))
    bounds: ParameterBounds = HEAT2D_BOUNDS
    n_simulations: int = 64                    # S — simulation budget
    # --- surrogate / optimisation ----------------------------------------
    hidden_size: int = 16                      # H
    n_hidden_layers: int = 1                   # L
    activation: str = "relu"
    learning_rate: float = 1e-3
    batch_size: int = 128                      # B
    # --- framework --------------------------------------------------------
    job_limit: int = 10                        # m — simultaneous client jobs
    scheduler_max_start_delay: int = 2
    reservoir_capacity: int = 1000
    reservoir_watermark: int = 300
    timesteps_per_tick: int = 2                # produced per running client per tick
    train_iterations_per_tick: int = 4
    max_iterations: int = 400
    validation_period: int = 50
    n_validation_trajectories: int = 16
    # --- bookkeeping -------------------------------------------------------
    record_sample_statistics: bool = False
    seed: int = 0
    max_ticks: int = 1_000_000

    def __post_init__(self) -> None:
        if self.method not in ("breed", "random"):
            raise ValueError(f"method must be 'breed' or 'random', got {self.method!r}")
        if self.n_simulations < 1:
            raise ValueError("n_simulations must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.timesteps_per_tick < 1 or self.train_iterations_per_tick < 0:
            raise ValueError("invalid per-tick settings")
        if self.reservoir_watermark > self.reservoir_capacity:
            raise ValueError("reservoir_watermark cannot exceed reservoir_capacity")

    @property
    def surrogate_config(self) -> SurrogateConfig:
        return SurrogateConfig(
            input_dim=self.bounds.dim + 1,
            output_dim=self.heat.grid_size**2,
            hidden_size=self.hidden_size,
            n_hidden_layers=self.n_hidden_layers,
            activation=self.activation,
        )

    def paper_scale(self) -> "OnlineTrainingConfig":
        """Return the full-size configuration used by the paper (expensive)."""
        return OnlineTrainingConfig(
            method=self.method,
            breed=self.breed,
            heat=Heat2DConfig(grid_size=64, n_timesteps=100),
            bounds=self.bounds,
            n_simulations=800,
            hidden_size=self.hidden_size,
            n_hidden_layers=self.n_hidden_layers,
            activation=self.activation,
            learning_rate=1e-3,
            batch_size=128,
            job_limit=10,
            reservoir_capacity=4000,
            reservoir_watermark=300,
            max_iterations=5000,
            validation_period=100,
            n_validation_trajectories=200,
            record_sample_statistics=self.record_sample_statistics,
            seed=self.seed,
        )


@dataclass
class OnlineTrainingResult:
    """Everything produced by one on-line training run."""

    config: OnlineTrainingConfig
    method: str
    history: TrainingHistory
    model: DirectSurrogate
    executed_parameters: np.ndarray
    parameter_sources: List[str]
    steering_records: List[SteeringRecord]
    launcher_summary: Dict[str, int]
    reservoir_summary: Dict[str, float]
    server_summary: Dict[str, float]
    transport_bytes: int
    n_ticks: int
    steering_seconds: float

    @property
    def final_validation_loss(self) -> float:
        return self.history.final_validation_loss()

    @property
    def final_train_loss(self) -> float:
        return self.history.final_train_loss()

    @property
    def overfit_gap(self) -> float:
        """validation − train loss at the end of the run (positive ⇒ overfitting)."""
        return self.final_validation_loss - self.final_train_loss

    def uniform_fraction(self) -> float:
        """Fraction of executed parameter vectors that came from a uniform draw."""
        if not self.parameter_sources:
            return float("nan")
        uniform = sum(
            1
            for s in self.parameter_sources
            if s in (ParameterSource.INITIAL_UNIFORM, ParameterSource.MIX_UNIFORM)
        )
        return uniform / len(self.parameter_sources)


def build_solver(config: OnlineTrainingConfig) -> Heat2DImplicitSolver:
    """Construct the (shared) heat solver used by every client of a run."""
    return Heat2DImplicitSolver(config.heat)


def build_sampler(config: OnlineTrainingConfig) -> SteeringSampler:
    if config.method == "breed":
        return BreedSampler(config.bounds, config.breed)
    return RandomSampler(config.bounds)


def run_online_training(
    config: OnlineTrainingConfig,
    solver: Optional[Solver] = None,
    validation_set: Optional[ValidationSet] = None,
    event_log: Optional[EventLog] = None,
) -> OnlineTrainingResult:
    """Run one complete on-line training experiment and return its results.

    Parameters
    ----------
    config:
        The run configuration.
    solver:
        Optional pre-built solver (sharing one across runs avoids re-factorising
        the implicit system when sweeping hyper-parameters).
    validation_set:
        Optional pre-built validation set (again, reusable across runs of a
        study since the paper keeps it fixed).
    event_log:
        Optional structured event log for debugging / tests.
    """
    streams = RngStreams(config.seed)
    solver = solver if solver is not None else build_solver(config)
    scalers = SurrogateScalers.for_heat2d(config.bounds, config.heat.n_timesteps)

    # --- validation set (fixed, Halton-sequence parameters) ---------------
    if validation_set is None and config.n_validation_trajectories > 0:
        validation_set = build_validation_set(
            solver=solver,
            bounds=config.bounds,
            scalers=scalers,
            n_trajectories=config.n_validation_trajectories,
        )

    # --- model / optimizer -------------------------------------------------
    model = DirectSurrogate(config.surrogate_config, scalers, rng=streams.get("model_init"))
    optimizer = Adam(model.parameters(), lr=config.learning_rate)

    # --- steering ----------------------------------------------------------
    sampler = build_sampler(config)
    controller = BreedController(sampler=sampler, rng=streams.get("breed"), event_log=event_log)

    # --- framework ----------------------------------------------------------
    initial_parameters = sampler.initial_parameters(config.n_simulations, streams.get("initial_sampling"))
    scheduler = BatchScheduler(
        job_limit=config.job_limit,
        rng=streams.get("scheduler"),
        max_start_delay=config.scheduler_max_start_delay,
    )
    client_factory = ClientFactory(solver=solver)
    launcher = Launcher(
        initial_parameters=initial_parameters,
        client_factory=client_factory,
        scheduler=scheduler,
        event_log=event_log,
    )
    reservoir = Reservoir(
        capacity=config.reservoir_capacity,
        watermark=min(config.reservoir_watermark, config.reservoir_capacity),
        rng=streams.get("reservoir"),
    )
    transport = InProcessTransport()
    server = TrainingServer(
        model=model,
        optimizer=optimizer,
        reservoir=reservoir,
        controller=controller,
        batch_size=config.batch_size,
        validation_set=validation_set,
        validation_period=config.validation_period,
        record_sample_statistics=config.record_sample_statistics,
        event_log=event_log,
    )

    pending_messages: Deque[TimeStepMessage] = deque()
    n_ticks = 0

    # ------------------------------------------------------------ main loop
    while n_ticks < config.max_ticks:
        n_ticks += 1

        # 1. Submission: keep the scheduler fed up to the job limit.
        launcher.submit_available()
        started = launcher.advance_scheduler()
        for client in started:
            record = launcher.records[client.simulation_id]
            uniform = record.source in (ParameterSource.INITIAL_UNIFORM, ParameterSource.MIX_UNIFORM)
            server.mark_parameter_source(client.simulation_id, uniform)

        # 2. Data production: each running client streams a few time steps.
        if reservoir.can_accept():
            for client in launcher.running_clients():
                messages = client.produce(config.timesteps_per_tick)
                for message in messages:
                    # Route through the transport for volume accounting, then
                    # hand over to the local pending queue (bounded memory).
                    transport.data.put(message)
                    transport.data.get()
                    pending_messages.append(message)
                if client.finished:
                    launcher.mark_finished(client.simulation_id)

        # 3. Reception: drain pending messages while the reservoir accepts them.
        while pending_messages:
            if not reservoir.can_accept():
                break
            message = pending_messages.popleft()
            if not server.receive(message):
                pending_messages.appendleft(message)
                break

        # 4. Training: a few NN iterations per tick once the watermark is hit.
        if server.ready:
            for _ in range(config.train_iterations_per_tick):
                if server.iteration >= config.max_iterations:
                    break
                server.train_iteration(launcher)

        # 5. Termination.
        if server.iteration >= config.max_iterations:
            break
        if launcher.all_finished and not pending_messages and not server.ready:
            # Not enough data was ever produced to reach the watermark.
            break

    # Final validation point so every run ends with an up-to-date metric.
    if validation_set is not None:
        server.evaluate_validation()

    executed_parameters, sources = launcher.executed_parameters()
    return OnlineTrainingResult(
        config=config,
        method=sampler.name,
        history=server.history,
        model=model,
        executed_parameters=executed_parameters,
        parameter_sources=sources,
        steering_records=list(controller.records),
        launcher_summary=launcher.summary(),
        reservoir_summary=reservoir.summary(),
        server_summary=server.summary(),
        transport_bytes=transport.total_bytes(),
        n_ticks=n_ticks,
        steering_seconds=controller.total_steering_seconds,
    )
