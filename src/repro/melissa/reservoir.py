"""The reservoir: the server's bounded training buffer (Appendix A).

Behaviour reproduced from the paper and [Meyer et al., SC'23]:

* newly received samples are stored in the buffer; once the buffer is full
  they replace *already-seen* entries chosen at random,
* if every buffered sample is still unseen (the trainer has not consumed them
  yet), incoming data is rejected and the client executions are paused
  temporarily — this is the back-pressure that prevents training data from
  being dropped before ever being used,
* training does not start before the buffer holds at least ``watermark``
  unique samples,
* training batches are drawn uniformly at random from the buffer, so each
  sample can be reused by several batches (the per-entry ``seen_count`` makes
  that reuse measurable).

Storage is struct-of-arrays: inputs, targets, ids, timesteps and seen-counts
live in preallocated contiguous arrays, so the per-batch hot path
(:meth:`Reservoir.sample_batch`) is a fancy-indexed gather plus one vectorised
seen-count increment instead of a Python loop over entry objects — measured
severalfold faster at paper-scale batch sizes (see ``docs/PERFORMANCE.md``)
and bit-identical: the RNG call sequence and every stored float are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import telemetry

__all__ = ["ReservoirEntry", "ReservoirBatch", "Reservoir"]


@dataclass
class ReservoirEntry:
    """One buffered training sample (already normalised for the NN)."""

    simulation_id: int
    timestep: int
    x: np.ndarray
    y: np.ndarray
    seen_count: int = 0

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64).reshape(-1)
        self.y = np.asarray(self.y, dtype=np.float64).reshape(-1)


@dataclass
class ReservoirBatch:
    """A training batch assembled from reservoir entries."""

    inputs: np.ndarray
    targets: np.ndarray
    simulation_ids: np.ndarray
    timesteps: np.ndarray

    def __len__(self) -> int:
        return self.inputs.shape[0]


class Reservoir:
    """Bounded random-replacement buffer with a training watermark.

    Parameters
    ----------
    capacity:
        Maximum number of buffered samples (the bounded-memory guarantee).
    watermark:
        Training is gated until this many samples have been buffered.
    rng:
        Generator used for eviction victims and batch draws; shared with the
        session's ``"reservoir"`` stream so runs stay deterministic.
    """

    def __init__(self, capacity: int, watermark: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if watermark < 1:
            raise ValueError("watermark must be >= 1")
        if watermark > capacity:
            raise ValueError("watermark cannot exceed capacity")
        self.capacity = capacity
        self.watermark = watermark
        self._rng = rng
        # Struct-of-arrays storage; the payload arrays are allocated lazily on
        # the first put() (their width is the workload's encoding dimension).
        self._n = 0
        self._xs: Optional[np.ndarray] = None
        self._ys: Optional[np.ndarray] = None
        self._simulation_ids = np.zeros(capacity, dtype=np.int64)
        self._timesteps = np.zeros(capacity, dtype=np.int64)
        self._seen = np.zeros(capacity, dtype=np.int64)
        # --- statistics
        self.n_received = 0
        self.n_rejected = 0
        self.n_evicted = 0
        self.n_batches = 0
        # --- telemetry mirrors (observation only; no-ops unless enabled)
        # put() runs once per sample, so the ingest/reject/evict mirrors are
        # synced as deltas of the canonical totals at draw time rather than
        # incremented inline (sync_metrics), keeping the per-sample path free
        # of telemetry calls entirely.
        registry = telemetry.metrics()
        self._m_ingest = registry.counter(
            "repro_reservoir_ingest_total", help="samples offered to the reservoir"
        )
        self._m_rejected = registry.counter(
            "repro_reservoir_rejected_total", help="samples rejected (back-pressure)"
        )
        self._m_evicted = registry.counter(
            "repro_reservoir_evicted_total", help="entries replaced by reservoir sampling"
        )
        self._synced_received = 0
        self._synced_rejected = 0
        self._synced_evicted = 0
        self._m_draws = registry.counter(
            "repro_reservoir_draws_total", help="training batches drawn"
        )
        self._m_drawn_samples = registry.counter(
            "repro_reservoir_drawn_samples_total", help="samples gathered into training batches"
        )

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return self._n

    @property
    def is_full(self) -> bool:
        return self._n >= self.capacity

    @property
    def ready_for_training(self) -> bool:
        """True once the watermark has been reached at least once."""
        return self._n >= self.watermark

    @property
    def n_unseen(self) -> int:
        return int(np.count_nonzero(self._seen[: self._n] == 0))

    def seen_counts(self) -> np.ndarray:
        """Per-entry consumption counts (copy, in buffer order)."""
        return self._seen[: self._n].copy()

    def entries(self) -> Sequence[ReservoirEntry]:
        """Read-only snapshot of the buffered entries (used by tests/analysis).

        Payloads are copied: a snapshot must stay internally consistent even
        when a later eviction overwrites the underlying buffer row.
        """
        return tuple(
            ReservoirEntry(
                simulation_id=int(self._simulation_ids[i]),
                timestep=int(self._timesteps[i]),
                x=self._xs[i].copy(),
                y=self._ys[i].copy(),
                seen_count=int(self._seen[i]),
            )
            for i in range(self._n)
        )

    def can_accept(self) -> bool:
        """Whether a new sample would be stored rather than rejected."""
        if not self.is_full:
            return True
        return self.n_unseen < self._n

    # ---------------------------------------------------------------- writes
    def _allocate(self, x_dim: int, y_dim: int) -> None:
        self._xs = np.empty((self.capacity, x_dim), dtype=np.float64)
        self._ys = np.empty((self.capacity, y_dim), dtype=np.float64)

    def _store(self, index: int, simulation_id: int, timestep: int, x: np.ndarray, y: np.ndarray) -> None:
        assert self._xs is not None and self._ys is not None
        if x.shape[0] != self._xs.shape[1] or y.shape[0] != self._ys.shape[1]:
            raise ValueError(
                f"sample dimensions ({x.shape[0]}, {y.shape[0]}) do not match the "
                f"buffer layout ({self._xs.shape[1]}, {self._ys.shape[1]})"
            )
        self._xs[index] = x
        self._ys[index] = y
        self._simulation_ids[index] = simulation_id
        self._timesteps[index] = timestep
        self._seen[index] = 0

    def put(
        self,
        simulation_id: int,
        timestep: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> bool:
        """Insert a sample; returns ``False`` when rejected (clients must pause)."""
        self.n_received += 1
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if self._xs is None:
            self._allocate(x.shape[0], y.shape[0])
        if not self.is_full:
            self._store(self._n, simulation_id, timestep, x, y)
            self._n += 1
            return True
        # Full: replace a random already-seen entry; reject if every entry is unseen.
        seen_indices = np.flatnonzero(self._seen[: self._n] > 0)
        if seen_indices.size == 0:
            self.n_rejected += 1
            return False
        victim = int(self._rng.choice(seen_indices))
        self._store(victim, simulation_id, timestep, x, y)
        self.n_evicted += 1
        return True

    # ---------------------------------------------------------------- reads
    def sample_batch(self, batch_size: int) -> Optional[ReservoirBatch]:
        """Draw a uniform random batch (without replacement within the batch).

        Returns ``None`` while the watermark has not been reached or when the
        buffer is empty.  When the buffer holds fewer samples than
        ``batch_size`` the whole buffer is returned (shuffled).  The gather is
        a single fancy-indexing pass over the contiguous buffer arrays.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not self.ready_for_training or self._n == 0:
            return None
        n = self._n
        take = min(batch_size, n)
        indices = self._rng.choice(n, size=take, replace=False)
        assert self._xs is not None and self._ys is not None
        xs = self._xs[indices]
        ys = self._ys[indices]
        sim_ids = self._simulation_ids[indices]
        steps = self._timesteps[indices]
        # Indices are unique (replace=False), so a vectorised += is exact.
        self._seen[indices] += 1
        self.n_batches += 1
        self._m_draws.inc()
        self._m_drawn_samples.inc(take)
        self.sync_metrics()
        return ReservoirBatch(inputs=xs, targets=ys, simulation_ids=sim_ids, timesteps=steps)

    def sync_metrics(self) -> None:
        """Push the ingest/reject/evict totals into the telemetry mirrors.

        Called after every batch draw (and by the session on completion), so
        the registry converges on the canonical totals without a telemetry
        call in the per-sample ``put`` path.
        """
        if self.n_received != self._synced_received:
            self._m_ingest.inc(self.n_received - self._synced_received)
            self._synced_received = self.n_received
        if self.n_rejected != self._synced_rejected:
            self._m_rejected.inc(self.n_rejected - self._synced_rejected)
            self._synced_rejected = self.n_rejected
        if self.n_evicted != self._synced_evicted:
            self._m_evicted.inc(self.n_evicted - self._synced_evicted)
            self._synced_evicted = self.n_evicted

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Full buffer content and counters (entries stacked into arrays)."""
        n = self._n
        state: dict = {
            "capacity": self.capacity,
            "watermark": self.watermark,
            "n_entries": n,
            "n_received": self.n_received,
            "n_rejected": self.n_rejected,
            "n_evicted": self.n_evicted,
            "n_batches": self.n_batches,
        }
        if n:
            assert self._xs is not None and self._ys is not None
            state["simulation_ids"] = self._simulation_ids[:n].copy()
            state["timesteps"] = self._timesteps[:n].copy()
            state["seen_counts"] = self.seen_counts()
            state["xs"] = self._xs[:n].copy()
            state["ys"] = self._ys[:n].copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore the buffer in entry order (eviction indices depend on it)."""
        if int(state["capacity"]) != self.capacity or int(state["watermark"]) != self.watermark:
            raise ValueError(
                "reservoir geometry mismatch: state has "
                f"capacity={state['capacity']}/watermark={state['watermark']}, "
                f"reservoir has {self.capacity}/{self.watermark}"
            )
        self.n_received = int(state["n_received"])
        self.n_rejected = int(state["n_rejected"])
        self.n_evicted = int(state["n_evicted"])
        self.n_batches = int(state["n_batches"])
        n = int(state["n_entries"])
        self._n = n
        if n == 0:
            return
        xs = np.array(state["xs"], dtype=np.float64, copy=True)
        ys = np.array(state["ys"], dtype=np.float64, copy=True)
        self._allocate(xs.shape[1], ys.shape[1])
        assert self._xs is not None and self._ys is not None
        self._xs[:n] = xs
        self._ys[:n] = ys
        self._simulation_ids[:n] = np.asarray(state["simulation_ids"], dtype=np.int64)
        self._timesteps[:n] = np.asarray(state["timesteps"], dtype=np.int64)
        self._seen[:n] = np.asarray(state["seen_counts"], dtype=np.int64)

    # ------------------------------------------------------------- analysis
    def reuse_statistics(self) -> Tuple[float, int]:
        """Mean and maximum seen-count over the current buffer content."""
        if self._n == 0:
            return 0.0, 0
        counts = self._seen[: self._n]
        return float(counts.mean()), int(counts.max())

    def summary(self) -> dict[str, float]:
        mean_reuse, max_reuse = self.reuse_statistics()
        return {
            "size": float(self._n),
            "capacity": float(self.capacity),
            "received": float(self.n_received),
            "rejected": float(self.n_rejected),
            "evicted": float(self.n_evicted),
            "batches": float(self.n_batches),
            "mean_reuse": mean_reuse,
            "max_reuse": float(max_reuse),
        }
