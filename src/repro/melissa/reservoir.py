"""The reservoir: the server's bounded training buffer (Appendix A).

Behaviour reproduced from the paper and [Meyer et al., SC'23]:

* newly received samples are stored in the buffer; once the buffer is full
  they replace *already-seen* entries chosen at random,
* if every buffered sample is still unseen (the trainer has not consumed them
  yet), incoming data is rejected and the client executions are paused
  temporarily — this is the back-pressure that prevents training data from
  being dropped before ever being used,
* training does not start before the buffer holds at least ``watermark``
  unique samples,
* training batches are drawn uniformly at random from the buffer, so each
  sample can be reused by several batches (the per-entry ``seen_count`` makes
  that reuse measurable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ReservoirEntry", "ReservoirBatch", "Reservoir"]


@dataclass
class ReservoirEntry:
    """One buffered training sample (already normalised for the NN)."""

    simulation_id: int
    timestep: int
    x: np.ndarray
    y: np.ndarray
    seen_count: int = 0

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64).reshape(-1)
        self.y = np.asarray(self.y, dtype=np.float64).reshape(-1)


@dataclass
class ReservoirBatch:
    """A training batch assembled from reservoir entries."""

    inputs: np.ndarray
    targets: np.ndarray
    simulation_ids: np.ndarray
    timesteps: np.ndarray

    def __len__(self) -> int:
        return self.inputs.shape[0]


class Reservoir:
    """Bounded random-replacement buffer with a training watermark."""

    def __init__(self, capacity: int, watermark: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if watermark < 1:
            raise ValueError("watermark must be >= 1")
        if watermark > capacity:
            raise ValueError("watermark cannot exceed capacity")
        self.capacity = capacity
        self.watermark = watermark
        self._rng = rng
        self._entries: List[ReservoirEntry] = []
        # --- statistics
        self.n_received = 0
        self.n_rejected = 0
        self.n_evicted = 0
        self.n_batches = 0

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def ready_for_training(self) -> bool:
        """True once the watermark has been reached at least once."""
        return len(self._entries) >= self.watermark

    @property
    def n_unseen(self) -> int:
        return sum(1 for e in self._entries if e.seen_count == 0)

    def seen_counts(self) -> np.ndarray:
        return np.array([e.seen_count for e in self._entries], dtype=np.int64)

    def entries(self) -> Sequence[ReservoirEntry]:
        """Read-only view of the buffered entries (used by tests/analysis)."""
        return tuple(self._entries)

    def can_accept(self) -> bool:
        """Whether a new sample would be stored rather than rejected."""
        if not self.is_full:
            return True
        return self.n_unseen < len(self._entries)

    # ---------------------------------------------------------------- writes
    def put(
        self,
        simulation_id: int,
        timestep: int,
        x: np.ndarray,
        y: np.ndarray,
    ) -> bool:
        """Insert a sample; returns ``False`` when rejected (clients must pause)."""
        self.n_received += 1
        entry = ReservoirEntry(simulation_id=simulation_id, timestep=timestep, x=x, y=y)
        if not self.is_full:
            self._entries.append(entry)
            return True
        # Full: replace a random already-seen entry; reject if every entry is unseen.
        seen_indices = [i for i, e in enumerate(self._entries) if e.seen_count > 0]
        if not seen_indices:
            self.n_rejected += 1
            return False
        victim = int(self._rng.choice(seen_indices))
        self._entries[victim] = entry
        self.n_evicted += 1
        return True

    # ---------------------------------------------------------------- reads
    def sample_batch(self, batch_size: int) -> Optional[ReservoirBatch]:
        """Draw a uniform random batch (without replacement within the batch).

        Returns ``None`` while the watermark has not been reached or when the
        buffer is empty.  When the buffer holds fewer samples than
        ``batch_size`` the whole buffer is returned (shuffled).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not self.ready_for_training or not self._entries:
            return None
        n = len(self._entries)
        take = min(batch_size, n)
        indices = self._rng.choice(n, size=take, replace=False)
        xs = np.stack([self._entries[i].x for i in indices], axis=0)
        ys = np.stack([self._entries[i].y for i in indices], axis=0)
        sim_ids = np.array([self._entries[i].simulation_id for i in indices], dtype=np.int64)
        steps = np.array([self._entries[i].timestep for i in indices], dtype=np.int64)
        for i in indices:
            self._entries[i].seen_count += 1
        self.n_batches += 1
        return ReservoirBatch(inputs=xs, targets=ys, simulation_ids=sim_ids, timesteps=steps)

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Full buffer content and counters (entries stacked into arrays)."""
        n = len(self._entries)
        state: dict = {
            "capacity": self.capacity,
            "watermark": self.watermark,
            "n_entries": n,
            "n_received": self.n_received,
            "n_rejected": self.n_rejected,
            "n_evicted": self.n_evicted,
            "n_batches": self.n_batches,
        }
        if n:
            state["simulation_ids"] = np.array([e.simulation_id for e in self._entries], dtype=np.int64)
            state["timesteps"] = np.array([e.timestep for e in self._entries], dtype=np.int64)
            state["seen_counts"] = self.seen_counts()
            state["xs"] = np.stack([e.x for e in self._entries], axis=0)
            state["ys"] = np.stack([e.y for e in self._entries], axis=0)
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore the buffer in entry order (eviction indices depend on it)."""
        if int(state["capacity"]) != self.capacity or int(state["watermark"]) != self.watermark:
            raise ValueError(
                "reservoir geometry mismatch: state has "
                f"capacity={state['capacity']}/watermark={state['watermark']}, "
                f"reservoir has {self.capacity}/{self.watermark}"
            )
        self.n_received = int(state["n_received"])
        self.n_rejected = int(state["n_rejected"])
        self.n_evicted = int(state["n_evicted"])
        self.n_batches = int(state["n_batches"])
        self._entries = []
        for index in range(int(state["n_entries"])):
            entry = ReservoirEntry(
                simulation_id=int(state["simulation_ids"][index]),
                timestep=int(state["timesteps"][index]),
                x=np.array(state["xs"][index], dtype=np.float64, copy=True),
                y=np.array(state["ys"][index], dtype=np.float64, copy=True),
                seen_count=int(state["seen_counts"][index]),
            )
            self._entries.append(entry)

    # ------------------------------------------------------------- analysis
    def reuse_statistics(self) -> Tuple[float, int]:
        """Mean and maximum seen-count over the current buffer content."""
        if not self._entries:
            return 0.0, 0
        counts = self.seen_counts()
        return float(counts.mean()), int(counts.max())

    def summary(self) -> dict[str, float]:
        mean_reuse, max_reuse = self.reuse_statistics()
        return {
            "size": float(len(self._entries)),
            "capacity": float(self.capacity),
            "received": float(self.n_received),
            "rejected": float(self.n_rejected),
            "evicted": float(self.n_evicted),
            "batches": float(self.n_batches),
            "mean_reuse": mean_reuse,
            "max_reuse": float(max_reuse),
        }
