"""Client: one solver instance streaming its trajectory to the server.

In the real framework each client is an MPI job running the numerical solver
and pushing every produced time step to the server over the network.  Here a
client wraps a :class:`repro.solvers.base.Solver` generator and exposes
:meth:`produce`, which advances the solver by a bounded number of time steps
per call — this is what lets the simulation interleave data production with
NN training the way the asynchronous real system does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro import telemetry
from repro.melissa.messages import SimulationFinished, TimeStepMessage
from repro.solvers.base import Solver

__all__ = ["SolverClient", "ClientFactory"]


class SolverClient:
    """Streams the trajectory of one parameter vector, time step by time step."""

    def __init__(self, simulation_id: int, parameters: np.ndarray, solver: Solver) -> None:
        self.simulation_id = simulation_id
        self.parameters = np.asarray(parameters, dtype=np.float64).copy()
        self.solver = solver
        self._iterator: Optional[Iterator[np.ndarray]] = None
        self._next_timestep = 0
        self.finished = False
        #: number of time steps produced so far
        self.n_produced = 0
        self._m_steps = telemetry.metrics().counter(
            "repro_solver_steps_total", help="solver time steps produced by clients"
        )

    def _ensure_started(self) -> None:
        if self._iterator is None:
            self._iterator = self.solver.steps(self.parameters)

    def produce(self, max_steps: int) -> List[TimeStepMessage]:
        """Produce up to ``max_steps`` further time steps of the trajectory.

        Returns the produced messages; sets :attr:`finished` when the solver
        iterator is exhausted.  Calling again after completion returns an
        empty list.
        """
        if max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.finished:
            return []
        self._ensure_started()
        assert self._iterator is not None
        messages: List[TimeStepMessage] = []
        for _ in range(max_steps):
            try:
                payload = next(self._iterator)
            except StopIteration:
                self.finished = True
                break
            messages.append(
                TimeStepMessage(
                    simulation_id=self.simulation_id,
                    parameters=self.parameters,
                    timestep=self._next_timestep,
                    payload=payload,
                )
            )
            self._next_timestep += 1
            self.n_produced += 1
        if messages:
            self._m_steps.inc(len(messages))
        return messages

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Trajectory progress of this client (solver state is re-derived)."""
        return {
            "simulation_id": self.simulation_id,
            "parameters": self.parameters.copy(),
            "next_timestep": self._next_timestep,
            "n_produced": self.n_produced,
            "finished": self.finished,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore progress by fast-forwarding the deterministic solver.

        Solvers are pure functions of their parameter vector, so re-running
        the iterator and discarding the first ``next_timestep`` fields puts a
        fresh client into the bit-identical mid-trajectory state the snapshot
        captured, without persisting solution fields.
        """
        if int(state["simulation_id"]) != self.simulation_id:
            raise ValueError(
                f"client state is for simulation {state['simulation_id']}, "
                f"this client is {self.simulation_id}"
            )
        self.parameters = np.asarray(state["parameters"], dtype=np.float64).copy()
        self.finished = bool(state["finished"])
        self.n_produced = int(state["n_produced"])
        target = int(state["next_timestep"])
        self._iterator = None
        self._next_timestep = 0
        if not self.finished and target > 0:
            self._ensure_started()
            assert self._iterator is not None
            for _ in range(target):
                next(self._iterator)
        self._next_timestep = target

    def finish_message(self) -> SimulationFinished:
        return SimulationFinished(simulation_id=self.simulation_id, n_timesteps=self.n_produced)

    @property
    def expected_timesteps(self) -> int:
        """Total number of time steps the client will produce (t = 0 .. T)."""
        return self.solver.n_timesteps + 1


@dataclass
class ClientFactory:
    """Creates a :class:`SolverClient` per started simulation job.

    A single solver instance is shared across clients: the implicit solver
    pre-factorises its linear system once, and clients only differ by their
    boundary/initial parameters, exactly like the in-house solver of the paper
    where the factorisation depends on the mesh, not on ``λ``.
    """

    solver: Solver
    created: List[int] = field(default_factory=list)

    def create(self, simulation_id: int, parameters: np.ndarray) -> SolverClient:
        self.created.append(simulation_id)
        return SolverClient(simulation_id, parameters, self.solver)
