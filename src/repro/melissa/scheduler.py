"""Batch-scheduler simulation.

The real experiments run on a cluster managed by OAR: the launcher submits
client jobs and the scheduler decides when they actually start, with a job
limit ``m`` ("the maximum number of jobs allowed to run simultaneously,
determined by the available resources") and non-deterministic start times
("the inherent uncertainty of the batch scheduler", Section 3.3).

:class:`BatchScheduler` reproduces exactly those two semantics in discrete
ticks: at most ``job_limit`` jobs run at once, and a submitted job waits a
random number of ticks (bounded by ``max_start_delay``) before becoming
eligible to start, so the start *order* of queued jobs can differ from the
submission order — the property that forces the server to steer only
simulations at least ``m`` ids ahead of the newest submission.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["JobState", "SchedulerJob", "BatchScheduler"]


class JobState(enum.Enum):
    """Lifecycle of one scheduler job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


@dataclass
class SchedulerJob:
    """Book-keeping record of a submitted job."""

    job_id: int
    submitted_tick: int
    eligible_tick: int
    state: JobState = JobState.QUEUED
    started_tick: Optional[int] = None
    completed_tick: Optional[int] = None


class BatchScheduler:
    """Discrete-tick scheduler with a concurrent-job limit and start jitter."""

    def __init__(
        self,
        job_limit: int,
        rng: np.random.Generator,
        max_start_delay: int = 0,
    ) -> None:
        if job_limit < 1:
            raise ValueError("job_limit must be >= 1")
        if max_start_delay < 0:
            raise ValueError("max_start_delay must be non-negative")
        self.job_limit = job_limit
        self.max_start_delay = max_start_delay
        self._rng = rng
        self._jobs: Dict[int, SchedulerJob] = {}
        self._tick = 0

    # --------------------------------------------------------------- queries
    @property
    def tick_count(self) -> int:
        return self._tick

    def job(self, job_id: int) -> SchedulerJob:
        return self._jobs[job_id]

    def jobs_in_state(self, state: JobState) -> List[int]:
        return [jid for jid, job in self._jobs.items() if job.state == state]

    @property
    def n_running(self) -> int:
        return len(self.jobs_in_state(JobState.RUNNING))

    @property
    def n_queued(self) -> int:
        return len(self.jobs_in_state(JobState.QUEUED))

    def has_capacity(self) -> bool:
        return self.n_running < self.job_limit

    # ------------------------------------------------------------ lifecycle
    def submit(self, job_id: int) -> SchedulerJob:
        """Submit a job; it becomes eligible after a random delay of ticks."""
        if job_id in self._jobs:
            raise ValueError(f"job {job_id} already submitted")
        delay = int(self._rng.integers(0, self.max_start_delay + 1)) if self.max_start_delay else 0
        job = SchedulerJob(job_id=job_id, submitted_tick=self._tick, eligible_tick=self._tick + delay)
        self._jobs[job_id] = job
        return job

    def cancel(self, job_id: int) -> bool:
        """Cancel a queued job (running jobs cannot be cancelled)."""
        job = self._jobs.get(job_id)
        if job is None or job.state != JobState.QUEUED:
            return False
        job.state = JobState.CANCELLED
        return True

    def advance(self) -> List[int]:
        """Advance one tick and return the ids of jobs that started this tick.

        Eligible queued jobs start in order of (eligible tick, job id) while
        capacity remains — jitter in the eligible tick is what shuffles the
        start order relative to the submission order.
        """
        self._tick += 1
        started: List[int] = []
        eligible = [
            job
            for job in self._jobs.values()
            if job.state == JobState.QUEUED and job.eligible_tick <= self._tick
        ]
        eligible.sort(key=lambda job: (job.eligible_tick, job.job_id))
        for job in eligible:
            if not self.has_capacity():
                break
            job.state = JobState.RUNNING
            job.started_tick = self._tick
            started.append(job.job_id)
        return started

    def complete(self, job_id: int) -> None:
        """Mark a running job as completed (frees one slot)."""
        job = self._jobs[job_id]
        if job.state != JobState.RUNNING:
            raise ValueError(f"job {job_id} is not running (state={job.state})")
        job.state = JobState.COMPLETED
        job.completed_tick = self._tick

    # --------------------------------------------------------------- state
    def state_dict(self) -> Dict[str, object]:
        """Tick counter and every job record, in submission order."""
        return {
            "tick": self._tick,
            "job_limit": self.job_limit,
            "max_start_delay": self.max_start_delay,
            "jobs": [
                {
                    "job_id": job.job_id,
                    "submitted_tick": job.submitted_tick,
                    "eligible_tick": job.eligible_tick,
                    "state": job.state.value,
                    "started_tick": job.started_tick,
                    "completed_tick": job.completed_tick,
                }
                for job in self._jobs.values()
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        if int(state["job_limit"]) != self.job_limit:  # type: ignore[arg-type]
            raise ValueError(
                f"scheduler job_limit mismatch: state has {state['job_limit']}, "
                f"scheduler has {self.job_limit}"
            )
        self._tick = int(state["tick"])  # type: ignore[arg-type]
        self.max_start_delay = int(state["max_start_delay"])  # type: ignore[arg-type]
        self._jobs = {}
        for payload in state["jobs"]:  # type: ignore[union-attr]
            job = SchedulerJob(
                job_id=int(payload["job_id"]),
                submitted_tick=int(payload["submitted_tick"]),
                eligible_tick=int(payload["eligible_tick"]),
                state=JobState(payload["state"]),
                started_tick=None if payload["started_tick"] is None else int(payload["started_tick"]),
                completed_tick=None if payload["completed_tick"] is None else int(payload["completed_tick"]),
            )
            self._jobs[job.job_id] = job

    # ------------------------------------------------------------- summary
    def summary(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            counts[job.state.value] += 1
        counts["total"] = len(self._jobs)
        counts["ticks"] = self._tick
        return counts
