"""In-process simulation of the Melissa DL on-line training framework.

Architecture (Appendix A of the paper): a *launcher* submits solver *clients*
through a batch *scheduler*; each client streams its trajectory time step by
time step to the *server*, which buffers samples in a *reservoir* and trains
the surrogate from random reservoir batches while steering the parameters of
not-yet-submitted simulations.
"""

from repro.melissa.client import ClientFactory, SolverClient
from repro.melissa.launcher import Launcher, SimulationRecord, SimulationState
from repro.melissa.messages import (
    Message,
    ParameterUpdate,
    SimulationFinished,
    SimulationStarted,
    StopClient,
    TimeStepMessage,
)
from repro.melissa.reservoir import Reservoir, ReservoirBatch, ReservoirEntry
from repro.melissa.run import (
    OnlineTrainingConfig,
    OnlineTrainingResult,
    TrainingSession,
    build_sampler,
    build_solver,
    run_online_training,
)
from repro.melissa.scheduler import BatchScheduler, JobState, SchedulerJob
from repro.melissa.server import SampleStatistic, TrainingHistory, TrainingServer
from repro.melissa.transport import Channel, InProcessTransport, TransportStats

__all__ = [
    "ClientFactory",
    "SolverClient",
    "Launcher",
    "SimulationRecord",
    "SimulationState",
    "Message",
    "ParameterUpdate",
    "SimulationFinished",
    "SimulationStarted",
    "StopClient",
    "TimeStepMessage",
    "Reservoir",
    "ReservoirBatch",
    "ReservoirEntry",
    "OnlineTrainingConfig",
    "OnlineTrainingResult",
    "TrainingSession",
    "build_sampler",
    "build_solver",
    "run_online_training",
    "BatchScheduler",
    "JobState",
    "SchedulerJob",
    "SampleStatistic",
    "TrainingHistory",
    "TrainingServer",
    "Channel",
    "InProcessTransport",
    "TransportStats",
]
