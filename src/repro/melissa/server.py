"""Server: receives streamed data, trains the surrogate and steers the launcher.

The server is the heart of the Melissa DL architecture (Appendix A): it owns
the reservoir buffer, the NN and its optimizer, and — in this paper's
extension — the Breed controller that converts training-loss statistics into
steering requests.

The real server runs a receiving thread and a training thread concurrently;
here the same interleaving is reproduced cooperatively by the driver in
:mod:`repro.melissa.run`, which alternates :meth:`receive` and
:meth:`train_iteration` calls at configurable ratios (the paper notes the
training thread "may operate more frequently than a receiving thread").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro import nn, telemetry
from repro.breed.controller import BreedController
from repro.melissa.launcher import Launcher
from repro.melissa.messages import TimeStepMessage
from repro.melissa.reservoir import Reservoir, ReservoirBatch
from repro.nn.tensor import Tensor
from repro.surrogate.model import DirectSurrogate
from repro.surrogate.validation import ValidationSet, validation_loss
from repro.utils.logging import EventLog
from repro.utils.timer import TimerRegistry

__all__ = ["SampleStatistic", "TrainingHistory", "TrainingServer"]


@dataclass(frozen=True)
class SampleStatistic:
    """Per-sample training statistics row (the raw material of Figure 6).

    One row is recorded for every sample of every training batch:
    NN iteration ``i``, parameter index ``j``, time step ``t``, per-sample
    loss ``l^{(i)}_{jt}``, whether the sample's simulation parameters came from
    the uniform mixture, batch loss ``μ(l^{(i)})`` and the loss deviation
    ``δ^{(i)}_{jt}``.
    """

    iteration: int
    simulation_id: int
    timestep: int
    sample_loss: float
    uniform: bool
    batch_loss: float
    deviation: float


@dataclass
class TrainingHistory:
    """Loss curves and event counters accumulated during a run."""

    train_losses: List[float] = field(default_factory=list)
    train_iterations: List[int] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)
    validation_iterations: List[int] = field(default_factory=list)
    sample_statistics: List[SampleStatistic] = field(default_factory=list)

    def final_validation_loss(self) -> float:
        return self.validation_losses[-1] if self.validation_losses else float("nan")

    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.asarray(self.train_iterations, dtype=np.int64),
            np.asarray(self.train_losses, dtype=np.float64),
            np.asarray(self.validation_iterations, dtype=np.int64),
            np.asarray(self.validation_losses, dtype=np.float64),
        )

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Loss curves (and optional per-sample statistics) as stacked arrays."""
        state: dict = {
            "train_losses": np.asarray(self.train_losses, dtype=np.float64),
            "train_iterations": np.asarray(self.train_iterations, dtype=np.int64),
            "validation_losses": np.asarray(self.validation_losses, dtype=np.float64),
            "validation_iterations": np.asarray(self.validation_iterations, dtype=np.int64),
            "n_sample_statistics": len(self.sample_statistics),
        }
        if self.sample_statistics:
            stats = self.sample_statistics
            state["stat_iterations"] = np.array([s.iteration for s in stats], dtype=np.int64)
            state["stat_simulation_ids"] = np.array([s.simulation_id for s in stats], dtype=np.int64)
            state["stat_timesteps"] = np.array([s.timestep for s in stats], dtype=np.int64)
            state["stat_sample_losses"] = np.array([s.sample_loss for s in stats], dtype=np.float64)
            state["stat_uniform"] = np.array([s.uniform for s in stats], dtype=np.bool_)
            state["stat_batch_losses"] = np.array([s.batch_loss for s in stats], dtype=np.float64)
            state["stat_deviations"] = np.array([s.deviation for s in stats], dtype=np.float64)
        return state

    def load_state_dict(self, state: dict) -> None:
        self.train_losses = [float(v) for v in state["train_losses"]]
        self.train_iterations = [int(v) for v in state["train_iterations"]]
        self.validation_losses = [float(v) for v in state["validation_losses"]]
        self.validation_iterations = [int(v) for v in state["validation_iterations"]]
        self.sample_statistics = []
        for index in range(int(state["n_sample_statistics"])):
            self.sample_statistics.append(
                SampleStatistic(
                    iteration=int(state["stat_iterations"][index]),
                    simulation_id=int(state["stat_simulation_ids"][index]),
                    timestep=int(state["stat_timesteps"][index]),
                    sample_loss=float(state["stat_sample_losses"][index]),
                    uniform=bool(state["stat_uniform"][index]),
                    batch_loss=float(state["stat_batch_losses"][index]),
                    deviation=float(state["stat_deviations"][index]),
                )
            )


class TrainingServer:
    """Receives data, trains the surrogate, and triggers steering."""

    def __init__(
        self,
        model: DirectSurrogate,
        optimizer: nn.Optimizer,
        reservoir: Reservoir,
        controller: BreedController,
        batch_size: int,
        validation_set: Optional[ValidationSet] = None,
        validation_period: int = 50,
        record_sample_statistics: bool = False,
        uniform_source_flags: Optional[dict[int, bool]] = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if validation_period < 1:
            raise ValueError("validation_period must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.reservoir = reservoir
        self.controller = controller
        self.batch_size = batch_size
        self.validation_set = validation_set
        self.validation_period = validation_period
        self.record_sample_statistics = record_sample_statistics
        #: per-simulation flag: True when its parameters came from a uniform draw
        self.uniform_source_flags = dict(uniform_source_flags or {})
        self.event_log = event_log
        self.history = TrainingHistory()
        self.timers = TimerRegistry()
        self.iteration = 0
        self.n_samples_received = 0
        self._tracer = telemetry.tracer()

    # ---------------------------------------------------------------- receive
    def receive(self, message: TimeStepMessage) -> bool:
        """Ingest one streamed time step; returns False when back-pressured."""
        with self.timers.span("receive"):
            x = self.model.scalers.encode_input(message.parameters, message.timestep)
            y = self.model.scalers.encode_output(message.payload)
            accepted = self.reservoir.put(
                simulation_id=int(message.simulation_id or 0),
                timestep=message.timestep,
                x=x,
                y=y,
            )
        if accepted:
            self.n_samples_received += 1
        return accepted

    def mark_parameter_source(self, simulation_id: int, uniform: bool) -> None:
        """Record whether a simulation's parameters came from a uniform draw."""
        self.uniform_source_flags[simulation_id] = uniform

    # ------------------------------------------------------------------ train
    @property
    def ready(self) -> bool:
        """Training is gated on the reservoir watermark (Appendix B.1)."""
        return self.reservoir.ready_for_training

    def train_iteration(self, launcher: Optional[Launcher] = None) -> Optional[float]:
        """One optimisation step; returns the batch loss (or None if not ready)."""
        batch = self.reservoir.sample_batch(self.batch_size)
        if batch is None:
            return None
        with self.timers.span("train"):
            loss_value, per_sample = self._optimize(batch)
        self.iteration += 1
        self.history.train_losses.append(loss_value)
        self.history.train_iterations.append(self.iteration)

        # Feed the per-sample losses into the steering sampler (Breed's input).
        with self.timers.span("acquisition"):
            self.controller.observe_batch(
                iteration=self.iteration,
                simulation_ids=batch.simulation_ids,
                timesteps=batch.timesteps,
                sample_losses=per_sample,
                parameters=None,
            )
        if self.record_sample_statistics:
            self._record_statistics(batch, per_sample, loss_value)

        # Periodic validation.
        if self.validation_set is not None and self.iteration % self.validation_period == 0:
            with self.timers.span("validation"), self._tracer.span(
                "server.validation", cat="validation"
            ):
                val = validation_loss(self.model, self.validation_set)
            self.history.validation_losses.append(val)
            self.history.validation_iterations.append(self.iteration)
            if self.event_log is not None:
                self.event_log.emit("server", "validation", step=self.iteration, loss=val)

        # Steering trigger (no-op for the Random baseline).
        if launcher is not None:
            n_steer = self.controller.n_steering_events
            self.controller.maybe_steer(self.iteration, launcher)
            if self.controller.n_steering_events != n_steer:
                self._tracer.instant("server.steering", cat="steering", iteration=self.iteration)
        return loss_value

    def _optimize(self, batch: ReservoirBatch) -> Tuple[float, np.ndarray]:
        inputs = Tensor(batch.inputs)
        targets = Tensor(batch.targets)
        self.model.zero_grad()
        prediction = self.model(inputs)
        per_sample_tensor = nn.functional.per_sample_mse(prediction, targets)
        loss = per_sample_tensor.mean()
        loss.backward()
        self.optimizer.step()
        return float(loss.item()), per_sample_tensor.data.copy()

    def _record_statistics(
        self, batch: ReservoirBatch, per_sample: np.ndarray, batch_loss: float
    ) -> None:
        std = float(per_sample.std())
        sigma = std if std > 1e-12 else 1e-12
        for sim_id, timestep, sample_loss in zip(batch.simulation_ids, batch.timesteps, per_sample):
            deviation = max(float(sample_loss) - batch_loss, 0.0) / sigma
            self.history.sample_statistics.append(
                SampleStatistic(
                    iteration=self.iteration,
                    simulation_id=int(sim_id),
                    timestep=int(timestep),
                    sample_loss=float(sample_loss),
                    uniform=self.uniform_source_flags.get(int(sim_id), True),
                    batch_loss=batch_loss,
                    deviation=deviation,
                )
            )

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Server counters, history and per-simulation provenance flags.

        The model, optimizer, reservoir and controller are snapshotted by
        their owners (see :meth:`repro.api.session.TrainingSession.state_dict`);
        wall-clock phase timers are measurement, not state, and restart at
        zero after a restore.
        """
        flags = sorted(self.uniform_source_flags.items())
        return {
            "iteration": self.iteration,
            "n_samples_received": self.n_samples_received,
            "uniform_flag_ids": np.array([sid for sid, _ in flags], dtype=np.int64),
            "uniform_flag_values": np.array([bool(v) for _, v in flags], dtype=np.bool_),
            "history": self.history.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.iteration = int(state["iteration"])
        self.n_samples_received = int(state["n_samples_received"])
        self.uniform_source_flags = {
            int(sid): bool(value)
            for sid, value in zip(state["uniform_flag_ids"], state["uniform_flag_values"])
        }
        self.history.load_state_dict(state["history"])

    # ---------------------------------------------------------------- report
    def evaluate_validation(self) -> Optional[float]:
        """Force a validation evaluation outside the periodic schedule."""
        if self.validation_set is None:
            return None
        val = validation_loss(self.model, self.validation_set)
        self.history.validation_losses.append(val)
        self.history.validation_iterations.append(self.iteration)
        return val

    def summary(self) -> dict[str, float]:
        return {
            "iterations": float(self.iteration),
            "samples_received": float(self.n_samples_received),
            "final_train_loss": self.history.final_train_loss(),
            "final_validation_loss": self.history.final_validation_loss(),
            "steering_events": float(self.controller.n_steering_events),
            "steering_seconds": self.controller.total_steering_seconds,
            **{f"reservoir_{k}": v for k, v in self.reservoir.summary().items()},
        }
