"""Launcher: owns the simulation budget and talks to the batch scheduler.

Responsibilities reproduced from the paper (Section 2.2, 3.3 and Appendix A):

* hold the full budget of ``S`` simulations and their input parameters,
* submit client jobs to the scheduler while respecting the job limit ``m``
  (only a subset of all clients is ever submitted at once),
* report which simulations are *steerable*: the server must only replace the
  parameters of simulations whose ids are at least ``k + m`` where ``k`` is
  the highest simulation id already observed by the launcher — anything
  closer may already have been handed to the scheduler and could start at any
  moment,
* apply :meth:`update_parameters` requests coming from the server's steering
  mechanism and remember the provenance of every parameter vector (needed by
  the Figure 4 analysis).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.breed.samplers import ParameterSource
from repro.melissa.client import ClientFactory, SolverClient
from repro.melissa.scheduler import BatchScheduler
from repro.utils.logging import EventLog

__all__ = ["SimulationState", "SimulationRecord", "Launcher"]


class SimulationState(enum.Enum):
    """Lifecycle of one simulation in the launcher's ledger."""

    PENDING = "pending"        # not yet submitted to the scheduler: steerable
    SUBMITTED = "submitted"    # handed to the scheduler, waiting to start
    RUNNING = "running"        # client job producing time steps
    FINISHED = "finished"      # full trajectory streamed


@dataclass
class SimulationRecord:
    """Ledger entry of one simulation of the budget."""

    simulation_id: int
    parameters: np.ndarray
    source: str = ParameterSource.INITIAL_UNIFORM
    state: SimulationState = SimulationState.PENDING
    client: Optional[SolverClient] = None
    #: number of times steering replaced this simulation's parameters
    n_updates: int = 0
    #: history of (source, parameters) overwrites, most recent last
    history: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.parameters = np.asarray(self.parameters, dtype=np.float64).copy()


class Launcher:
    """Simulation-budget manager bridging the server and the batch scheduler."""

    def __init__(
        self,
        initial_parameters: np.ndarray,
        client_factory: ClientFactory,
        scheduler: BatchScheduler,
        event_log: Optional[EventLog] = None,
    ) -> None:
        parameters = np.atleast_2d(np.asarray(initial_parameters, dtype=np.float64))
        if parameters.shape[0] == 0:
            raise ValueError("the simulation budget must contain at least one simulation")
        self.records: Dict[int, SimulationRecord] = {
            sim_id: SimulationRecord(simulation_id=sim_id, parameters=row)
            for sim_id, row in enumerate(parameters)
        }
        self.client_factory = client_factory
        self.scheduler = scheduler
        self.event_log = event_log
        #: highest simulation id ever submitted to the scheduler (-1 before any)
        self.highest_submitted_id = -1
        #: submission order is by increasing simulation id, as in Melissa
        self._next_to_submit = 0

    # ---------------------------------------------------------------- sizes
    @property
    def budget(self) -> int:
        """Total number of simulations ``S``."""
        return len(self.records)

    @property
    def job_limit(self) -> int:
        """Maximum number of simultaneously running clients ``m``."""
        return self.scheduler.job_limit

    def count_state(self, state: SimulationState) -> int:
        return sum(1 for rec in self.records.values() if rec.state == state)

    @property
    def all_finished(self) -> bool:
        return all(rec.state == SimulationState.FINISHED for rec in self.records.values())

    # ------------------------------------------------------------ submission
    def submit_available(self) -> List[int]:
        """Submit pending simulations (in id order) while the scheduler queue
        plus running set stays within the job limit.

        Mirrors Melissa's behaviour of keeping the scheduler fed with at most
        ``m`` outstanding client jobs.
        """
        submitted: List[int] = []
        outstanding = self.scheduler.n_running + self.scheduler.n_queued
        while self._next_to_submit < self.budget and outstanding < self.job_limit:
            sim_id = self._next_to_submit
            record = self.records[sim_id]
            self.scheduler.submit(sim_id)
            record.state = SimulationState.SUBMITTED
            self.highest_submitted_id = max(self.highest_submitted_id, sim_id)
            submitted.append(sim_id)
            self._next_to_submit += 1
            outstanding += 1
            if self.event_log is not None:
                self.event_log.emit("launcher", "submitted", simulation_id=sim_id)
        return submitted

    def advance_scheduler(self) -> List[SolverClient]:
        """Advance the scheduler one tick; instantiate clients for started jobs."""
        started_clients: List[SolverClient] = []
        for sim_id in self.scheduler.advance():
            record = self.records[sim_id]
            record.state = SimulationState.RUNNING
            record.client = self.client_factory.create(sim_id, record.parameters)
            started_clients.append(record.client)
            if self.event_log is not None:
                self.event_log.emit("launcher", "started", simulation_id=sim_id)
        return started_clients

    def mark_finished(self, simulation_id: int) -> None:
        record = self.records[simulation_id]
        if record.state != SimulationState.RUNNING:
            raise ValueError(
                f"simulation {simulation_id} cannot finish from state {record.state}"
            )
        record.state = SimulationState.FINISHED
        self.scheduler.complete(simulation_id)
        if self.event_log is not None:
            self.event_log.emit("launcher", "finished", simulation_id=simulation_id)

    def running_clients(self) -> List[SolverClient]:
        return [
            rec.client
            for rec in self.records.values()
            if rec.state == SimulationState.RUNNING and rec.client is not None
        ]

    # -------------------------------------------------------------- steering
    def steerable_simulation_ids(self) -> List[int]:
        """Ids whose parameters may still be replaced (Section 3.3 rule).

        The server may only touch simulations at least ``m`` ids beyond the
        highest id it has observed from the launcher, i.e. ``id >= k + m``,
        *and* that are still pending.
        """
        threshold = self.highest_submitted_id + self.job_limit
        return sorted(
            sim_id
            for sim_id, rec in self.records.items()
            if rec.state == SimulationState.PENDING and sim_id >= threshold
        )

    def update_parameters(self, simulation_id: int, parameters: np.ndarray, source: str) -> None:
        """Apply a steering request to a pending simulation."""
        record = self.records[simulation_id]
        if record.state != SimulationState.PENDING:
            raise ValueError(
                f"simulation {simulation_id} is {record.state.value}; only pending simulations are steerable"
            )
        record.parameters = np.asarray(parameters, dtype=np.float64).copy()
        record.source = source
        record.n_updates += 1
        record.history.append(source)
        if self.event_log is not None:
            self.event_log.emit(
                "launcher", "parameters_updated", simulation_id=simulation_id, origin=source
            )

    # ---------------------------------------------------------------- state
    def state_dict(self) -> Dict[str, object]:
        """Ledger of every simulation, including running clients' progress."""
        return {
            "highest_submitted_id": self.highest_submitted_id,
            "next_to_submit": self._next_to_submit,
            "factory_created": list(self.client_factory.created),
            "records": [
                {
                    "simulation_id": record.simulation_id,
                    "parameters": record.parameters.copy(),
                    "source": record.source,
                    "state": record.state.value,
                    "n_updates": record.n_updates,
                    "history": list(record.history),
                    "client": None if record.client is None else record.client.state_dict(),
                }
                for record in self.records.values()
            ],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Rebuild the ledger; running clients are fast-forwarded in place."""
        records: Dict[int, SimulationRecord] = {}
        for payload in state["records"]:  # type: ignore[union-attr]
            record = SimulationRecord(
                simulation_id=int(payload["simulation_id"]),
                parameters=np.asarray(payload["parameters"], dtype=np.float64),
                source=str(payload["source"]),
                state=SimulationState(payload["state"]),
                n_updates=int(payload["n_updates"]),
                history=[str(item) for item in payload["history"]],
            )
            if payload["client"] is not None:
                client = self.client_factory.create(record.simulation_id, record.parameters)
                client.load_state_dict(payload["client"])
                record.client = client
            records[record.simulation_id] = record
        self.records = records
        self.highest_submitted_id = int(state["highest_submitted_id"])  # type: ignore[arg-type]
        self._next_to_submit = int(state["next_to_submit"])  # type: ignore[arg-type]
        # Rebuilding clients above appended to the factory log; restore it to
        # the snapshot's view so analysis counters stay faithful.
        self.client_factory.created = [int(i) for i in state["factory_created"]]  # type: ignore[union-attr]

    # -------------------------------------------------------------- analysis
    def executed_parameters(self) -> tuple[np.ndarray, List[str]]:
        """Parameters and provenance of every simulation, in id order.

        Includes pending simulations (their current parameters), which matches
        the paper's Figure 4 statistic of "800 input parameters" of a run.
        """
        ids = sorted(self.records)
        params = np.stack([self.records[i].parameters for i in ids], axis=0)
        sources = [self.records[i].source for i in ids]
        return params, sources

    def summary(self) -> Dict[str, int]:
        counts = {state.value: self.count_state(state) for state in SimulationState}
        counts["total"] = self.budget
        counts["overwrites"] = sum(rec.n_updates for rec in self.records.values())
        return counts
