"""Message types exchanged between clients, server and launcher.

In the real Melissa framework these are ZeroMQ messages; in the in-process
simulation they are plain dataclasses routed through
:class:`repro.melissa.transport.InProcessTransport`.  Keeping an explicit
message layer (rather than direct method calls) preserves the decoupling of
the original architecture and makes the streaming order visible to tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "Message",
    "TimeStepMessage",
    "SimulationStarted",
    "SimulationFinished",
    "ParameterUpdate",
    "StopClient",
]


@dataclass(frozen=True)
class Message:
    """Base class of every framework message."""

    #: id of the simulation the message refers to (None for broadcast/control)
    simulation_id: Optional[int] = None


@dataclass(frozen=True)
class TimeStepMessage(Message):
    """One solver time step streamed from a client to the server."""

    parameters: np.ndarray = field(default_factory=lambda: np.empty(0))
    timestep: int = 0
    payload: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", np.asarray(self.parameters, dtype=np.float64))
        object.__setattr__(self, "payload", np.asarray(self.payload, dtype=np.float64).reshape(-1))

    @property
    def nbytes(self) -> int:
        """Approximate message size (used by the framework-overhead bench)."""
        return int(self.payload.nbytes + self.parameters.nbytes + 16)


@dataclass(frozen=True)
class SimulationStarted(Message):
    """Emitted by the launcher when a client job starts running."""

    parameters: np.ndarray = field(default_factory=lambda: np.empty(0))

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", np.asarray(self.parameters, dtype=np.float64))


@dataclass(frozen=True)
class SimulationFinished(Message):
    """Emitted by a client after streaming its last time step."""

    n_timesteps: int = 0


@dataclass(frozen=True)
class ParameterUpdate(Message):
    """Steering request from the server to the launcher (Section 3.3)."""

    parameters: np.ndarray = field(default_factory=lambda: np.empty(0))
    source: str = "proposal"

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", np.asarray(self.parameters, dtype=np.float64))


@dataclass(frozen=True)
class StopClient(Message):
    """Control message asking a running client to stop (graceful shutdown)."""
