"""Span tracer writing append-only JSONL in Chrome trace-event form.

Each emitted line is one complete JSON object in the ``chrome://tracing``
event format (a *complete* event, ``"ph": "X"``, with microsecond ``ts`` /
``dur`` read from :func:`time.perf_counter` — monotonic, so spans never go
backwards across clock adjustments).  The file itself is newline-delimited
JSON rather than one big array so writers can only ever *append*: a crash
mid-run leaves every already-flushed span intact.  :func:`to_chrome` wraps a
JSONL file into the ``{"traceEvents": [...]}`` envelope the Chrome /
Perfetto viewers load directly.

Spans nest through a per-thread stack: ``Tracer.span`` is a context manager,
and child spans opened inside a parent are contained within the parent's
``ts``/``dur`` window, which is exactly how the viewers reconstruct the
hierarchy.  ``depth`` is exposed for tests and for instrumentation that
wants to skip deep nesting.

The hot path is engineered for the disabled-and-enabled cases both being
cheap: :data:`NULL_TRACER` reuses one no-op context manager, and an enabled
tracer formats events with plain f-strings (falling back to ``json.dumps``
only when a span carries ``args``), buffering lines and flushing in batches.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["NULL_TRACER", "NullTracer", "Tracer", "to_chrome"]

#: buffered events before an automatic flush
_FLUSH_EVERY = 512


class _NullSpan:
    """Reusable no-op context manager (one instance serves every call)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op."""

    enabled = False

    def span(self, name: str, cat: str = "repro", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "repro", **args: Any) -> None:
        pass

    @property
    def depth(self) -> int:
        return 0

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager recording one complete ("X") event on exit."""

    __slots__ = ("tracer", "name", "cat", "args", "start", "_stack")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_SpanContext":
        # The stack reference is cached so exit skips the thread-local lookup.
        stack = self.tracer._stack()
        stack.append(self.name)
        self._stack = stack
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        self._stack.pop()
        self.tracer._emit(self.name, self.cat, self.start, end - self.start, self.args)


class Tracer:
    """Append-only JSONL span writer for one process.

    Parameters
    ----------
    directory:
        Trace directory; this process appends to ``trace-<pid>.jsonl`` in it
        (one file per process keeps workers from interleaving writes).
    process_name:
        Human-readable label emitted as the standard ``process_name``
        metadata event, shown by the trace viewers.
    """

    enabled = True

    def __init__(self, directory: str | Path, process_name: str = "repro") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.pid = os.getpid()
        self.path = self.directory / f"trace-{self.pid}.jsonl"
        self._lock = threading.Lock()
        self._buffer: List[str] = []
        self._local = threading.local()
        # Event timestamps are microseconds relative to this epoch: relative
        # stamps keep files diffable and viewers happy with small numbers.
        self._epoch = time.perf_counter()
        self._buffer.append(
            json.dumps(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": self.pid,
                    "tid": 0,
                    "args": {"name": process_name},
                }
            )
        )

    # ------------------------------------------------------------- plumbing
    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def depth(self) -> int:
        """Nesting depth of the calling thread's open spans."""
        return len(self._stack())

    def _emit(
        self, name: str, cat: str, start: float, duration: float, args: Dict[str, Any]
    ) -> None:
        ts = (start - self._epoch) * 1e6
        dur = duration * 1e6
        tid = threading.get_ident() & 0x7FFFFFFF
        if args:
            line = json.dumps(
                {"name": name, "cat": cat, "ph": "X", "ts": round(ts, 3),
                 "dur": round(dur, 3), "pid": self.pid, "tid": tid, "args": args}
            )
        else:
            line = (
                f'{{"name":"{name}","cat":"{cat}","ph":"X","ts":{ts:.3f},'
                f'"dur":{dur:.3f},"pid":{self.pid},"tid":{tid}}}'
            )
        with self._lock:
            self._buffer.append(line)
            if len(self._buffer) >= _FLUSH_EVERY:
                self._flush_locked()

    # ------------------------------------------------------------------ API
    def span(self, name: str, cat: str = "repro", **args: Any) -> _SpanContext:
        """Context manager timing one span: ``with tracer.span("tick"): ...``."""
        return _SpanContext(self, name, cat, args)

    def instant(self, name: str, cat: str = "repro", **args: Any) -> None:
        """Record a zero-duration instant event (steering fired, run resumed…)."""
        ts = (time.perf_counter() - self._epoch) * 1e6
        tid = threading.get_ident() & 0x7FFFFFFF
        payload: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": "i", "ts": round(ts, 3),
            "pid": self.pid, "tid": tid, "s": "t",
        }
        if args:
            payload["args"] = args
        line = json.dumps(payload)
        with self._lock:
            self._buffer.append(line)
            if len(self._buffer) >= _FLUSH_EVERY:
                self._flush_locked()

    # ------------------------------------------------------------- flushing
    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        with self.path.open("a") as stream:
            stream.write("\n".join(self._buffer) + "\n")
        self._buffer.clear()

    def flush(self) -> None:
        """Write every buffered event to disk (append-only)."""
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        self.flush()


def to_chrome(jsonl_path: str | Path, out_path: Optional[str | Path] = None) -> Path:
    """Convert a JSONL trace file into a ``chrome://tracing`` loadable file.

    Reads ``trace-*.jsonl`` lines (tolerating a torn final line from a
    crashed writer) and writes ``{"traceEvents": [...]}``.  ``out_path``
    defaults to the input with a ``.json`` suffix.
    """
    jsonl_path = Path(jsonl_path)
    events = []
    for line in jsonl_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn tail of a crashed writer
    out = Path(out_path) if out_path is not None else jsonl_path.with_suffix(".json")
    out.write_text(json.dumps({"traceEvents": events}))
    return out
