"""``repro.telemetry`` — unified metrics + tracing across the whole stack.

One process-wide telemetry state feeds every layer: :class:`TrainingSession`
phases, solver stepping, reservoir ingest/draw, transport volume, executor
workers, checkpoint latency and the study service all instrument themselves
against :func:`metrics` and :func:`tracer`.  Both default to no-op null
objects — instrumentation stays inline in hot loops at negligible cost until
telemetry is switched on (see ``docs/OBSERVABILITY.md`` for the metric name
inventory, trace format and the measured ≤2 % overhead policy).

Switching on::

    from repro import telemetry
    telemetry.configure(metrics=True, trace_dir="results/trace")

or, equivalently, through the environment (read at import, which is how the
state propagates into executor worker processes)::

    REPRO_METRICS=1 REPRO_TRACE_DIR=results/trace python -m repro.cli …

or through the CLI flags ``--metrics`` / ``--trace DIR``.

The hard guarantee instrumented code must honour: telemetry observes, it
never participates.  Enabled or disabled, every run's outputs are
bit-identical — no RNG draws, no numeric feedback, nothing checkpointed.
"""

from __future__ import annotations

import atexit
import os
from typing import Dict, Optional, Union

from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_delta,
)
from repro.telemetry.tracing import NULL_TRACER, NullTracer, Tracer, to_chrome

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "configure",
    "counter_delta",
    "disable",
    "metrics",
    "metrics_enabled",
    "to_chrome",
    "tracer",
    "tracing_enabled",
]

#: environment switches (read at import so forked/spawned workers inherit)
METRICS_ENV = "REPRO_METRICS"
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

_NULL_REGISTRY: Optional[MetricsRegistry] = None  # sentinel: metrics off

_metrics: Optional[MetricsRegistry] = None
_tracer: Union[Tracer, NullTracer] = NULL_TRACER


def metrics() -> MetricsRegistry:
    """The process-wide registry (a fresh throwaway one while disabled).

    Instrumented components call this once at construction.  While metrics
    are disabled, each call returns a *new* empty registry whose families
    hand out real (but unobserved) series — cheap enough for construction
    paths; hot paths should cache the family and pay one float addition.
    """
    if _metrics is not None:
        return _metrics
    return MetricsRegistry()


def metrics_enabled() -> bool:
    """Whether a process-wide registry is collecting."""
    return _metrics is not None


def tracer() -> Union[Tracer, NullTracer]:
    """The process-wide tracer (the shared no-op instance while disabled)."""
    return _tracer


def tracing_enabled() -> bool:
    return _tracer.enabled


def configure(
    metrics: Optional[bool] = None,
    trace_dir: Optional[Union[str, os.PathLike]] = None,
    registry: Optional[MetricsRegistry] = None,
    export_env: bool = True,
    process_name: str = "repro",
) -> None:
    """Set the process-wide telemetry state.

    Parameters
    ----------
    metrics:
        ``True`` installs a fresh :class:`MetricsRegistry` (or ``registry``
        when given); ``False`` disables collection; ``None`` leaves the
        current state untouched.
    trace_dir:
        Directory for JSONL trace files; installs a :class:`Tracer` writing
        ``trace-<pid>.jsonl`` there.  ``None`` leaves tracing untouched.
    registry:
        Optional pre-built registry to install (implies ``metrics=True``).
    export_env:
        Mirror the state into :data:`METRICS_ENV` / :data:`TRACE_DIR_ENV` so
        executor worker processes (fork *and* spawn start methods) configure
        themselves identically at import.
    process_name:
        Label stamped into new trace files.
    """
    global _metrics, _tracer
    if registry is not None:
        _metrics = registry
        if export_env:
            os.environ[METRICS_ENV] = "1"
    elif metrics is True:
        _metrics = MetricsRegistry()
        if export_env:
            os.environ[METRICS_ENV] = "1"
    elif metrics is False:
        _metrics = None
        if export_env:
            os.environ.pop(METRICS_ENV, None)
    if trace_dir is not None:
        _tracer.close()
        _tracer = Tracer(trace_dir, process_name=process_name)
        if export_env:
            os.environ[TRACE_DIR_ENV] = str(trace_dir)


def disable(export_env: bool = True) -> None:
    """Reset telemetry to the no-op state (flushes any open trace file)."""
    global _metrics, _tracer
    _metrics = None
    _tracer.close()
    _tracer = NULL_TRACER
    if export_env:
        os.environ.pop(METRICS_ENV, None)
        os.environ.pop(TRACE_DIR_ENV, None)


def worker_env() -> Dict[str, str]:
    """The environment mirror of the current state (for explicit propagation)."""
    env: Dict[str, str] = {}
    if metrics_enabled():
        env[METRICS_ENV] = "1"
    if _tracer.enabled:
        env[TRACE_DIR_ENV] = str(_tracer.directory)  # type: ignore[union-attr]
    return env


def _configure_from_env() -> None:
    """Adopt the environment switches (runs once at import)."""
    enable_metrics = os.environ.get(METRICS_ENV, "") not in ("", "0")
    trace_dir = os.environ.get(TRACE_DIR_ENV) or None
    if enable_metrics or trace_dir:
        configure(
            metrics=True if enable_metrics else None,
            trace_dir=trace_dir,
            export_env=False,
        )


_configure_from_env()
atexit.register(lambda: _tracer.close())
