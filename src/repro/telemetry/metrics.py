"""Label-keyed counters, gauges and histograms with Prometheus exposition.

The registry is deliberately tiny and dependency-free: a *family* is created
once (``registry.counter("repro_reservoir_ingest_total")``) and cached by the
instrumented component, then updated through plain attribute arithmetic on
the hot path.  Families can be split into label-keyed series
(``family.labels(channel="data")``), which are cached too — the per-event
cost of an enabled counter is one float addition.

When telemetry is disabled the module-level :data:`NULL_COUNTER` /
:data:`NULL_GAUGE` / :data:`NULL_HISTOGRAM` singletons stand in for every
series: their update methods are empty, so instrumentation can stay inline
in hot loops without measurable cost (see ``docs/OBSERVABILITY.md`` for the
measured overhead policy).

Rendering follows the Prometheus text exposition format (version 0.0.4):
``# HELP`` / ``# TYPE`` headers per family, one ``name{labels} value`` line
per series, ``_bucket``/``_sum``/``_count`` triples for histograms.

Telemetry is *observation*, never state: nothing in this module is
checkpointed, and enabling or disabling it must leave every run output
bit-identical (no RNG draws, no numeric reuse).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]

#: default histogram bucket upper bounds (seconds-oriented, latency-shaped)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)


def _format_value(value: float) -> str:
    """Prometheus-style number: integers without a trailing ``.0``."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class _NullSeries:
    """Shared no-op stand-in for every series kind when telemetry is off."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, **labels: object) -> "_NullSeries":
        return self


NULL_COUNTER = _NullSeries()
NULL_GAUGE = NULL_COUNTER
NULL_HISTOGRAM = NULL_COUNTER


class _Series:
    """One (family, label-set) time series holding a single float."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = float(value)


class _Family:
    """Base of one named metric family: default series + label children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = name
        self.help = help
        self._default = self._new_series()
        self._children: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def _new_series(self) -> object:
        return _Series()

    def labels(self, **labels: object):
        """The child series keyed by ``labels`` (created on first use)."""
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_series()
        return child

    def _series_items(self) -> List[Tuple[Tuple[Tuple[str, str], ...], object]]:
        items: List[Tuple[Tuple[Tuple[str, str], ...], object]] = []
        default = self._default
        if self._touched(default):
            items.append(((), default))
        for key in sorted(self._children):
            items.append((key, self._children[key]))
        return items

    @staticmethod
    def _touched(series: object) -> bool:
        return bool(getattr(series, "value", 0.0))

    # ------------------------------------------------------------ rendering
    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for labels, series in self._series_items():
            lines.append(
                f"{self.name}{_label_suffix(labels)} {_format_value(series.value)}"  # type: ignore[attr-defined]
            )
        return lines

    def values(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` mapping over every touched series."""
        return {
            f"{self.name}{_label_suffix(labels)}": float(series.value)  # type: ignore[attr-defined]
            for labels, series in self._series_items()
        }


class Counter(_Family):
    """Monotonically increasing family (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._default.value += amount  # type: ignore[attr-defined]


class Gauge(_Family):
    """Set-to-current-value family (queue depths, uptimes, pool sizes)."""

    kind = "gauge"

    def set(self, value: float) -> None:
        self._default.set(value)  # type: ignore[attr-defined]

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)  # type: ignore[attr-defined]

    @staticmethod
    def _touched(series: object) -> bool:
        # A gauge explicitly set to 0.0 is still meaningful; render always.
        return True


class _HistogramSeries:
    """Bucketed observation series (cumulative counts + sum)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]) -> None:
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def value(self) -> float:  # uniform "touched" probe with _Series
        return float(self.count)


class Histogram(_Family):
    """Latency/size distribution family (checkpoint save/restore spans)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS  # noqa: A002
    ) -> None:
        self.buckets = tuple(buckets)
        super().__init__(name, help)

    def _new_series(self) -> object:
        return _HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)  # type: ignore[attr-defined]

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for labels, series in self._series_items():
            assert isinstance(series, _HistogramSeries)
            cumulative = 0
            for bound, count in zip(series.buckets, series.counts):
                cumulative += count
                le = (("le", _format_value(bound)),)
                lines.append(
                    f"{self.name}_bucket{_label_suffix(labels + le)} {cumulative}"
                )
            cumulative += series.counts[-1]
            inf = (("le", "+Inf"),)
            lines.append(f"{self.name}_bucket{_label_suffix(labels + inf)} {cumulative}")
            lines.append(f"{self.name}_sum{_label_suffix(labels)} {_format_value(series.sum)}")
            lines.append(f"{self.name}_count{_label_suffix(labels)} {series.count}")
        return lines

    def values(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for labels, series in self._series_items():
            assert isinstance(series, _HistogramSeries)
            out[f"{self.name}_count{_label_suffix(labels)}"] = float(series.count)
            out[f"{self.name}_sum{_label_suffix(labels)}"] = float(series.sum)
        return out


class MetricsRegistry:
    """Named collection of metric families (the process-wide telemetry hub).

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumented
    components call them once at construction and cache the returned family
    (or a ``labels(...)`` child), so the hot path never touches the registry.
    Re-registering a name with a different kind raises — two components
    silently sharing one series under different semantics would corrupt both.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ----------------------------------------------------------- factories
    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Family:  # noqa: A002
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = cls(name, help, **kwargs)
            elif not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} is already registered as {family.kind}, "
                    f"requested {cls.kind}"
                )
            return family

    def counter(self, name: str, help: str = "") -> Counter:  # noqa: A002
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:  # noqa: A002
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS  # noqa: A002
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    # ------------------------------------------------------------- reading
    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def counter_values(self) -> Dict[str, float]:
        """Flat snapshot of every touched *counter* series.

        Counters are the deterministic, delta-able subset of the registry —
        :func:`counter_delta` over two snapshots attributes increments to one
        run, which is how per-run telemetry reaches
        :attr:`repro.workflow.results.RunResult.telemetry`.
        """
        out: Dict[str, float] = {}
        for family in self.families():
            if isinstance(family, Counter):
                out.update(family.values())
        return out

    def values(self) -> Dict[str, float]:
        """Flat snapshot of every touched series of every kind."""
        out: Dict[str, float] = {}
        for family in self.families():
            out.update(family.values())
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")


def counter_delta(
    before: Dict[str, float], after: Dict[str, float], keys: Optional[Iterable[str]] = None
) -> Dict[str, float]:
    """Per-series increments between two :meth:`~MetricsRegistry.counter_values`.

    Series absent from ``before`` count from zero; zero deltas are dropped so
    per-run payloads stay small.
    """
    selected = after if keys is None else {k: after[k] for k in keys if k in after}
    out: Dict[str, float] = {}
    for key, value in selected.items():
        delta = value - before.get(key, 0.0)
        if delta:
            out[key] = delta
    return out
