"""``repro.bench`` — the performance-regression harness.

The subsystem turns "is it fast?" into a testable contract: a registry of
named, deterministic benchmark scenarios covering every measured hot path
(solver stepping for all workloads, NN forward/backward/optimizer, reservoir
ingest/draw, checkpoint save/restore, end-to-end sessions, study
throughput), a runner with warmup/repeat control emitting schema-versioned
``BENCH_*.json`` reports, and a comparer with a configurable
percent-slowdown threshold whose non-zero exit code CI jobs can gate on.

Typical use::

    python -m repro.cli bench --out BENCH.json
    python -m repro.cli bench --group nn --compare BENCH.json --threshold 10

or programmatically::

    from repro.bench import run_scenarios, compare_reports

    report = run_scenarios(groups=["reservoir"])
    comparison = compare_reports(baseline_report, report, threshold_pct=10.0)
    assert not comparison.has_regressions

See ``docs/PERFORMANCE.md`` for the measured hot-path inventory and the
regression-threshold policy, and ``docs/BENCHMARKS.md`` for authoring new
scenarios.
"""

from repro.bench.compare import (
    DEFAULT_THRESHOLD_PCT,
    REGRESSION_EXIT_CODE,
    Comparison,
    ScenarioDelta,
    compare_reports,
    format_comparison,
)
from repro.bench.registry import (
    BenchScenario,
    ScenarioRun,
    get_scenario,
    register_scenario,
    scenario_groups,
    scenario_names,
    select_scenarios,
)
from repro.bench.runner import (
    env_fingerprint,
    load_report,
    run_scenario,
    run_scenarios,
    write_report,
)
from repro.bench.schema import BENCH_SCHEMA_VERSION, BenchSchemaError, validate_report

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_THRESHOLD_PCT",
    "REGRESSION_EXIT_CODE",
    "BenchSchemaError",
    "BenchScenario",
    "Comparison",
    "ScenarioDelta",
    "ScenarioRun",
    "compare_reports",
    "env_fingerprint",
    "format_comparison",
    "get_scenario",
    "load_report",
    "register_scenario",
    "run_scenario",
    "run_scenarios",
    "scenario_groups",
    "scenario_names",
    "select_scenarios",
    "validate_report",
    "write_report",
]
