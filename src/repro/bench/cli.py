"""``repro bench`` — the CLI face of the benchmark harness.

Dispatched by :func:`repro.cli.main` so the one entry point covers
experiments *and* performance measurement::

    python -m repro.cli bench --list-scenarios
    python -m repro.cli bench --out BENCH_pr5.json
    python -m repro.cli bench --group nn --group reservoir --repeats 5
    python -m repro.cli bench --compare benchmarks/baselines/BENCH_pr5.json

With ``--compare`` the exit code is :data:`repro.bench.compare.REGRESSION_EXIT_CODE`
when any scenario is slower than ``--threshold`` percent — wire it straight
into CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.compare import (
    DEFAULT_THRESHOLD_PCT,
    REGRESSION_EXIT_CODE,
    compare_reports,
    format_comparison,
)
from repro.bench.registry import select_scenarios
from repro.bench.runner import load_report, run_scenarios, write_report

__all__ = ["build_bench_parser", "bench_main"]


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run registered benchmark scenarios and write/compare BENCH JSON reports.",
    )
    parser.add_argument("--list-scenarios", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--scenario", action="append", default=None, metavar="NAME",
                        help="run this scenario (repeatable; default: all)")
    parser.add_argument("--group", action="append", default=None, metavar="GROUP",
                        help="run every scenario of this group (repeatable)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timed repetitions per scenario (default: 3; best-of is reported)")
    parser.add_argument("--warmup", type=int, default=1, metavar="N",
                        help="untimed warmup calls per scenario (default: 1)")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the schema-versioned report JSON here")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="baseline report JSON; print percent deltas and gate on --threshold")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD_PCT, metavar="PCT",
                        help="allowed percent slowdown before a scenario counts as a "
                             f"regression (default: {DEFAULT_THRESHOLD_PCT:g})")
    return parser


def _list_scenarios() -> str:
    from repro.analysis.report import format_table

    rows = [
        (scenario.name, scenario.units, scenario.description)
        for scenario in select_scenarios()
    ]
    return format_table(["scenario", "units", "description"], rows)


def bench_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``bench`` subcommand; returns the process exit code."""
    args = build_bench_parser().parse_args(argv)
    if args.list_scenarios:
        print(_list_scenarios())
        return 0
    try:
        report = run_scenarios(
            names=args.scenario,
            groups=args.group,
            repeats=args.repeats,
            warmup=args.warmup,
            progress=lambda line: print(line, file=sys.stderr),
        )
    except KeyError as error:
        print(f"repro bench: {error.args[0]}", file=sys.stderr)
        return 2
    if args.out:
        path = write_report(report, args.out)
        print(f"wrote {path}")
    if args.compare:
        comparison = compare_reports(
            load_report(args.compare), report, threshold_pct=args.threshold
        )
        print(format_comparison(comparison, baseline_label=args.compare))
        if comparison.has_regressions:
            return REGRESSION_EXIT_CODE
    return 0
