"""Built-in benchmark scenarios covering every measured hot path.

Importing this module registers the scenarios (see
:mod:`repro.bench.registry`); nothing here runs at import time.  The groups:

* ``solver/*`` — per-workload trajectory stepping for all registered
  workloads (plus the explicit heat2d stencil, whose fused step is a
  measured optimisation target),
* ``nn/*`` — surrogate forward, forward+backward+Adam training step, the
  bare optimizer update, the conv-surrogate forward, and the tape-overhead
  A/B probe (``nn/tape_overhead`` re-runs the training step under an
  explicit ``Tape`` recording when ``REPRO_TAPE_EXPLICIT=1``, so
  ``--compare`` between a dark and an enabled report bounds the cost of
  graph recording),
* ``reservoir/*`` — buffer ingest (with eviction) and batch draws,
* ``checkpoint/*`` — full-session snapshot save and restore,
* ``session/*`` — a small end-to-end on-line training run,
* ``telemetry/*`` — the same session body with metrics + tracing fully
  enabled, so ``--compare`` against ``session/online_smoke`` bounds the
  observability overhead,
* ``study/*`` — tiny study throughput through the serial, process and
  shared-memory executor backends, plus validation-heavy throughput and
  worker-scaling comparisons of the parallel backends,
* ``service/*`` — HTTP round-trips against a live study service (submit,
  poll progress, wait for completion),
* ``campaign/*`` — DAG-of-studies orchestration overhead over a pre-warmed
  artifact cache (scheduling + manifest + cache splice, zero runs executed).

Scenario workloads are deterministic (fixed seeds, fixed work per call) so
two reports from the same machine measure the same computation.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.registry import ScenarioRun, register_scenario

# --------------------------------------------------------------------- helpers


def _bench_workloads():
    from repro.api.registry import workload_names

    return workload_names()


def _build_workload(name: str):
    from repro.experiments.base import base_config

    return base_config("smoke", workload=name).build_workload()


def _trajectory_parameters(bounds, n: int) -> np.ndarray:
    """``n`` deterministic parameter vectors spread inside the bounds box."""
    low, high = bounds.low_array, bounds.high_array
    fractions = np.linspace(0.25, 0.75, n)[:, None]
    return low[None, :] + fractions * (high - low)[None, :]


def _tiny_session_config(seed: int = 0, **overrides):
    from repro.experiments.base import base_config

    config = base_config("smoke", method="breed", seed=seed)
    fields = dict(
        n_simulations=16,
        max_iterations=60,
        n_validation_trajectories=2,
        hidden_size=16,
        n_hidden_layers=1,
    )
    fields.update(overrides)
    return dataclasses.replace(config, **fields)


def _solver_scenario(workload_name: str, n_trajectories: int = 24) -> ScenarioRun:
    workload = _build_workload(workload_name)
    solver = workload.build_solver()
    vectors = _trajectory_parameters(workload.bounds, n_trajectories)

    def fn() -> int:
        steps = 0
        for params in vectors:
            for _ in solver.steps(params):
                steps += 1
        return steps

    return ScenarioRun(fn=fn)


def _register_solver_scenarios() -> None:
    for name in _bench_workloads():
        register_scenario(
            f"solver/{name}",
            units="steps",
            description=f"full-trajectory stepping of the {name!r} workload solver (smoke scale)",
        )(lambda name=name: _solver_scenario(name))


_register_solver_scenarios()


@register_scenario(
    "solver/heat2d_explicit",
    units="steps",
    description="explicit (sub-cycled) 2-D heat stencil — the fused-step optimisation target",
)
def _heat2d_explicit() -> ScenarioRun:
    from repro.solvers.heat2d import Heat2DConfig, Heat2DExplicitSolver

    solver = Heat2DExplicitSolver(Heat2DConfig(grid_size=48, n_timesteps=20))
    params = np.array([250.0, 100.0, 200.0, 300.0, 400.0])

    def fn() -> int:
        steps = 0
        for _ in solver.steps(params):
            steps += 1
        return steps * solver.substeps

    return ScenarioRun(fn=fn)


# ------------------------------------------------------------------------- nn


def _surrogate(hidden: int = 64, layers: int = 3):
    from repro.api.workloads import Heat2DWorkload
    from repro.solvers.heat2d import Heat2DConfig
    from repro.surrogate.model import DirectSurrogate

    rng = np.random.default_rng(0)
    workload = Heat2DWorkload(heat=Heat2DConfig(grid_size=64, n_timesteps=100))
    model = DirectSurrogate(
        workload.surrogate_config(hidden_size=hidden, n_hidden_layers=layers, activation="relu"),
        workload.build_scalers(),
        rng=rng,
    )
    inputs = rng.random((128, 6))
    targets = rng.random((128, 64 * 64))
    return model, inputs, targets


@register_scenario(
    "nn/forward",
    units="samples",
    description="surrogate MLP forward pass (H=64, L=3, batch 128, output 4096)",
)
def _nn_forward() -> ScenarioRun:
    from repro import nn
    from repro.nn.tensor import Tensor

    model, inputs, _ = _surrogate()
    x = Tensor(inputs)
    inner = 20

    def fn() -> int:
        with nn.no_grad():
            for _ in range(inner):
                model(x)
        return inner * 128

    return ScenarioRun(fn=fn)


@register_scenario(
    "nn/train_step",
    units="batches",
    description="full training step: forward + backward + Adam (H=64, L=3, batch 128)",
)
def _nn_train_step() -> ScenarioRun:
    from repro import nn
    from repro.nn.tensor import Tensor

    model, inputs, targets = _surrogate()
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    x, y = Tensor(inputs), Tensor(targets)
    inner = 10

    def fn() -> int:
        for _ in range(inner):
            model.zero_grad()
            loss = nn.functional.per_sample_mse(model(x), y).mean()
            loss.backward()
            optimizer.step()
        return inner

    return ScenarioRun(fn=fn)


@register_scenario(
    "nn/optimizer_step",
    units="steps",
    description="bare Adam update over the surrogate parameter set (grads pre-filled)",
)
def _nn_optimizer_step() -> ScenarioRun:
    from repro import nn

    model, _, _ = _surrogate()
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(1)
    for param in model.parameters():
        param.grad = rng.standard_normal(param.shape)
    inner = 50

    def fn() -> int:
        for _ in range(inner):
            optimizer.step()
        return inner

    return ScenarioRun(fn=fn)


@register_scenario(
    "nn/tape_overhead",
    units="batches",
    description="nn/train_step body; REPRO_TAPE_EXPLICIT=1 wraps each step in an explicit Tape "
                "(A/B probe bounding the graph-recording overhead)",
)
def _nn_tape_overhead() -> ScenarioRun:
    import os

    from repro import nn
    from repro.nn.tensor import Tape, Tensor

    explicit = os.environ.get("REPRO_TAPE_EXPLICIT", "") not in ("", "0")
    model, inputs, targets = _surrogate()
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    x, y = Tensor(inputs), Tensor(targets)
    inner = 10

    def step() -> None:
        model.zero_grad()
        loss = nn.functional.per_sample_mse(model(x), y).mean()
        loss.backward()
        optimizer.step()

    def fn() -> int:
        if explicit:
            for _ in range(inner):
                with Tape():
                    step()
        else:
            for _ in range(inner):
                step()
        return inner

    return ScenarioRun(fn=fn)


@register_scenario(
    "nn/conv_forward",
    units="samples",
    description="conv2d surrogate forward pass (8 channels, L=2, batch 64, 32x32 grid)",
)
def _nn_conv_forward() -> ScenarioRun:
    from repro import nn
    from repro.nn.tensor import Tensor
    from repro.surrogate.model import SurrogateConfig, build_surrogate

    rng = np.random.default_rng(0)
    config = SurrogateConfig(
        input_dim=6,
        output_dim=32 * 32,
        hidden_size=8,
        n_hidden_layers=2,
        architecture="conv2d",
    )
    model = build_surrogate(config, rng=rng)
    x = Tensor(rng.random((64, 6)))
    inner = 5

    def fn() -> int:
        with nn.no_grad():
            for _ in range(inner):
                model(x)
        return inner * 64

    return ScenarioRun(fn=fn)


# ------------------------------------------------------------------ reservoir


def _reservoir(capacity: int = 512, watermark: int = 32, y_dim: int = 64):
    from repro.melissa.reservoir import Reservoir

    rng = np.random.default_rng(2)
    reservoir = Reservoir(capacity=capacity, watermark=watermark, rng=rng)
    payload_rng = np.random.default_rng(3)
    xs = payload_rng.random((capacity, 6))
    ys = payload_rng.random((capacity, y_dim))
    return reservoir, xs, ys


@register_scenario(
    "reservoir/ingest",
    units="samples",
    description="reservoir put() throughput incl. eviction (capacity 512, interleaved draws)",
)
def _reservoir_ingest() -> ScenarioRun:
    reservoir, xs, ys = _reservoir()
    n_puts = 2000

    def fn() -> int:
        for i in range(n_puts):
            reservoir.put(i % 512, i % 101, xs[i % 512], ys[i % 512])
            if i % 16 == 15:
                reservoir.sample_batch(32)
        return n_puts

    return ScenarioRun(fn=fn)


@register_scenario(
    "reservoir/draw",
    units="batches",
    description="reservoir batch draws from a full buffer (capacity 512, batch 64)",
)
def _reservoir_draw() -> ScenarioRun:
    reservoir, xs, ys = _reservoir()
    for i in range(512):
        reservoir.put(i, i % 101, xs[i], ys[i])
    inner = 200

    def fn() -> int:
        for _ in range(inner):
            reservoir.sample_batch(64)
        return inner

    return ScenarioRun(fn=fn)


# ----------------------------------------------------------------- checkpoint


@register_scenario(
    "checkpoint/save",
    units="snapshots",
    description="full-session snapshot save (tiny mid-run session, uncompressed)",
)
def _checkpoint_save() -> ScenarioRun:
    from repro.api.session import TrainingSession
    from repro.checkpoint import save_session

    session = TrainingSession(_tiny_session_config())
    while session.server.iteration < 20 and session.tick():
        pass
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-save-"))
    counter = [0]
    inner = 5

    def fn() -> int:
        for _ in range(inner):
            counter[0] += 1
            save_session(session, tmp / f"snap-{counter[0]}")
        return inner

    return ScenarioRun(fn=fn, cleanup=lambda: shutil.rmtree(tmp, ignore_errors=True))


@register_scenario(
    "checkpoint/restore",
    units="restores",
    description="full-session snapshot restore incl. session rebuild (tiny session)",
)
def _checkpoint_restore() -> ScenarioRun:
    from repro.api.session import TrainingSession
    from repro.checkpoint import restore_session, save_session

    config = _tiny_session_config()
    session = TrainingSession(config)
    while session.server.iteration < 20 and session.tick():
        pass
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-restore-"))
    snapshot = save_session(session, tmp)
    inner = 3

    def fn() -> int:
        for _ in range(inner):
            restore_session(snapshot, config)
        return inner

    return ScenarioRun(fn=fn, cleanup=lambda: shutil.rmtree(tmp, ignore_errors=True))


# -------------------------------------------------------------------- session


@register_scenario(
    "session/online_smoke",
    units="iterations",
    description="end-to-end on-line training session (16 sims, 60 iterations, breed)",
)
def _session_online() -> ScenarioRun:
    from repro.api.session import TrainingSession

    config = _tiny_session_config()

    def fn() -> int:
        result = TrainingSession(config).run()
        return int(result.server_summary["iterations"])

    return ScenarioRun(fn=fn)


# ---------------------------------------------------------------- telemetry


@register_scenario(
    "telemetry/overhead",
    units="iterations",
    description="session/online_smoke body with metrics + tracing fully enabled (overhead probe)",
)
def _telemetry_overhead() -> ScenarioRun:
    from repro import telemetry
    from repro.api.session import TrainingSession

    config = _tiny_session_config()
    trace_dir = Path(tempfile.mkdtemp(prefix="repro-bench-trace-"))
    already_on = telemetry.metrics_enabled() or telemetry.tracing_enabled()
    telemetry.configure(metrics=True, trace_dir=str(trace_dir), process_name="bench telemetry/overhead")

    def fn() -> int:
        result = TrainingSession(config).run()
        return int(result.server_summary["iterations"])

    def cleanup() -> None:
        if not already_on:
            telemetry.disable()
        shutil.rmtree(trace_dir, ignore_errors=True)

    return ScenarioRun(fn=fn, cleanup=cleanup)


# ---------------------------------------------------------------------- study


def _study_scenario(backend: str) -> ScenarioRun:
    from repro.workflow.study import StudyRunner

    config = _tiny_session_config(max_iterations=40)
    configurations = [{"method": "breed"}, {"method": "random"}]

    def fn() -> int:
        runner = StudyRunner(
            base_config=config,
            study_name=f"bench-{backend}",
            backend=backend,
            max_workers=2,
        )
        results = runner.run_all(configurations, name_key="method")
        return int(results.timing_summary()["runs"])

    return ScenarioRun(fn=fn)


@register_scenario(
    "study/serial",
    units="runs",
    description="tiny 2-run study through the serial executor backend",
)
def _study_serial() -> ScenarioRun:
    return _study_scenario("serial")


@register_scenario(
    "study/process",
    units="runs",
    description="tiny 2-run study through the process-pool executor backend",
)
def _study_process() -> ScenarioRun:
    return _study_scenario("process")


@register_scenario(
    "study/shm",
    units="runs",
    description="tiny 2-run study through the shared-memory executor backend",
)
def _study_shm() -> ScenarioRun:
    return _study_scenario("shm")


def _study_throughput_scenario(backend: str, max_workers: int, n_runs: int = 8) -> ScenarioRun:
    """Validation-heavy study throughput of one parallel backend.

    The scenario is built so the dominant study input — the fixed validation
    set, 256 full solver trajectories — dwarfs any single run: that is exactly
    the input the process backend rebuilds once *per worker* while the shm
    backend builds it once in the parent and shares it zero-copy, so the
    runs/s gap between ``study/process_throughput`` and
    ``study/shm_throughput`` is the measured value of zero-copy input
    sharing.
    """
    from repro.workflow.study import StudyRunner

    config = _tiny_session_config(
        n_simulations=8,
        max_iterations=30,
        n_validation_trajectories=256,
    )
    configurations = [{"seed": seed} for seed in range(n_runs)]

    def fn() -> int:
        runner = StudyRunner(
            base_config=config,
            study_name=f"bench-{backend}-tp{max_workers}",
            backend=backend,
            max_workers=max_workers,
        )
        return len(runner.run_all(configurations))

    return ScenarioRun(fn=fn)


@register_scenario(
    "study/process_throughput",
    units="runs",
    description="validation-heavy 8-run study, process backend, 4 workers",
)
def _study_process_throughput() -> ScenarioRun:
    return _study_throughput_scenario("process", max_workers=4)


@register_scenario(
    "study/shm_throughput",
    units="runs",
    description="validation-heavy 8-run study, shm backend, 4 workers",
)
def _study_shm_throughput() -> ScenarioRun:
    return _study_throughput_scenario("shm", max_workers=4)


@register_scenario(
    "study/shm_workers1",
    units="runs",
    description="validation-heavy 8-run study, shm backend, 1 worker (scaling base)",
)
def _study_shm_workers1() -> ScenarioRun:
    return _study_throughput_scenario("shm", max_workers=1)


@register_scenario(
    "study/shm_workers2",
    units="runs",
    description="validation-heavy 8-run study, shm backend, 2 workers",
)
def _study_shm_workers2() -> ScenarioRun:
    return _study_throughput_scenario("shm", max_workers=2)


# -------------------------------------------------------------------- service


@register_scenario(
    "service/submit_roundtrip",
    units="requests",
    description="HTTP submit -> first progress event -> completed job against a live service",
)
def _service_submit_roundtrip() -> ScenarioRun:
    from repro.service import ServiceClient, StudyService

    root = Path(tempfile.mkdtemp(prefix="repro-bench-service-"))
    service = StudyService(root, port=0, n_workers=1, checkpoint_every=0).start()
    client = ServiceClient(service.url, timeout=60.0)
    config = _tiny_session_config(max_iterations=40).to_dict()
    # each call submits a distinct single-run study (the seed changes), so
    # dedupe never short-circuits the measured path
    seed_counter = iter(range(10_000))

    def fn() -> int:
        seed = next(seed_counter)
        job = client.submit(
            "bench-service",
            dict(config, seed=seed),
            configurations=[{}],
        )
        requests = 1
        events = client.events(job["id"])
        requests += 1
        record = client.wait(job["id"], timeout=120.0, poll_seconds=0.05)
        requests += 1  # wait()'s final poll observed the terminal state
        if record["state"] != "done":
            raise RuntimeError(f"bench job ended {record['state']!r}: {record['error']}")
        assert events is not None
        return requests

    def cleanup() -> None:
        service.stop()
        shutil.rmtree(root, ignore_errors=True)

    return ScenarioRun(fn=fn, cleanup=cleanup)


# ------------------------------------------------------------------ campaign


@register_scenario(
    "campaign/cache_hit",
    units="runs",
    description="DAG orchestration over a pre-warmed artifact cache (zero runs executed)",
)
def _campaign_cache_hit() -> ScenarioRun:
    """Pure campaign overhead: scheduling, manifest, cache splice — no training.

    Setup executes a tiny two-node campaign once to warm its artifact cache;
    each timed call replays the identical campaign over a fresh root seeded
    with a *copy* of that cache, so every run resolves through the
    cache-splice path (``runs_executed`` must stay 0).  The measured quantity
    is therefore the fixed per-run cost the campaign layer adds on top of
    the study engine — the number that should stay flat as campaigns grow.
    """
    from repro.campaign import CampaignRunner, CampaignSpec

    base = _tiny_session_config(max_iterations=20, n_simulations=4).to_dict()
    payload = {
        "name": "bench",
        "config": base,
        "nodes": [
            {"name": "a", "configurations": [{"sigma": 0.1}, {"sigma": 0.3}]},
            {"name": "b", "depends_on": ["a"], "configurations": [{"sigma": 0.1}]},
        ],
    }
    spec = CampaignSpec.from_dict(payload)
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-campaign-"))
    warm = CampaignRunner(spec, tmp / "warm").run()
    if not warm.ok:  # pragma: no cover - setup failure is a bench bug
        raise RuntimeError(f"cache warm-up failed: {warm.states}")
    counter = [0]

    def fn() -> int:
        counter[0] += 1
        root = tmp / f"replay-{counter[0]}"
        shutil.copytree(tmp / "warm" / "cache", root / "cache")
        outcome = CampaignRunner(spec, root).run()
        if outcome.runs_executed or outcome.cache_hits != 3:
            raise RuntimeError(
                f"expected a pure cache replay, executed={outcome.runs_executed} "
                f"hits={outcome.cache_hits}"
            )
        shutil.rmtree(root, ignore_errors=True)
        return outcome.cache_hits

    return ScenarioRun(fn=fn, cleanup=lambda: shutil.rmtree(tmp, ignore_errors=True))
