"""Schema of the machine-readable benchmark report (``BENCH_*.json``).

A report is one JSON document written by :func:`repro.bench.runner.run_scenarios`
and consumed by :mod:`repro.bench.compare` and CI.  The schema is versioned so
that a comparison between reports emitted by different revisions of the
harness fails *loudly* instead of silently comparing incompatible numbers.

The validator is hand-rolled (no ``jsonschema`` dependency): it checks the
exact structure the compare path relies on and raises
:class:`BenchSchemaError` naming the offending path.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["BENCH_SCHEMA_VERSION", "BenchSchemaError", "validate_report"]

#: bump on any structural change to the report document
BENCH_SCHEMA_VERSION = 1

#: required top-level keys and their types
_TOP_LEVEL = {
    "schema_version": int,
    "created_unix": (int, float),
    "env": dict,
    "settings": dict,
    "results": list,
}

#: required keys of every entry in ``results`` and their types
_RESULT_KEYS = {
    "name": str,
    "group": str,
    "units": str,
    "n_units": (int, float),
    "repeats": int,
    "warmup": int,
    "wall_times": list,
    "best_seconds": (int, float),
    "mean_seconds": (int, float),
    "units_per_second": (int, float),
}

#: required keys of the environment fingerprint
_ENV_KEYS = ("python", "numpy", "scipy", "platform", "machine", "cpu_count")


class BenchSchemaError(ValueError):
    """A benchmark report does not match :data:`BENCH_SCHEMA_VERSION`."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(message)


def validate_report(report: Any) -> Dict[str, Any]:
    """Validate ``report`` against the current schema; return it unchanged.

    Raises
    ------
    BenchSchemaError
        On any missing key, wrong type, wrong schema version, duplicate
        scenario name, or non-positive timing.  The message names the
        offending JSON path.
    """
    _require(isinstance(report, dict), "report must be a JSON object")
    for key, types in _TOP_LEVEL.items():
        _require(key in report, f"missing top-level key {key!r}")
        _require(isinstance(report[key], types), f"{key!r} must be {types}")
    _require(
        report["schema_version"] == BENCH_SCHEMA_VERSION,
        f"schema_version is {report['schema_version']!r}, "
        f"this harness reads version {BENCH_SCHEMA_VERSION}",
    )
    for key in _ENV_KEYS:
        _require(key in report["env"], f"env is missing {key!r}")
    results: List[Any] = report["results"]
    _require(bool(results), "results must contain at least one scenario")
    seen: set = set()
    for index, entry in enumerate(results):
        path = f"results[{index}]"
        _require(isinstance(entry, dict), f"{path} must be an object")
        for key, types in _RESULT_KEYS.items():
            _require(key in entry, f"{path} is missing {key!r}")
            _require(isinstance(entry[key], types), f"{path}.{key} must be {types}")
        _require(entry["name"] not in seen, f"{path}.name {entry['name']!r} is duplicated")
        seen.add(entry["name"])
        _require(len(entry["wall_times"]) == entry["repeats"],
                 f"{path}.wall_times must hold exactly `repeats` entries")
        _require(all(isinstance(t, (int, float)) and t > 0 for t in entry["wall_times"]),
                 f"{path}.wall_times must be positive numbers")
        _require(entry["best_seconds"] > 0, f"{path}.best_seconds must be positive")
        _require(entry["n_units"] > 0, f"{path}.n_units must be positive")
    return report
