"""Benchmark runner: warmup/repeat timing and schema-versioned reports.

:func:`run_scenarios` drives a deterministic scenario selection (see
:mod:`repro.bench.registry`) with explicit warmup and repeat control and
returns a report dictionary matching :mod:`repro.bench.schema`.  Headline
numbers use the **best-of-repeats** wall time — the standard
noise-suppression estimator for single-machine benches (the minimum is the
run least disturbed by the OS), which matters on the 1-CPU boxes CI uses.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.registry import BenchScenario, select_scenarios
from repro.bench.schema import BENCH_SCHEMA_VERSION, validate_report

__all__ = [
    "env_fingerprint",
    "run_scenario",
    "run_scenarios",
    "write_report",
    "load_report",
]


def env_fingerprint() -> Dict[str, Any]:
    """Machine/toolchain fingerprint embedded in every report.

    Comparisons across different fingerprints are allowed (the compare path
    prints both) but percent deltas are only meaningful within one machine.
    """
    try:
        import scipy

        scipy_version = scipy.__version__
    except Exception:  # pragma: no cover - scipy is a hard dependency
        scipy_version = "unavailable"
    try:
        git_sha: Optional[str] = (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=Path(__file__).resolve().parent,
            ).stdout.strip()
            or None
        )
    except Exception:
        git_sha = None
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "scipy": scipy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": git_sha,
    }


def run_scenario(scenario: BenchScenario, repeats: int = 3, warmup: int = 1) -> Dict[str, Any]:
    """Build and time one scenario; returns its report entry.

    The setup callable runs outside the timed region; ``warmup`` untimed
    calls absorb lazy imports, allocator warmup and CPU frequency ramp;
    ``repeats`` timed calls populate ``wall_times``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    run = scenario.build()
    try:
        n_units = 0
        for _ in range(warmup):
            n_units = run.fn()
        wall_times: List[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            n_units = run.fn()
            wall_times.append(time.perf_counter() - start)
    finally:
        if run.cleanup is not None:
            run.cleanup()
    if n_units <= 0:
        raise RuntimeError(f"scenario {scenario.name!r} reported no work units")
    best = min(wall_times)
    return {
        "name": scenario.name,
        "group": scenario.group,
        "units": scenario.units,
        "n_units": n_units,
        "repeats": repeats,
        "warmup": warmup,
        "wall_times": wall_times,
        "best_seconds": best,
        "mean_seconds": sum(wall_times) / len(wall_times),
        "units_per_second": n_units / best,
    }


def run_scenarios(
    names: Optional[Sequence[str]] = None,
    groups: Optional[Sequence[str]] = None,
    repeats: int = 3,
    warmup: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run a scenario selection and return a schema-valid report dict."""
    scenarios = select_scenarios(names=names, groups=groups)
    results = []
    for scenario in scenarios:
        if progress is not None:
            progress(f"bench: {scenario.name} ...")
        entry = run_scenario(scenario, repeats=repeats, warmup=warmup)
        if progress is not None:
            progress(
                f"bench: {scenario.name}: best {entry['best_seconds'] * 1e3:.2f} ms "
                f"({entry['units_per_second']:.1f} {scenario.units}/s)"
            )
        results.append(entry)
    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": time.time(),
        "env": env_fingerprint(),
        "settings": {"repeats": repeats, "warmup": warmup},
        "results": results,
    }
    return validate_report(report)


def write_report(report: Dict[str, Any], path: str | Path) -> Path:
    """Validate and write a report as pretty-printed JSON; returns the path."""
    validate_report(report)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> Dict[str, Any]:
    """Read and schema-validate a report written by :func:`write_report`."""
    return validate_report(json.loads(Path(path).read_text()))
