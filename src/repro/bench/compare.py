"""Report comparison: percent-delta tables and the regression gate.

:func:`compare_reports` matches two schema-valid reports by scenario name and
computes the percent delta of the best-of-repeats wall time (positive ⇒ the
current report is *slower*).  A scenario regresses when its delta exceeds the
configurable threshold; :func:`format_comparison` renders the table the CLI
prints, and the CLI exits non-zero (:data:`REGRESSION_EXIT_CODE`) when any
scenario regressed — that exit code is the CI contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.schema import validate_report

__all__ = [
    "REGRESSION_EXIT_CODE",
    "DEFAULT_THRESHOLD_PCT",
    "ScenarioDelta",
    "Comparison",
    "compare_reports",
    "format_comparison",
]

#: ``bench --compare`` exit code on regression (distinct from argparse's 2)
REGRESSION_EXIT_CODE = 3

#: default regression threshold: percent slowdown of best wall time
DEFAULT_THRESHOLD_PCT = 15.0


@dataclass(frozen=True)
class ScenarioDelta:
    """Best-time comparison of one scenario present in both reports."""

    name: str
    baseline_seconds: float
    current_seconds: float
    #: percent change of best wall time; positive ⇒ current is slower
    delta_pct: float
    #: True when ``delta_pct`` exceeds the comparison threshold
    regressed: bool

    @property
    def speedup(self) -> float:
        """Baseline/current wall-time ratio (> 1 ⇒ current is faster)."""
        return self.baseline_seconds / self.current_seconds


@dataclass(frozen=True)
class Comparison:
    """Full result of comparing a current report against a baseline."""

    deltas: Tuple[ScenarioDelta, ...]
    threshold_pct: float
    #: scenario names present in only one of the two reports
    only_in_baseline: Tuple[str, ...]
    only_in_current: Tuple[str, ...]

    @property
    def regressions(self) -> Tuple[ScenarioDelta, ...]:
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)


def compare_reports(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> Comparison:
    """Compare two schema-valid reports scenario by scenario.

    Scenarios are matched by name; ones present in only one report are
    listed, not failed (a new scenario must not need a regenerated baseline
    to land, and a retired one must not block CI forever).  ``threshold_pct``
    is the allowed percent slowdown of the best wall time.
    """
    if threshold_pct < 0:
        raise ValueError("threshold_pct must be non-negative")
    validate_report(baseline)
    validate_report(current)
    base_by_name = {entry["name"]: entry for entry in baseline["results"]}
    cur_by_name = {entry["name"]: entry for entry in current["results"]}
    deltas: List[ScenarioDelta] = []
    for name in sorted(set(base_by_name) & set(cur_by_name)):
        base_best = float(base_by_name[name]["best_seconds"])
        cur_best = float(cur_by_name[name]["best_seconds"])
        delta_pct = (cur_best - base_best) / base_best * 100.0
        deltas.append(
            ScenarioDelta(
                name=name,
                baseline_seconds=base_best,
                current_seconds=cur_best,
                delta_pct=delta_pct,
                regressed=delta_pct > threshold_pct,
            )
        )
    return Comparison(
        deltas=tuple(deltas),
        threshold_pct=threshold_pct,
        only_in_baseline=tuple(sorted(set(base_by_name) - set(cur_by_name))),
        only_in_current=tuple(sorted(set(cur_by_name) - set(base_by_name))),
    )


def format_comparison(comparison: Comparison, baseline_label: Optional[str] = None) -> str:
    """Render the comparison as the table ``bench --compare`` prints."""
    from repro.analysis.report import format_table

    rows = [
        (
            delta.name,
            f"{delta.baseline_seconds * 1e3:.3f}",
            f"{delta.current_seconds * 1e3:.3f}",
            f"{delta.delta_pct:+.1f}%",
            "REGRESSED" if delta.regressed else ("faster" if delta.delta_pct < 0 else "ok"),
        )
        for delta in comparison.deltas
    ]
    lines = []
    if baseline_label:
        lines.append(f"baseline: {baseline_label}")
    lines.append(
        format_table(["scenario", "baseline ms", "current ms", "delta", "status"], rows)
    )
    for name in comparison.only_in_baseline:
        lines.append(f"warning: {name} only in baseline — skipped (retired scenario?)")
    for name in comparison.only_in_current:
        lines.append(f"warning: {name} only in current report — skipped (no baseline yet)")
    if comparison.has_regressions:
        worst = max(comparison.regressions, key=lambda d: d.delta_pct)
        lines.append(
            f"REGRESSION: {len(comparison.regressions)} scenario(s) slower than the "
            f"{comparison.threshold_pct:g}% threshold (worst: {worst.name} {worst.delta_pct:+.1f}%)"
        )
    else:
        lines.append(f"no regressions (threshold {comparison.threshold_pct:g}%)")
    return "\n".join(lines)
