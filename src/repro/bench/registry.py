"""Registry of named benchmark scenarios.

A *scenario* is one reproducible measurement of a hot path: a setup callable
that builds all state outside the timed region, returning a
:class:`ScenarioRun` whose ``fn`` is the timed body.  ``fn`` returns the
number of work units it processed (solver steps, training batches, samples…),
from which the runner derives a throughput.

Scenarios are registered with the :func:`register_scenario` decorator and
addressed by ``group/name`` keys (``solver/heat2d``, ``nn/train_step``);
selection by explicit names or whole groups is deterministic — the same
request always yields the same scenarios in the same (sorted) order, which
keeps ``bench --compare`` tables stable across machines and runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ScenarioRun",
    "BenchScenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "scenario_groups",
    "select_scenarios",
]


@dataclass
class ScenarioRun:
    """The built, ready-to-time form of a scenario.

    Attributes
    ----------
    fn:
        The timed body; called once per (warmup or measured) repeat and
        returning the number of work units processed in that call.
    cleanup:
        Optional teardown (temp dirs, pools) invoked after the last repeat.
    """

    fn: Callable[[], int]
    cleanup: Optional[Callable[[], None]] = None


@dataclass(frozen=True)
class BenchScenario:
    """One registered benchmark scenario (see module docstring).

    Attributes
    ----------
    name:
        Unique ``group/short-name`` key, e.g. ``"reservoir/draw"``.
    group:
        The part before the ``/`` — selected together via ``--group``.
    units:
        Human-readable unit of the returned work count (``"steps"``,
        ``"batches"``, ``"samples"``, ``"runs"``…).
    description:
        One line shown by ``bench --list-scenarios``.
    build:
        Setup callable executed outside the timed region.
    """

    name: str
    group: str
    units: str
    description: str
    build: Callable[[], ScenarioRun] = field(compare=False)


_SCENARIOS: Dict[str, BenchScenario] = {}


def register_scenario(
    name: str, *, units: str, description: str
) -> Callable[[Callable[[], ScenarioRun]], Callable[[], ScenarioRun]]:
    """Register a scenario builder under ``name`` (``"group/short-name"``).

    The decorated callable runs at *bench time*, not import time: it builds
    solvers/models/sessions and returns a :class:`ScenarioRun`.  Registering
    the same name twice raises ``ValueError`` (silent replacement would make
    two reports with the same scenario name incomparable).
    """
    if "/" not in name:
        raise ValueError(f"scenario name must look like 'group/name', got {name!r}")
    group = name.split("/", 1)[0]

    def decorator(build: Callable[[], ScenarioRun]) -> Callable[[], ScenarioRun]:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = BenchScenario(
            name=name, group=group, units=units, description=description, build=build
        )
        return build

    return decorator


def get_scenario(name: str) -> BenchScenario:
    """Look up one scenario; raises ``KeyError`` listing the options."""
    _ensure_builtin()
    if name not in _SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; options: {scenario_names()}")
    return _SCENARIOS[name]


def scenario_names() -> List[str]:
    """Every registered scenario name, sorted (the canonical run order)."""
    _ensure_builtin()
    return sorted(_SCENARIOS)


def scenario_groups() -> List[str]:
    """Every registered group, sorted."""
    _ensure_builtin()
    return sorted({s.group for s in _SCENARIOS.values()})


def select_scenarios(
    names: Optional[Sequence[str]] = None,
    groups: Optional[Sequence[str]] = None,
) -> Tuple[BenchScenario, ...]:
    """Resolve a deterministic, duplicate-free scenario selection.

    With neither ``names`` nor ``groups`` the full registry is returned.
    Unknown names or groups raise ``KeyError`` — a CI job silently running
    zero scenarios would defeat the regression gate.  The result is always
    sorted by name, independent of request order.
    """
    _ensure_builtin()
    if not names and not groups:
        selected = set(_SCENARIOS)
    else:
        selected = set()
        known_groups = {s.group for s in _SCENARIOS.values()}
        for group in groups or ():
            if group not in known_groups:
                raise KeyError(f"unknown group {group!r}; options: {sorted(known_groups)}")
            selected.update(n for n, s in _SCENARIOS.items() if s.group == group)
        for name in names or ():
            if name not in _SCENARIOS:
                raise KeyError(f"unknown scenario {name!r}; options: {scenario_names()}")
            selected.add(name)
    return tuple(_SCENARIOS[name] for name in sorted(selected))


def _ensure_builtin() -> None:
    """Import the built-in scenario definitions exactly once."""
    from repro.bench import scenarios  # noqa: F401  (import registers them)
