"""repro — reproduction of "MelissaDL x Breed: Towards Data-Efficient On-line
Supervised Training of Multi-parametric Surrogates with Active Learning"
(Dymchenko, Purandare, Raffin — SC24 Workshop AI4S'24).

Package layout
--------------
``repro.api``
    The public on-line training surface: the :class:`~repro.api.workloads.Workload`
    protocol (solver + parameter bounds + scalers + surrogate geometry) with
    registered ``"heat2d"`` / ``"heat1d"`` / ``"analytic"`` scenarios, the
    serialisable :class:`~repro.api.config.OnlineTrainingConfig`
    (``to_dict``/``from_dict``), the phase-decomposed
    :class:`~repro.api.session.TrainingSession` (``submit`` → ``produce`` →
    ``receive`` → ``train`` with ``on_tick``/``on_steering``/``on_validation``
    hooks), and the ``register_workload`` / ``register_sampler`` /
    ``register_activation`` extension registries.
``repro.nn``
    NumPy reverse-mode autograd engine, dense layers, losses, optimizers
    (the PyTorch substitute).
``repro.solvers``
    Finite-difference heat-equation solvers and analytic references
    (the numerical "oracle" producing training data).
``repro.sampling``
    Parameter boxes, Halton/uniform/LHS sampling, Gaussian mixtures and
    weighted resampling.
``repro.melissa``
    In-process simulation of the Melissa DL on-line training framework
    (launcher, batch scheduler, clients, reservoir, server, steering);
    ``repro.melissa.run`` re-exports the legacy ``run_online_training``
    entry point as a thin wrapper over ``repro.api``.
``repro.breed``
    The paper's contribution: loss-deviation acquisition metric, one-step
    AMIS/PMC proposal construction, concentrate–explore mixing, and the
    steering controller.
``repro.surrogate``
    The multi-parametric direct surrogate MLP, its scalers, offline datasets
    and the fixed Halton validation set.
``repro.workflow``
    Parameter-grid study orchestration (Snakemake substitute): grids, the
    pluggable serial/process executor backends with JSONL checkpoint/resume,
    and the :class:`~repro.workflow.study.StudyRunner` driving them.
``repro.checkpoint``
    Fault-tolerant session checkpointing: versioned atomic
    ``SessionSnapshot`` directories capturing the full training-loop state
    (weights, optimizer moments, reservoir, steering statistics, RNG
    streams, client progress), a periodic ``CheckpointPolicy`` on the
    session's ``on_tick`` hook, and bit-identical mid-run resume via
    ``restore_session``/``resume_or_start``.
``repro.service``
    The long-running study service: a stdlib HTTP server over a persistent
    job store, streaming progress events, deduplicating identical
    submissions by configuration fingerprint, and resuming every in-flight
    job from its checkpoints after a restart (``python -m repro.cli serve``).
``repro.cli``
    The ``repro`` console script launching any registered experiment at any
    scale with any executor backend, plus the ``bench`` and ``serve``
    subcommands.
``repro.analysis``
    Figure/series generation: loss curves, parameter-deviation histograms and
    the loss-statistics correlation matrix.
``repro.experiments``
    One module per paper table/figure, reproducing its rows/series.
"""

__version__ = "1.10.0"

from repro.melissa.run import (
    OnlineTrainingConfig,
    OnlineTrainingResult,
    TrainingSession,
    run_online_training,
)
from repro.api import (
    Workload,
    register_activation,
    register_sampler,
    register_workload,
    workload_names,
)

__all__ = [
    "__version__",
    "OnlineTrainingConfig",
    "OnlineTrainingResult",
    "TrainingSession",
    "run_online_training",
    "Workload",
    "register_activation",
    "register_sampler",
    "register_workload",
    "workload_names",
]
