"""Tiny stdlib client of the study service (``urllib.request`` only).

Used by the tests, the CI smoke script and the examples; doubles as living
documentation of the wire protocol::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8517")
    job = client.submit(study_name="sweep", config=config.to_dict(),
                        configurations=[{"hidden_size": 8}, {"hidden_size": 32}])
    for event in client.stream(job["id"]):
        print(event["event"], event.get("run", ""))
    results = client.result(job["id"])        # StudyResults payload

Every method raises :class:`ServiceError` (carrying the HTTP status and the
server's ``error`` message) on non-2xx responses.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A request the server rejected (carries ``status`` and ``message``)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Blocking JSON client over one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing
    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        body = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode())
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, self._error_message(exc)) from exc

    @staticmethod
    def _error_message(exc: urllib.error.HTTPError) -> str:
        try:
            return json.loads(exc.read().decode()).get("error", str(exc))
        except Exception:  # noqa: BLE001 - best-effort error decoding
            return str(exc)

    # ------------------------------------------------------------ endpoints
    def health(self) -> Dict[str, Any]:
        """Server liveness: ``status``, ``version``, ``uptime_s``,
        ``queue_depth``, worker count and per-state job counters."""
        return self._request("GET", "/v1/health")

    def metrics(self) -> str:
        """The server's ``/v1/metrics`` Prometheus text exposition, raw."""
        request = urllib.request.Request(self.base_url + "/v1/metrics")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, self._error_message(exc)) from exc

    def submit(
        self,
        study_name: str,
        config: Dict[str, Any],
        configurations: Optional[List[Dict[str, Any]]] = None,
        name_key: Optional[str] = None,
        backend: Optional[str] = None,
        max_workers: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit a study; returns the job record (``deduplicated`` flags an
        identical submission that mapped onto an existing job)."""
        payload: Dict[str, Any] = {
            "study_name": study_name,
            "config": config,
            "configurations": configurations if configurations is not None else [{}],
        }
        if name_key is not None:
            payload["name_key"] = name_key
        if backend is not None:
            payload["backend"] = backend
        if max_workers is not None:
            payload["max_workers"] = max_workers
        if checkpoint_every is not None:
            payload["checkpoint_every"] = checkpoint_every
        return self._request("POST", "/v1/jobs", payload)

    def submit_campaign(self, campaign: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a campaign spec document (``docs/CAMPAIGNS.md`` format).

        The returned job record is a normal job — poll/stream/result through
        the same endpoints; ``deduplicated`` flags a spec whose campaign
        fingerprint matched an existing job.
        """
        return self._request("POST", "/v1/campaigns", campaign)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def events(self, job_id: str, since: int = -1) -> List[Dict[str, Any]]:
        """Polling fallback: progress events with ``seq > since``."""
        return self._request("GET", f"/v1/jobs/{job_id}/events?since={since}")["events"]

    def stream(self, job_id: str, since: int = -1) -> Iterator[Dict[str, Any]]:
        """Yield progress events live from the chunked JSONL stream.

        The iterator ends when the server closes the stream — after a
        terminal event (``done``/``failed``/``cancelled``) or on server
        shutdown.  ``urllib`` undoes the chunked transfer-encoding, so each
        iteration reads one JSON line.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/stream?since={since}"
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, self._error_message(exc)) from exc

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's StudyResults payload (``409`` until done)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    # ----------------------------------------------------------- synchrony
    def wait(
        self, job_id: str, timeout: float = 300.0, poll_seconds: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its record.

        Raises :class:`TimeoutError` if the job is still live after
        ``timeout`` seconds — it keeps running server-side regardless.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout:.0f}s"
                )
            time.sleep(poll_seconds)
