"""Persistent, restart-safe job store of the study service.

One directory per job under ``<root>/jobs/``::

    <root>/jobs/<job_id>/
        job.json                 # JobRecord: spec + state + counters (atomic)
        progress.jsonl           # append-only progress events (seq-numbered)
        runs.jsonl               # completed-run records (JsonlCheckpoint)
        runs.jsonl.snapshots/    # per-run mid-run session snapshots (PR 3)
        result.json              # final StudyResults (written atomically)

The store is the single source of truth shared by the HTTP handlers and the
worker pool; every mutation happens under one process-wide lock and lands on
disk before it is observable, so a ``kill -9`` at any point leaves a state
the next server start can recover from:

* ``job.json`` is written via temp-file + ``os.replace`` (atomic on POSIX);
* progress events are appended and flushed line-wise (a torn final line is
  skipped on read, mirroring :class:`~repro.workflow.executor.JsonlCheckpoint`);
* :meth:`JobStore.recover` re-queues every job found ``running`` — its
  completed runs are in ``runs.jsonl`` and its in-flight run in the snapshot
  directory, so re-execution resumes instead of restarting.

Job identity *is* the submission fingerprint
(:func:`~repro.service.schemas.job_fingerprint`): submitting the same study
twice returns the existing job — deduplication holds across restarts with no
separate index to keep consistent.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.service.schemas import (
    JOB_STATES,
    TERMINAL_STATES,
    JobSpec,
    job_fingerprint,
)
from repro.utils.logging import get_logger

__all__ = ["JobRecord", "JobStore", "UnknownJobError"]

_LOGGER = get_logger("service")


class UnknownJobError(KeyError):
    """No job with the requested id exists (HTTP 404 on the wire)."""


@dataclass(frozen=True)
class JobRecord:
    """The stored state of one job (the ``job.json`` payload)."""

    id: str
    spec: JobSpec
    state: str = "queued"
    #: total runs of the study (campaign jobs: static upper-bound estimate)
    runs_total: int = 0
    #: completed-run count (monotonic within one execution; authoritative
    #: progress lives in runs.jsonl)
    runs_done: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: error message of a failed job
    error: Optional[str] = None
    #: set by cancel requests; the worker honours it at the next run boundary
    cancel_requested: bool = False
    #: number of times the job was (re)queued — 1 on first submission
    attempts: int = 1

    def to_dict(self) -> Dict[str, Any]:
        data = {f: getattr(self, f) for f in self.__dataclass_fields__ if f != "spec"}
        data["spec"] = self.spec.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        kwargs = dict(data)
        kwargs["spec"] = JobSpec.from_dict(kwargs["spec"])
        return cls(**kwargs)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class JobStore:
    """On-disk job queue + per-job artifact directories (see module docstring)."""

    root: Path
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)
    #: notified whenever a job becomes claimable (submit / re-queue / recover)
    _queued: threading.Condition = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._queued = threading.Condition(self._lock)

    # ------------------------------------------------------------ layout
    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def runs_path(self, job_id: str) -> Path:
        """The job's JSONL completed-run checkpoint (``run_all`` resume file)."""
        return self.job_dir(job_id) / "runs.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "result.json"

    def progress_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "progress.jsonl"

    def metrics_path(self, job_id: str) -> Path:
        """The job's telemetry snapshot (merged per-run counter deltas)."""
        return self.job_dir(job_id) / "metrics.json"

    # ------------------------------------------------------------ telemetry
    def write_metrics(self, job_id: str, metrics: Dict[str, float]) -> None:
        """Atomically persist a job's merged telemetry counters.

        Written after every completed run, so ``GET /v1/jobs/<id>`` serves a
        live mid-job snapshot; observation only, never read back by the
        worker.
        """
        _atomic_write_text(self.metrics_path(job_id), json.dumps(metrics, indent=2, sort_keys=True))

    def read_metrics(self, job_id: str) -> Dict[str, float]:
        """The job's latest telemetry snapshot (empty when never written)."""
        path = self.metrics_path(job_id)
        if not path.exists():
            return {}
        try:
            return {str(k): float(v) for k, v in json.loads(path.read_text()).items()}
        except (json.JSONDecodeError, TypeError, ValueError):
            return {}

    # ------------------------------------------------------------ records
    def _record_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "job.json"

    def _write(self, record: JobRecord) -> None:
        _atomic_write_text(self._record_path(record.id), json.dumps(record.to_dict(), indent=2))

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            path = self._record_path(job_id)
            if not path.exists():
                raise UnknownJobError(job_id)
            return JobRecord.from_dict(json.loads(path.read_text()))

    def list(self) -> List[JobRecord]:
        """Every stored job, oldest submission first."""
        with self._lock:
            records = []
            for path in self.jobs_dir.glob("*/job.json"):
                records.append(JobRecord.from_dict(json.loads(path.read_text())))
            return sorted(records, key=lambda r: (r.submitted_at, r.id))

    def _update(self, job_id: str, **changes: Any) -> JobRecord:
        record = replace(self.get(job_id), **changes)
        if record.state not in JOB_STATES:
            raise ValueError(f"unknown job state {record.state!r}")
        self._write(record)
        return record

    # ------------------------------------------------------------ submission
    def submit(self, spec: JobSpec) -> tuple:
        """Store a submission; returns ``(record, deduplicated)``.

        The job id is the submission fingerprint, so an identical submission
        maps onto the existing job: live (``queued``/``running``) and ``done``
        jobs are returned as-is (``deduplicated=True``); ``failed`` and
        ``cancelled`` jobs are re-queued for another attempt.
        """
        job_id = job_fingerprint(spec)
        with self._queued:
            try:
                existing = self.get(job_id)
            except UnknownJobError:
                existing = None
            if existing is not None:
                if existing.state in ("queued", "running", "done"):
                    return existing, True
                record = self._update(
                    job_id,
                    state="queued",
                    error=None,
                    cancel_requested=False,
                    finished_at=None,
                    attempts=existing.attempts + 1,
                )
                self.append_event(job_id, "queued", resubmitted=True, attempt=record.attempts)
                self._queued.notify_all()
                return record, False
            record = JobRecord(
                id=job_id,
                spec=spec,
                state="queued",
                runs_total=spec.total_runs(),
                submitted_at=time.time(),
            )
            self.job_dir(job_id).mkdir(parents=True, exist_ok=True)
            self._write(record)
            self.append_event(job_id, "queued")
            self._queued.notify_all()
            return record, False

    # ------------------------------------------------------------ queue
    def claim_next(self, timeout: Optional[float] = None) -> Optional[JobRecord]:
        """Atomically claim the oldest queued job (``queued`` → ``running``).

        Blocks up to ``timeout`` seconds for a job to become claimable;
        returns ``None`` on timeout.  Safe to call from several worker
        threads — each job is handed to exactly one claimant.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._queued:
            while True:
                for record in self.list():
                    if record.state == "queued":
                        claimed = self._update(
                            record.id, state="running", started_at=time.time()
                        )
                        self.append_event(record.id, "started", attempt=claimed.attempts)
                        return claimed
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._queued.wait(remaining)

    def requeue(self, job_id: str, reason: str = "interrupted") -> JobRecord:
        """Put a running job back in the queue (graceful shutdown path)."""
        with self._queued:
            record = self._update(job_id, state="queued", started_at=None)
            self.append_event(job_id, "interrupted", reason=reason)
            self._queued.notify_all()
            return record

    def recover(self) -> List[str]:
        """Re-queue every job left ``running`` by a dead server.

        Called once at service start-up, before workers spin up.  The
        re-queued jobs resume from their ``runs.jsonl`` records and session
        snapshots, so no completed work repeats.
        """
        with self._queued:
            recovered = []
            for record in self.list():
                if record.state == "running":
                    self._update(record.id, state="queued", started_at=None)
                    self.append_event(record.id, "interrupted", reason="server restart")
                    recovered.append(record.id)
            if recovered:
                _LOGGER.info("recovered %d interrupted job(s): %s", len(recovered), recovered)
                self._queued.notify_all()
            return recovered

    def notify(self) -> None:
        """Wake every blocked :meth:`claim_next` caller (shutdown path)."""
        with self._queued:
            self._queued.notify_all()

    # ------------------------------------------------------------ lifecycle
    def mark_done(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._update(job_id, state="done", finished_at=time.time())
            self.append_event(job_id, "done", runs_total=record.runs_total)
            return record

    def mark_failed(self, job_id: str, error: str) -> JobRecord:
        with self._lock:
            record = self._update(
                job_id, state="failed", error=str(error), finished_at=time.time()
            )
            self.append_event(job_id, "failed", error=str(error))
            return record

    def mark_cancelled(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._update(job_id, state="cancelled", finished_at=time.time())
            self.append_event(job_id, "cancelled")
            return record

    def request_cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs immediately, running ones at the next
        run boundary (terminal jobs are returned unchanged)."""
        with self._lock:
            record = self.get(job_id)
            if record.state in TERMINAL_STATES:
                return record
            if record.state == "queued":
                return self.mark_cancelled(job_id)
            return self._update(job_id, cancel_requested=True)

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            return self.get(job_id).cancel_requested

    def record_run_finished(self, job_id: str, name: str, metrics: Dict[str, float]) -> None:
        """Progress bookkeeping as each run of a job's study completes."""
        with self._lock:
            record = self.get(job_id)
            self._update(job_id, runs_done=record.runs_done + 1)
            self.append_event(
                job_id,
                "run_finished",
                run=name,
                runs_done=record.runs_done + 1,
                runs_total=record.runs_total,
                metrics=metrics,
            )

    # ------------------------------------------------------------ progress
    def append_event(self, job_id: str, event: str, **payload: Any) -> Dict[str, Any]:
        """Append one progress event; ``seq`` is dense and 0-based per job."""
        with self._lock:
            path = self.progress_path(job_id)
            seq = sum(1 for _ in self._iter_events(path))
            entry = {"seq": seq, "ts": time.time(), "event": event, **payload}
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("a") as stream:
                stream.write(json.dumps(entry) + "\n")
                stream.flush()
            return entry

    @staticmethod
    def _iter_events(path: Path):
        if not path.exists():
            return
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # torn final line of a killed writer — everything before it
                # is intact, so skip rather than fail the whole stream
                continue

    def events(self, job_id: str, since: int = -1) -> List[Dict[str, Any]]:
        """Progress events with ``seq > since`` (``since=-1`` → everything)."""
        with self._lock:
            if not self._record_path(job_id).exists():
                raise UnknownJobError(job_id)
            return [
                e for e in self._iter_events(self.progress_path(job_id))
                if e.get("seq", -1) > since
            ]
