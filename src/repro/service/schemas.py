"""Wire schemas of the study service: job specs, states, progress events.

Everything crossing the HTTP boundary is validated into (or serialised from)
the value objects here, so the server, the on-disk job store and the client
agree on one vocabulary:

* :class:`JobSpec` — one *submission*: a named study (base
  :class:`~repro.api.config.OnlineTrainingConfig` dictionary plus a list of
  per-run override dictionaries, exactly the ``StudyRunner.run_all`` inputs)
  with optional executor/checkpoint knobs.
* :data:`JOB_STATES` — the job lifecycle
  (``queued → running → done | failed | cancelled``).
* :func:`validate_submission` — parse an untrusted JSON payload into a
  :class:`JobSpec`, raising :class:`SubmissionError` with a client-readable
  message on any problem (the server maps it to HTTP 400).
* :func:`job_fingerprint` — the submission identity used for deduplication,
  derived from the *effective* per-run configuration fingerprints
  (:func:`repro.workflow.executor.config_digest`), so two submissions that
  describe the same runs dedupe even when their payloads differ cosmetically
  (key order, omitted defaults).

Progress events are plain dictionaries (``{"seq", "ts", "event", ...}``)
appended to a per-job JSONL file; :data:`TERMINAL_EVENTS` names the ones that
end a stream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.api.config import OnlineTrainingConfig
from repro.workflow.executor import BACKENDS, apply_overrides, config_digest

__all__ = [
    "JOB_STATES",
    "TERMINAL_EVENTS",
    "TERMINAL_STATES",
    "JobSpec",
    "SubmissionError",
    "job_fingerprint",
    "run_digests",
    "validate_campaign_submission",
    "validate_submission",
]

#: the job lifecycle; ``queued`` and ``running`` are the live states
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a job never leaves (resubmission re-queues ``failed``/``cancelled``)
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: progress-event types that terminate a ``/stream`` response
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class SubmissionError(ValueError):
    """A submission payload failed validation (HTTP 400 on the wire)."""


@dataclass(frozen=True)
class JobSpec:
    """One validated study submission.

    ``config`` is the serialized base configuration
    (:meth:`OnlineTrainingConfig.to_dict` shape) and ``configurations`` the
    flat per-run override dictionaries — the exact inputs of
    :meth:`repro.workflow.study.StudyRunner.run_all`, kept serialized so the
    spec round-trips through JSON and the job store untouched.
    """

    study_name: str
    config: Dict[str, Any]
    configurations: List[Dict[str, Any]] = field(default_factory=list)
    #: optional override key whose value names each run (``run_all`` semantics)
    name_key: Optional[str] = None
    #: executor backend the worker drives the study through
    backend: str = "serial"
    #: worker-pool size of the parallel backends (None → CPU count)
    max_workers: Optional[int] = None
    #: mid-run session-snapshot period in batches (None → server default)
    checkpoint_every: Optional[int] = None
    #: campaign jobs only: the full CampaignSpec dictionary (study fields
    #: above still describe the submission; ``configurations`` stays empty)
    campaign: Optional[Dict[str, Any]] = None

    def build_base_config(self) -> OnlineTrainingConfig:
        """Rebuild the base configuration (raises on drifted payloads)."""
        return OnlineTrainingConfig.from_dict(self.config)

    def total_runs(self) -> int:
        """Run count shown as the job's ``runs_total`` (estimate for campaigns)."""
        if self.campaign is not None:
            from repro.campaign.spec import CampaignSpec

            return CampaignSpec.from_dict(self.campaign).estimated_runs()
        return len(self.configurations)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        return cls(
            study_name=str(data["study_name"]),
            config=dict(data.get("config", {})),
            configurations=[dict(c) for c in data.get("configurations", [])],
            name_key=data.get("name_key"),
            backend=str(data.get("backend", "serial")),
            max_workers=data.get("max_workers"),
            checkpoint_every=data.get("checkpoint_every"),
            campaign=dict(data["campaign"]) if data.get("campaign") is not None else None,
        )


def validate_submission(payload: Any) -> JobSpec:
    """Parse an untrusted submission payload into a :class:`JobSpec`.

    The base configuration and *every* override dictionary are materialised
    once (through :meth:`OnlineTrainingConfig.from_dict` and
    :func:`~repro.workflow.executor.apply_overrides`) so malformed
    submissions fail here, at the HTTP boundary, with a message naming the
    offending key — not minutes later inside a worker thread.
    """
    if not isinstance(payload, Mapping):
        raise SubmissionError("submission must be a JSON object")
    if "campaign" in payload:
        raise SubmissionError("campaign submissions go to POST /v1/campaigns")
    unknown = sorted(set(payload) - set(JobSpec.__dataclass_fields__))
    if unknown:
        raise SubmissionError(f"unknown submission key(s): {unknown}")
    study_name = payload.get("study_name")
    if not isinstance(study_name, str) or not study_name.strip():
        raise SubmissionError("study_name must be a non-empty string")
    config = payload.get("config")
    if not isinstance(config, Mapping):
        raise SubmissionError("config must be an OnlineTrainingConfig dictionary")
    configurations = payload.get("configurations", [{}])
    if not isinstance(configurations, list) or not configurations:
        raise SubmissionError("configurations must be a non-empty list of override dicts")
    if not all(isinstance(c, Mapping) for c in configurations):
        raise SubmissionError("every entry of configurations must be an object")
    backend = payload.get("backend", "serial")
    if backend not in BACKENDS:
        raise SubmissionError(f"backend must be one of {list(BACKENDS)}, got {backend!r}")
    max_workers = payload.get("max_workers")
    if max_workers is not None and (not isinstance(max_workers, int) or max_workers < 1):
        raise SubmissionError("max_workers must be a positive integer")
    checkpoint_every = payload.get("checkpoint_every")
    if checkpoint_every is not None and (
        not isinstance(checkpoint_every, int) or checkpoint_every < 0
    ):
        raise SubmissionError("checkpoint_every must be a non-negative integer")
    name_key = payload.get("name_key")
    if name_key is not None and not isinstance(name_key, str):
        raise SubmissionError("name_key must be a string")

    try:
        base = OnlineTrainingConfig.from_dict(dict(config))
    except (TypeError, ValueError, KeyError) as exc:
        raise SubmissionError(f"invalid config: {exc}") from exc
    for index, overrides in enumerate(configurations):
        try:
            apply_overrides(base, dict(overrides))
        except (TypeError, ValueError, KeyError) as exc:
            raise SubmissionError(f"invalid configurations[{index}]: {exc}") from exc

    return JobSpec(
        study_name=study_name.strip(),
        config=base.to_dict(),
        configurations=[dict(c) for c in configurations],
        name_key=name_key,
        backend=backend,
        max_workers=max_workers,
        checkpoint_every=checkpoint_every,
    )


def validate_campaign_submission(payload: Any) -> JobSpec:
    """Parse a ``POST /v1/campaigns`` body into a campaign :class:`JobSpec`.

    The body *is* a campaign spec document (``docs/CAMPAIGNS.md`` format) —
    name, base config, nodes, optional backend/max_workers/checkpoint_every.
    Structural validation (node references, selector wiring, cycle-free-ness
    at schedule time) is delegated to :class:`repro.campaign.spec.CampaignSpec`;
    any spec error surfaces here as a client-readable HTTP 400.
    """
    from repro.campaign.spec import CampaignSpec, CampaignSpecError, topological_order

    if not isinstance(payload, Mapping):
        raise SubmissionError("campaign submission must be a JSON object")
    try:
        campaign = CampaignSpec.from_dict(payload)
        topological_order(campaign)  # surface cycles at the HTTP boundary
    except CampaignSpecError as exc:
        raise SubmissionError(f"invalid campaign: {exc}") from exc
    except (TypeError, ValueError, KeyError) as exc:
        raise SubmissionError(f"invalid campaign: {exc}") from exc
    return JobSpec(
        study_name=campaign.name,
        config=dict(campaign.config),
        configurations=[],
        backend=campaign.backend,
        max_workers=campaign.max_workers,
        checkpoint_every=campaign.checkpoint_every or None,
        campaign=campaign.to_dict(),
    )


def run_digests(spec: JobSpec) -> List[tuple]:
    """``(run_name, config_digest)`` per run of the submission, in run order.

    Uses the same name derivation and override application as the study
    engine, so the fingerprint below describes exactly the runs the worker
    will execute.
    """
    from repro.workflow.study import StudyRunner

    runner = StudyRunner(base_config=spec.build_base_config(), study_name=spec.study_name)
    return [
        (s.name, config_digest(s.build_config()))
        for s in runner.build_specs(spec.configurations, spec.name_key)
    ]


def job_fingerprint(spec: JobSpec) -> str:
    """Stable identity of a submission, for deduplication.

    Two submissions fingerprint identically iff they describe the same named
    study over the same effective run configurations — the
    :data:`~repro.api.config.CHECKPOINT_FIELDS` and the executor knobs
    (``backend``/``max_workers``/``checkpoint_every``) are excluded, because
    they change *how* the study runs, not *what* it computes (metrics and
    series are bit-identical across backends).
    """
    if spec.campaign is not None:
        from repro.campaign.spec import CampaignSpec, campaign_digest

        payload: Dict[str, Any] = {
            "study_name": spec.study_name,
            "campaign": campaign_digest(CampaignSpec.from_dict(spec.campaign)),
        }
    else:
        payload = {"study_name": spec.study_name, "runs": run_digests(spec)}
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]
