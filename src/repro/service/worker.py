"""Background worker pool draining the job store through the study engine.

Each :class:`Worker` thread loops: claim the oldest queued job, rebuild its
:class:`~repro.workflow.study.StudyRunner`, and drive
``run_all(configurations, resume=<job>/runs.jsonl, checkpoint_every=N)`` —
the exact crash-recovery call shape of the batch engine, pointed at the
job's own artifact directory.  Consequences, all inherited from PR 2/PR 3
machinery rather than re-implemented here:

* every completed run is appended (and flushed) to ``runs.jsonl`` as it
  finishes,
* runs additionally snapshot their full session state every
  ``checkpoint_every`` batches into ``runs.jsonl.snapshots/<run>/``,
* re-executing the job (after a crash, restart, or graceful interruption)
  splices the completed runs back in and re-enters partial runs from their
  latest snapshot — **bit-identically**.

Cooperative interruption happens at run boundaries: the per-run ``on_result``
callback raises :class:`ServiceShutdown` (server stopping — the job is
re-queued) or :class:`JobCancelled` (client cancel — the job is marked
cancelled) *after* the finished run's record hit the checkpoint, so no
completed work is ever lost or repeated.  Mid-run durability comes from the
periodic session snapshots, which also cover hard kills that never reach
either exception.
"""

from __future__ import annotations

import threading
import traceback
from typing import List, Optional

from repro.service.store import JobRecord, JobStore
from repro.service.schemas import JobSpec
from repro.utils.logging import get_logger
from repro.workflow.results import RunResult
from repro.workflow.study import StudyRunner

__all__ = ["DEFAULT_CHECKPOINT_EVERY", "JobCancelled", "ServiceShutdown", "Worker", "WorkerPool"]

_LOGGER = get_logger("service")

#: mid-run snapshot period (training batches) used when a submission does not
#: choose its own — restart-safe resume is the service's default posture
DEFAULT_CHECKPOINT_EVERY = 25

#: progress-event metric subset streamed per finished run (full records stay
#: in runs.jsonl / result.json; events are for humans watching a stream)
_EVENT_METRICS = ("final_train_loss", "final_validation_loss", "overfit_gap", "iterations")


class ServiceShutdown(Exception):
    """Raised inside a study at a run boundary when the service is stopping."""


class JobCancelled(Exception):
    """Raised inside a study at a run boundary when the job was cancelled."""


class Worker(threading.Thread):
    """One queue-draining thread (see module docstring)."""

    def __init__(
        self,
        store: JobStore,
        stop_event: threading.Event,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        name: Optional[str] = None,
        poll_seconds: float = 0.5,
    ) -> None:
        super().__init__(name=name or "service-worker", daemon=True)
        self.store = store
        self.stop_event = stop_event
        self.checkpoint_every = checkpoint_every
        self.poll_seconds = poll_seconds
        #: merged telemetry counters of the job currently executing (a worker
        #: runs one job at a time; reset per claim)
        self._job_telemetry: dict = {}

    # ---------------------------------------------------------------- loop
    def run(self) -> None:  # pragma: no cover - exercised via live services
        while not self.stop_event.is_set():
            record = self.store.claim_next(timeout=self.poll_seconds)
            if record is None:
                continue
            if self.stop_event.is_set():
                # claimed in the shutdown race — hand it straight back
                self.store.requeue(record.id, reason="server stopping")
                return
            self.execute(record)

    # ------------------------------------------------------------- one job
    def execute(self, record: JobRecord) -> None:
        """Run one claimed job to a terminal (or re-queued) state."""
        job_id = record.id
        self._job_telemetry = {}
        try:
            if self.store.cancel_requested(job_id):
                raise JobCancelled(job_id)
            if record.spec.campaign is not None:
                outcome = self._run_campaign(record)
                self._write_campaign_result(job_id, outcome)
                self.store.mark_done(job_id)
                _LOGGER.info("job %s done (campaign, %s)", job_id, outcome.states)
            else:
                results = self._run_study(record)
                self._write_result(job_id, results)
                self.store.mark_done(job_id)
                _LOGGER.info("job %s done (%d runs)", job_id, len(results))
        except ServiceShutdown:
            self.store.requeue(job_id, reason="server stopping")
            _LOGGER.info("job %s re-queued (server stopping)", job_id)
        except JobCancelled:
            self.store.mark_cancelled(job_id)
            _LOGGER.info("job %s cancelled", job_id)
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            _LOGGER.error("job %s failed: %s\n%s", job_id, exc, traceback.format_exc())
            self.store.mark_failed(job_id, f"{type(exc).__name__}: {exc}")

    def _run_study(self, record: JobRecord):
        spec: JobSpec = record.spec
        runner = StudyRunner(
            base_config=spec.build_base_config(),
            study_name=spec.study_name,
            backend=spec.backend,
            max_workers=spec.max_workers,
            on_result=lambda run: self._on_run_finished(record.id, run),
        )
        checkpoint_every = (
            spec.checkpoint_every if spec.checkpoint_every is not None else self.checkpoint_every
        )
        return runner.run_all(
            spec.configurations,
            name_key=spec.name_key,
            resume=self.store.runs_path(record.id),
            checkpoint_every=checkpoint_every or None,
        )

    def _run_campaign(self, record: JobRecord):
        """Drive a campaign job; every (re-)entry resumes the same root.

        The campaign root lives inside the job directory, so the store's
        restart-recovery (re-queueing dangling ``running`` jobs) composes with
        the campaign's own manifest/cache resume: a killed server re-enters
        the campaign bit-identically, exactly like plain study jobs.  A
        campaign with failed nodes fails the job (resubmission re-queues it,
        and the resume retries only the failed subgraph).
        """
        from repro.campaign import CampaignRunner, CampaignSpec

        spec: JobSpec = record.spec
        campaign = CampaignSpec.from_dict(spec.campaign)
        checkpoint_every = (
            spec.checkpoint_every if spec.checkpoint_every is not None else self.checkpoint_every
        )
        forwarded = {"node_started", "node_finished", "node_failed", "node_skipped", "node_resumed"}
        runner = CampaignRunner(
            campaign,
            root=self.store.job_dir(record.id) / "campaign",
            backend=spec.backend,
            max_workers=spec.max_workers,
            checkpoint_every=checkpoint_every,
            on_result=lambda run: self._on_run_finished(record.id, run),
            on_event=lambda event, payload: (
                self.store.append_event(record.id, event, **payload)
                if event in forwarded
                else None
            ),
            propagate=(ServiceShutdown, JobCancelled),
        )
        outcome = runner.run(resume=True)
        if not outcome.ok:
            bad = {n: s for n, s in outcome.states.items() if s != "done"}
            raise RuntimeError(f"campaign node(s) did not complete: {bad}")
        return outcome

    def _write_campaign_result(self, job_id: str, outcome) -> None:
        """Persist the campaign summary (states, cache accounting, per-node runs)."""
        from repro.service.store import _atomic_write_text
        import json

        _atomic_write_text(self.store.result_path(job_id), json.dumps(outcome.to_dict(), indent=2))

    def _on_run_finished(self, job_id: str, run: RunResult) -> None:
        """Per-run callback: stream progress, then honour stop/cancel requests.

        Ordering matters: ``run_all`` appended the record to ``runs.jsonl``
        *before* invoking this callback, so raising here never drops the run
        that just finished.
        """
        metrics = {k: run.metrics[k] for k in _EVENT_METRICS if k in run.metrics}
        self.store.record_run_finished(job_id, run.name, metrics)
        if run.telemetry:
            # Live mid-job snapshot: merge this run's counter deltas and
            # persist, so GET /v1/jobs/<id> shows telemetry while running.
            for key, value in run.telemetry.items():
                if key.startswith("_"):
                    continue
                self._job_telemetry[key] = self._job_telemetry.get(key, 0.0) + float(value)
            self.store.write_metrics(job_id, self._job_telemetry)
        if self.stop_event.is_set():
            raise ServiceShutdown(job_id)
        if self.store.cancel_requested(job_id):
            raise JobCancelled(job_id)

    def _write_result(self, job_id: str, results) -> None:
        """Persist the final StudyResults atomically (tmp + rename)."""
        from repro.service.store import _atomic_write_text
        import json

        payload = {"study": results.study, "runs": [run.to_dict() for run in results.runs]}
        _atomic_write_text(self.store.result_path(job_id), json.dumps(payload, indent=2))
        # The spec-order merge over the *complete* run list also covers runs
        # resumed from runs.jsonl in earlier attempts.
        merged = results.telemetry_summary()
        if merged:
            self.store.write_metrics(job_id, merged)


class WorkerPool:
    """A fixed set of :class:`Worker` threads over one store."""

    def __init__(
        self,
        store: JobStore,
        n_workers: int = 1,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.store = store
        self.stop_event = threading.Event()
        self.workers: List[Worker] = [
            Worker(
                store,
                self.stop_event,
                checkpoint_every=checkpoint_every,
                name=f"service-worker-{i}",
            )
            for i in range(n_workers)
        ]

    def start(self) -> None:
        for worker in self.workers:
            worker.start()

    def stop(self, timeout: Optional[float] = None) -> None:
        """Signal every worker and join them.

        Workers stop at the next run boundary; in-flight jobs are re-queued
        with their completed runs checkpointed, ready to resume.
        """
        self.stop_event.set()
        self.store.notify()
        for worker in self.workers:
            worker.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return any(worker.is_alive() for worker in self.workers)
