"""The study service: a stdlib HTTP front-end over the job store + workers.

No third-party dependencies — :class:`http.server.ThreadingHTTPServer` serves
the API, so every request (including long-lived streams) gets its own thread
while the :class:`~repro.service.worker.WorkerPool` drains the queue in the
background.

API (all JSON; errors are ``{"error": ...}`` with a 4xx/5xx status):

========  ==============================  ========================================
method    path                            effect
========  ==============================  ========================================
GET       ``/v1/health``                  server liveness + queue counters
GET       ``/v1/jobs``                    list all jobs (oldest first)
POST      ``/v1/campaigns``               submit a campaign DAG (same dedupe and
                                          job lifecycle; see docs/CAMPAIGNS.md)
POST      ``/v1/jobs``                    submit a study (``201``; ``200`` +
                                          ``deduplicated: true`` for an identical
                                          resubmission)
GET       ``/v1/jobs/<id>``               inspect one job
GET       ``/v1/jobs/<id>/events``        polling fallback: progress events,
                                          ``?since=SEQ`` filters to newer ones
GET       ``/v1/jobs/<id>/stream``        chunked JSONL progress stream; one event
                                          per line, closed after a terminal event
                                          (``?since=SEQ`` replays from there)
GET       ``/v1/jobs/<id>/result``        final StudyResults JSON (``409`` until
                                          the job is done)
POST      ``/v1/jobs/<id>/cancel``        cancel (queued: immediate; running: at
                                          the next run boundary)
========  ==============================  ========================================

:class:`StudyService` composes the pieces and owns the lifecycle: on
:meth:`~StudyService.start` it removes any stale shutdown marker, *recovers*
jobs a dead server left ``running`` (they re-queue and resume from their
checkpoints), then starts workers and the HTTP listener; on
:meth:`~StudyService.stop` it stops accepting, lets workers reach a run
boundary, and writes ``shutdown.marker`` so operators can tell a clean stop
from a crash.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro import __version__, telemetry
from repro.service.schemas import (
    TERMINAL_EVENTS,
    SubmissionError,
    validate_campaign_submission,
    validate_submission,
)
from repro.service.store import JobStore, UnknownJobError, _atomic_write_text
from repro.service.worker import DEFAULT_CHECKPOINT_EVERY, WorkerPool
from repro.utils.logging import get_logger

__all__ = ["SHUTDOWN_MARKER", "StudyService"]

_LOGGER = get_logger("service")

#: file the service writes on clean shutdown (absent after a crash)
SHUTDOWN_MARKER = "shutdown.marker"

#: seconds between progress-file polls while a stream has nothing new to send
_STREAM_POLL_SECONDS = 0.05


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the owning :class:`StudyService` (``self.service``)."""

    # chunked transfer-encoding (the stream endpoint) needs HTTP/1.1 framing
    protocol_version = "HTTP/1.1"
    service: "StudyService"  # injected by StudyService via a subclass

    # ------------------------------------------------------------ plumbing
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _LOGGER.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload, indent=2).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SubmissionError("empty request body (expected JSON)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SubmissionError(f"request body is not valid JSON: {exc}") from exc

    def _route(self) -> Tuple[str, Dict[str, Any]]:
        parsed = urlparse(self.path)
        query = {k: v[-1] for k, v in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    # ------------------------------------------------------------- verbs
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, query = self._route()
        try:
            if path == "/v1/health":
                return self._send_json(self.service.health())
            if path == "/v1/metrics":
                return self._send_metrics()
            if path == "/v1/jobs":
                return self._send_json(
                    {"jobs": [r.to_dict() for r in self.service.store.list()]}
                )
            parts = path.split("/")
            # /v1/jobs/<id>[/events|/stream|/result]
            if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "jobs":
                job_id = parts[3]
                tail = parts[4] if len(parts) > 4 else ""
                if tail == "":
                    payload = self.service.store.get(job_id).to_dict()
                    payload["metrics"] = self.service.store.read_metrics(job_id)
                    return self._send_json(payload)
                if tail == "events":
                    since = int(query.get("since", -1))
                    events = self.service.store.events(job_id, since=since)
                    state = self.service.store.get(job_id).state
                    return self._send_json({"job": job_id, "state": state, "events": events})
                if tail == "stream":
                    return self._stream(job_id, since=int(query.get("since", -1)))
                if tail == "result":
                    return self._result(job_id)
            return self._send_error_json(f"no such endpoint: {path}", 404)
        except UnknownJobError as exc:
            return self._send_error_json(f"unknown job: {exc.args[0]}", 404)
        except (ValueError, SubmissionError) as exc:
            return self._send_error_json(str(exc), 400)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, _ = self._route()
        try:
            if path == "/v1/jobs":
                spec = validate_submission(self._read_body())
                record, deduplicated = self.service.store.submit(spec)
                payload = dict(record.to_dict(), deduplicated=deduplicated)
                return self._send_json(payload, status=200 if deduplicated else 201)
            if path == "/v1/campaigns":
                # A campaign is a job whose spec carries the DAG; it shares
                # the store, queue, progress stream and result endpoints.
                spec = validate_campaign_submission(self._read_body())
                record, deduplicated = self.service.store.submit(spec)
                payload = dict(record.to_dict(), deduplicated=deduplicated)
                return self._send_json(payload, status=200 if deduplicated else 201)
            parts = path.split("/")
            if len(parts) == 5 and parts[1] == "v1" and parts[2] == "jobs" and parts[4] == "cancel":
                record = self.service.store.request_cancel(parts[3])
                return self._send_json(record.to_dict())
            return self._send_error_json(f"no such endpoint: {path}", 404)
        except UnknownJobError as exc:
            return self._send_error_json(f"unknown job: {exc.args[0]}", 404)
        except SubmissionError as exc:
            return self._send_error_json(str(exc), 400)

    # ------------------------------------------------------------ endpoints
    def _send_metrics(self) -> None:
        """Prometheus text exposition of the process-wide registry."""
        body = self.service.metrics_text().encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _result(self, job_id: str) -> None:
        record = self.service.store.get(job_id)
        if record.state != "done":
            return self._send_error_json(
                f"job {job_id} is {record.state}, not done — no result yet"
                + (f" (error: {record.error})" if record.error else ""),
                409,
            )
        body = self.service.store.result_path(job_id).read_text().encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream(self, job_id: str, since: int = -1) -> None:
        """Chunked JSONL progress stream, closed after a terminal event.

        Existing events (``seq > since``) are replayed first, then the
        progress file is tailed; each event is one ``\\n``-terminated JSON
        line in its own chunk, so clients see it the moment it is flushed.
        """
        store = self.service.store
        store.get(job_id)  # 404 before committing to a stream
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = since
        try:
            while True:
                events = store.events(job_id, since=cursor)
                for event in events:
                    cursor = max(cursor, int(event.get("seq", cursor)))
                    self._write_chunk((json.dumps(event) + "\n").encode())
                    if event.get("event") in TERMINAL_EVENTS:
                        self._write_chunk(b"")
                        return
                if self.service.stopping.is_set():
                    self._write_chunk(b"")
                    return
                time.sleep(_STREAM_POLL_SECONDS)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-stream; nothing to clean up

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()


class StudyService:
    """One running study server: store + worker pool + HTTP listener."""

    def __init__(
        self,
        root: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        n_workers: int = 1,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        enable_metrics: bool = True,
    ) -> None:
        self.root = Path(root)
        #: switch telemetry metrics on at start() so /v1/metrics is live and
        #: per-run counter deltas flow into job metrics snapshots
        self.enable_metrics = enable_metrics
        self.store = JobStore(self.root)
        self.pool = WorkerPool(self.store, n_workers=n_workers, checkpoint_every=checkpoint_every)
        self.stopping = threading.Event()
        self._started_at: Optional[float] = None
        self._owns_metrics = False

        handler = type("BoundHandler", (_Handler,), {"service": self})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._http_thread: Optional[threading.Thread] = None

    # -------------------------------------------------------------- address
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when ``port=0`` was asked."""
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "StudyService":
        """Recover interrupted jobs, start workers and the HTTP listener."""
        marker = self.root / SHUTDOWN_MARKER
        if marker.exists():
            marker.unlink()
        if self.enable_metrics and not telemetry.metrics_enabled():
            # export_env=True (the default) so executor worker *processes*
            # (process/shm backends) inherit the switch and attribute per-run
            # counters; stop() undoes exactly what this enabled.
            telemetry.configure(metrics=True)
            self._owns_metrics = True
        recovered = self.store.recover()
        self._started_at = time.time()
        # server.json advertises the bound address so out-of-process tooling
        # (the smoke script, operators) can find a --port 0 server
        _atomic_write_text(
            self.root / "server.json",
            json.dumps(
                {"url": self.url, "host": self.address[0], "port": self.address[1],
                 "version": __version__, "started_at": self._started_at,
                 "recovered_jobs": recovered},
                indent=2,
            ),
        )
        self.pool.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever, name="service-http", daemon=True
        )
        self._http_thread.start()
        _LOGGER.info("study service listening on %s (root=%s)", self.url, self.root)
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful shutdown: stop accepting, finish the current checkpoint.

        Workers exit at the next run boundary (their in-flight job re-queues
        with all completed runs checkpointed); then the clean-shutdown marker
        is written.  Idempotent.
        """
        if self.stopping.is_set():
            return
        self.stopping.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        self.pool.stop(timeout=timeout)
        if self._owns_metrics:
            telemetry.configure(metrics=False)
            self._owns_metrics = False
        _atomic_write_text(
            self.root / SHUTDOWN_MARKER,
            json.dumps({"stopped_at": time.time(), "clean": True}) + "\n",
        )
        _LOGGER.info("study service stopped cleanly (marker: %s)", self.root / SHUTDOWN_MARKER)

    def wait(self, poll_seconds: float = 0.2) -> None:
        """Block until :meth:`stop` is called (the CLI serve loop)."""
        while not self.stopping.is_set():
            self.stopping.wait(poll_seconds)

    # ------------------------------------------------------------- health
    def health(self) -> Dict[str, Any]:
        records = self.store.list()
        by_state: Dict[str, int] = {}
        for record in records:
            by_state[record.state] = by_state.get(record.state, 0) + 1
        uptime = 0.0 if self._started_at is None else time.time() - self._started_at
        return {
            "status": "stopping" if self.stopping.is_set() else "ok",
            "version": __version__,
            "url": self.url,
            "root": str(self.root),
            "workers": len(self.pool.workers),
            "jobs": {"total": len(records), **by_state},
            "uptime_seconds": uptime,
            "uptime_s": uptime,
            "queue_depth": by_state.get("queued", 0),
        }

    def metrics_text(self) -> str:
        """The registry in Prometheus text form, service gauges refreshed.

        Queue/uptime gauges are point-in-time observations set at scrape
        time; everything else in the registry (session, reservoir, transport,
        checkpoint series) accumulates as the in-process workers run studies.
        """
        registry = telemetry.metrics()
        health = self.health()
        registry.gauge(
            "repro_service_uptime_seconds", help="seconds since the service started"
        ).set(health["uptime_s"])
        registry.gauge(
            "repro_service_queue_depth", help="jobs waiting in the queue"
        ).set(health["queue_depth"])
        registry.gauge(
            "repro_service_workers", help="worker threads draining the queue"
        ).set(health["workers"])
        jobs_gauge = registry.gauge("repro_service_jobs", help="jobs by state")
        for state, count in health["jobs"].items():
            if state != "total":
                jobs_gauge.labels(state=state).set(count)
        return registry.render_prometheus()
