"""``repro.service`` — a long-running study server over the batch engine.

The batch layers (PR 2's study engine, PR 3's checkpointing) execute one
invocation and exit; this package turns them into something that *serves
requests*: a stdlib-only HTTP server fronting a persistent job queue, with
streaming progress and restart-safe, bit-identical resume.

* :mod:`repro.service.schemas` — wire vocabulary: :class:`JobSpec`,
  submission validation, the deduplicating :func:`job_fingerprint`.
* :mod:`repro.service.store` — the on-disk :class:`JobStore`: one directory
  per job holding its spec/state (atomic ``job.json``), progress events,
  the ``runs.jsonl`` checkpoint and per-run session snapshots.
* :mod:`repro.service.worker` — the background :class:`WorkerPool` draining
  the queue through :class:`~repro.workflow.study.StudyRunner`.
* :mod:`repro.service.server` — :class:`StudyService`: the
  ``ThreadingHTTPServer`` front-end (submit / list / inspect / stream /
  result / cancel) and the recover-on-start, marker-on-stop lifecycle.
* :mod:`repro.service.client` — :class:`ServiceClient`, the tiny
  ``urllib``-only client used by tests, CI and examples.

Typical use::

    from repro.service import StudyService, ServiceClient

    service = StudyService("studies/", port=8517, n_workers=2).start()
    client = ServiceClient(service.url)
    job = client.submit("sweep", config.to_dict(), [{"hidden_size": 8}])
    client.wait(job["id"])
    results = client.result(job["id"])
    service.stop()

or, from a shell: ``python -m repro.cli serve --root studies/ --port 8517``.
See ``docs/SERVICE.md`` for the endpoint reference and resume semantics.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.schemas import (
    JOB_STATES,
    JobSpec,
    SubmissionError,
    job_fingerprint,
    validate_campaign_submission,
    validate_submission,
)
from repro.service.server import SHUTDOWN_MARKER, StudyService
from repro.service.store import JobRecord, JobStore, UnknownJobError
from repro.service.worker import DEFAULT_CHECKPOINT_EVERY, Worker, WorkerPool

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "JOB_STATES",
    "SHUTDOWN_MARKER",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "ServiceClient",
    "ServiceError",
    "StudyService",
    "SubmissionError",
    "UnknownJobError",
    "Worker",
    "WorkerPool",
    "job_fingerprint",
    "validate_campaign_submission",
    "validate_submission",
]
