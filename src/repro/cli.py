"""``repro`` — command-line launcher for the paper-reproduction experiments.

The CLI is the user-facing face of the study-execution engine
(:mod:`repro.workflow.executor`): it can launch any registered experiment at
any scale with any executor backend, write results under an output directory,
and resume interrupted studies from their JSONL checkpoints::

    python -m repro.cli fig3b --scale smoke --jobs 8 --out results/
    python -m repro.cli fig3a --scale small --jobs 4 --resume results/fig3a_small.runs.jsonl
    python -m repro.cli table1
    repro --list                       # installed console script

Study-shaped experiments (fig3a, fig3b, cross) honour ``--jobs``/``--backend``
and checkpoint each run as it finishes; the single/dual-run experiments (fig4,
fig6, overhead) need the full in-process results and always run serially.

``--workload NAME`` points an experiment at any registered workload
(``heat2d`` by default); the ``cross`` experiment compares Breed vs Random
across *every* registered workload (or the repeated ``--workload`` flags)::

    python -m repro.cli fig3b --scale smoke --workload burgers
    python -m repro.cli cross --scale smoke --jobs 4
    python -m repro.cli cross --workload advection1d --workload fisher

``bench`` is the performance subcommand (see :mod:`repro.bench`): it runs
registered benchmark scenarios with warmup/repeat control, writes
schema-versioned ``BENCH_*.json`` reports, and gates on a regression
threshold against a baseline report::

    python -m repro.cli bench --out BENCH.json
    python -m repro.cli bench --compare benchmarks/baselines/BENCH_pr5.json

``serve`` starts the long-running study service (see :mod:`repro.service`):
an HTTP server with a persistent job queue that accepts study submissions,
streams progress, and resumes every in-flight job after a restart::

    python -m repro.cli serve --root studies/ --port 8517 --workers 2

``--checkpoint-every N`` additionally snapshots every run's *full session
state* every N training batches (see :mod:`repro.checkpoint`), and
``--restore`` resumes an interrupted invocation: completed runs are spliced
in from the JSONL checkpoint and partially completed runs re-enter
bit-identically from their latest session snapshot::

    python -m repro.cli fig3a --scale small --checkpoint-every 100   # … SIGKILL …
    python -m repro.cli fig3a --scale small --checkpoint-every 100 --restore
"""

from __future__ import annotations

import argparse
import json
import shutil
import signal
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro import __version__
from repro.analysis.report import format_table
from repro.experiments.base import SCALES
from repro.workflow.executor import BACKENDS

__all__ = ["EXPERIMENTS", "Experiment", "main", "serve_main"]


@dataclass(frozen=True)
class Experiment:
    """One launchable experiment: a runner plus CLI metadata."""

    name: str
    help: str
    run: Callable[[argparse.Namespace], Dict[str, object]]
    #: whether --jobs/--backend/--resume apply (study-shaped experiments)
    parallel: bool = False


def _resolve_backend(args: argparse.Namespace) -> tuple[str, Optional[int]]:
    """Backend name and worker count from ``--backend``/``--jobs``.

    ``--backend`` wins when given; otherwise ``--jobs N`` with ``N > 1``
    selects the process backend.
    """
    jobs: Optional[int] = args.jobs
    if args.backend is not None:
        return args.backend, jobs
    if jobs is not None and jobs > 1:
        return "process", jobs
    return "serial", jobs


def _out_dir(args: argparse.Namespace) -> Path:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    return out


def _checkpoint_path(args: argparse.Namespace, experiment: str) -> Path:
    """Checkpoint file of this invocation, started fresh unless resuming.

    Without ``--resume`` the file describes *this* invocation only — stale
    records from previous runs (possibly with other seeds) must not
    accumulate, or a later ``--resume`` would splice in whichever happened
    to be written last.  The sibling ``<checkpoint>.snapshots/`` directory is
    cleared under the same rule: a deliberately fresh invocation must not
    silently resume runs mid-way from a previous invocation's session
    snapshots (their wall-clock metrics would describe two invocations).
    """
    path = _out_dir(args) / f"{experiment}_{args.scale}.runs.jsonl"
    resuming_from_it = args.resume is not None and Path(args.resume).resolve() == path.resolve()
    if path.exists() and not resuming_from_it:
        path.unlink()
    snapshots = path.parent / f"{path.name}.snapshots"
    if snapshots.is_dir() and not resuming_from_it:
        shutil.rmtree(snapshots)
    return path


def _save_study(args: argparse.Namespace, experiment: str, study) -> Path:
    path = _out_dir(args) / f"{experiment}_{args.scale}.json"
    study.save_json(path)
    return path


def _save_summary(args: argparse.Namespace, experiment: str, summary: Dict[str, object]) -> Path:
    path = _out_dir(args) / f"{experiment}_{args.scale}.json"
    path.write_text(json.dumps(summary, indent=2, default=float))
    return path


# ---------------------------------------------------------------------------
# Experiment runners
# ---------------------------------------------------------------------------


def _single_workload(args: argparse.Namespace, experiment: str) -> str:
    """The one workload an experiment runs against (default: ``heat2d``).

    Only ``cross`` accepts several ``--workload`` flags; every other
    experiment is a single-scenario study.
    """
    workloads = args.workload or []
    if len(workloads) > 1:
        raise SystemExit(
            f"{experiment} runs against a single workload; got --workload {workloads} "
            f"(only 'cross' accepts several)"
        )
    return workloads[0] if workloads else "heat2d"


def _run_fig3a(args: argparse.Namespace) -> Dict[str, object]:
    from repro.experiments.fig3a import PAPER_HIDDEN_SIZES, PAPER_LAYER_COUNTS, run_fig3a

    backend, jobs = _resolve_backend(args)
    hidden_sizes = args.hidden or list(PAPER_HIDDEN_SIZES)
    layer_counts = args.layers or list(PAPER_LAYER_COUNTS)
    result = run_fig3a(
        scale=args.scale,
        hidden_sizes=hidden_sizes,
        layer_counts=layer_counts,
        seed=args.seed,
        backend=backend,
        max_workers=jobs,
        checkpoint=_checkpoint_path(args, "fig3a"),
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
        workload=_single_workload(args, "fig3a"),
        architecture=args.architecture,
    )
    print(format_table(
        ["architecture", "method", "train MSE", "validation MSE", "gap (val-train)"],
        [
            (label, method, f"{train:.5f}", f"{val:.5f}", f"{gap:+.5f}")
            for label, method, train, val, gap in result.summary_rows()
        ],
    ))
    path = _save_study(args, "fig3a", result.study)
    return {"experiment": "fig3a", "runs": len(result.study.runs), "results": str(path)}


def _run_fig3b(args: argparse.Namespace) -> Dict[str, object]:
    from repro.experiments.fig3b import PAPER_FACTORS, SMOKE_FACTORS, run_fig3b

    backend, jobs = _resolve_backend(args)
    factors = dict(SMOKE_FACTORS if args.scale == "smoke" else PAPER_FACTORS)
    if args.factor:
        unknown = sorted(set(args.factor) - set(factors))
        if unknown:
            raise SystemExit(f"unknown factor(s) {unknown}; options: {sorted(factors)}")
        factors = {name: factors[name] for name in args.factor}
    result = run_fig3b(
        scale=args.scale,
        factors=factors,
        seed=args.seed,
        backend=backend,
        max_workers=jobs,
        checkpoint=_checkpoint_path(args, "fig3b"),
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
        workload=_single_workload(args, "fig3b"),
        architecture=args.architecture,
    )
    print(format_table(
        ["hyper-parameter", "value", "train MSE", "validation MSE", "gap (val-train)"],
        [
            (factor, f"{value:g}", f"{train:.5f}", f"{val:.5f}", f"{gap:+.5f}")
            for factor, value, train, val, gap in result.summary_rows()
        ],
    ))
    path = _save_study(args, "fig3b", result.study)
    return {"experiment": "fig3b", "runs": len(result.study.runs), "results": str(path)}


def _run_fig4(args: argparse.Namespace) -> Dict[str, object]:
    from repro.experiments.fig4 import run_fig4

    result = run_fig4(scale=args.scale, seed=args.seed, workload=_single_workload(args, "fig4"))
    summary = result.summary()
    print(format_table(["metric", "value"], [(k, f"{v:.5f}") for k, v in summary.items()]))
    path = _save_summary(args, "fig4", summary)
    return {"experiment": "fig4", "results": str(path)}


def _run_fig6(args: argparse.Namespace) -> Dict[str, object]:
    from repro.experiments.fig6 import run_fig6

    result = run_fig6(scale=args.scale, seed=args.seed, workload=_single_workload(args, "fig6"))
    findings = result.key_findings()
    checks = result.checks()
    print(format_table(["correlation", "value"], [(k, f"{v:+.3f}") for k, v in findings.items()]))
    print(format_table(["check", "ok"], [(k, str(v)) for k, v in checks.items()]))
    path = _save_summary(args, "fig6", {"key_findings": findings, "checks": checks})
    return {"experiment": "fig6", "results": str(path)}


def _run_overhead(args: argparse.Namespace) -> Dict[str, object]:
    from repro.experiments.overhead import run_overhead

    result = run_overhead(
        scale=args.scale, seed=args.seed, workload=_single_workload(args, "overhead")
    )
    summary = result.summary()
    print(format_table(["metric", "value"], [(k, f"{v:.5f}") for k, v in summary.items()]))
    print(f"overhead negligible: {result.overhead_is_negligible}")
    path = _save_summary(args, "overhead", summary)
    return {"experiment": "overhead", "results": str(path)}


def _run_cross(args: argparse.Namespace) -> Dict[str, object]:
    from repro.api.registry import workload_names
    from repro.experiments.cross_workload import run_cross_workload

    backend, jobs = _resolve_backend(args)
    # The registry resolves keys case-insensitively; normalise before
    # validating so `--workload Burgers` is accepted, not falsely rejected.
    workloads = [name.lower() for name in args.workload] if args.workload else None
    if workloads:
        unknown = sorted(set(workloads) - set(workload_names()))
        if unknown:
            raise SystemExit(f"unknown workload(s) {unknown}; options: {workload_names()}")
    result = run_cross_workload(
        scale=args.scale,
        workloads=workloads,
        seed=args.seed,
        backend=backend,
        max_workers=jobs,
        checkpoint=_checkpoint_path(args, "cross"),
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
        architecture=args.architecture,
    )
    print(format_table(
        ["workload", "method", "train MSE", "validation MSE", "gap (val-train)"],
        [
            (workload, method, f"{train:.5f}", f"{val:.5f}", f"{gap:+.5f}")
            for workload, method, train, val, gap in result.summary_rows()
        ],
    ))
    print(format_table(
        ["workload", "breed improvement"],
        [(w, f"{imp:+.1%}") for w, imp in result.improvement_rows()],
    ))
    path = _save_study(args, "cross", result.study)
    return {"experiment": "cross", "runs": len(result.study.runs), "results": str(path)}


def _run_table1(args: argparse.Namespace) -> Dict[str, object]:
    from repro.experiments.table1 import render_table1

    table = render_table1()
    print(table)
    path = _out_dir(args) / "table1.txt"
    path.write_text(table + "\n")
    return {"experiment": "table1", "results": str(path)}


EXPERIMENTS: Dict[str, Experiment] = {
    "fig3a": Experiment("fig3a", "architecture study, Breed vs Random", _run_fig3a, parallel=True),
    "fig3b": Experiment("fig3b", "Breed hyper-parameter study", _run_fig3b, parallel=True),
    "cross": Experiment(
        "cross", "Breed vs Random across every registered workload", _run_cross, parallel=True
    ),
    "fig4": Experiment("fig4", "input-parameter deviation histograms", _run_fig4),
    "fig6": Experiment("fig6", "training-statistics correlation matrix", _run_fig6),
    "overhead": Experiment("overhead", "steering-overhead measurement", _run_overhead),
    "table1": Experiment("table1", "fixed hyper-parameters per study", _run_table1),
}


# ---------------------------------------------------------------------------
# Graceful interruption (SIGINT/SIGTERM) of the long-running paths
# ---------------------------------------------------------------------------


def _install_signal_handlers() -> None:
    """Convert the first SIGINT/SIGTERM into ``KeyboardInterrupt``.

    The long-running CLI paths (experiment studies, ``serve``) catch it and
    shut down cleanly — on-disk checkpoints are already flushed run-by-run,
    so nothing needs to happen *in* the handler.  A second signal falls back
    to the default disposition (hard interrupt/termination), so a wedged
    shutdown can still be escaped.  No-op outside the main thread (tests,
    embedding), where ``signal.signal`` is unavailable.
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def handler(signum: int, frame: object) -> None:
        signal.signal(signal.SIGINT, signal.default_int_handler)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, handler)
    signal.signal(signal.SIGTERM, handler)


def _write_interrupt_marker(args: argparse.Namespace, experiment: Experiment) -> Path:
    """Record a clean interruption of a study next to its checkpoint files."""
    marker = _out_dir(args) / f"{experiment.name}_{args.scale}.interrupted.json"
    hint = (
        f"python -m repro.cli {experiment.name} --scale {args.scale} --out {args.out} --restore"
        if experiment.parallel
        else f"python -m repro.cli {experiment.name} --scale {args.scale} --out {args.out}"
    )
    marker.write_text(json.dumps({
        "experiment": experiment.name,
        "scale": args.scale,
        "clean": True,
        "resume": hint,
    }, indent=2) + "\n")
    return marker


# ---------------------------------------------------------------------------
# serve — the long-running study service
# ---------------------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the study service: an HTTP server with a persistent job "
                    "queue, streaming progress, and restart-safe resume "
                    "(see docs/SERVICE.md).",
    )
    parser.add_argument("--root", default="service", metavar="DIR",
                        help="job-store directory; holds every job's queue state, "
                             "progress events, run records and session snapshots "
                             "(default: service/)")
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8517,
                        help="TCP port; 0 picks an ephemeral port, advertised in "
                             "<root>/server.json (default: 8517)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="background study workers draining the queue (default: 1)")
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="default mid-run session-snapshot period in training "
                             "batches for jobs that do not choose their own "
                             "(default: 25)")
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro.cli serve``."""
    from repro.service import DEFAULT_CHECKPOINT_EVERY, StudyService

    args = build_serve_parser().parse_args(argv)
    checkpoint_every = (
        args.checkpoint_every if args.checkpoint_every is not None else DEFAULT_CHECKPOINT_EVERY
    )
    service = StudyService(
        root=args.root,
        host=args.host,
        port=args.port,
        n_workers=args.workers,
        checkpoint_every=checkpoint_every,
    )
    _install_signal_handlers()
    service.start()
    print(f"study service listening on {service.url} (root: {args.root}, "
          f"workers: {args.workers}); Ctrl-C stops cleanly", flush=True)
    try:
        service.wait()
    except KeyboardInterrupt:
        print("shutting down: waiting for workers to reach a run boundary …", flush=True)
    finally:
        service.stop()
    print(f"stopped cleanly; in-flight jobs re-queued and will resume on the next "
          f"`repro serve --root {args.root}`", flush=True)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Launch the paper-reproduction experiments through the study engine.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS),
        help="experiment to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list registered experiments and exit")
    parser.add_argument("--scale", default="smoke", choices=sorted(SCALES), help="experiment scale preset")
    parser.add_argument("--seed", type=int, default=0, help="base RNG seed")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker count; N > 1 implies --backend process")
    parser.add_argument("--backend", choices=list(BACKENDS), default=None,
                        help="executor backend (default: serial, or process when --jobs > 1; "
                             "shm shares study inputs/results through shared memory)")
    parser.add_argument("--out", default="results", metavar="DIR",
                        help="output directory for result JSON and checkpoints (default: results/)")
    parser.add_argument("--resume", default=None, metavar="JSONL",
                        help="JSONL checkpoint of a previous invocation; completed runs are skipped")
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="snapshot each run's full session state every N training batches "
                             "(crash-safe mid-run checkpointing; see --restore)")
    parser.add_argument("--restore", action="store_true",
                        help="resume this experiment's previous invocation from --out: completed "
                             "runs are spliced from the JSONL checkpoint (implies --resume on the "
                             "default checkpoint path); combine with --checkpoint-every to also "
                             "re-enter partially completed runs from their session snapshots")
    parser.add_argument("--workload", action="append", default=None, metavar="NAME",
                        help="workload registry key the experiment runs against (default: "
                             "heat2d); repeatable for 'cross', which defaults to every "
                             "registered workload")
    parser.add_argument("--architecture", default="mlp", metavar="NAME",
                        help="surrogate-architecture registry key for the study experiments "
                             "(fig3a, fig3b, cross): mlp (default), residual, conv2d, or any "
                             "repro.api.register_architecture key")
    parser.add_argument("--factor", action="append", default=None, metavar="NAME",
                        help="fig3b: restrict to this hyper-parameter (repeatable)")
    parser.add_argument("--hidden", action="append", type=int, default=None, metavar="H",
                        help="fig3a: restrict hidden sizes (repeatable)")
    parser.add_argument("--layers", action="append", type=int, default=None, metavar="L",
                        help="fig3a: restrict layer counts (repeatable)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect repro.telemetry metrics during the experiment and "
                             "write the Prometheus exposition to "
                             "<out>/<experiment>_<scale>.metrics.txt")
    parser.add_argument("--trace", default=None, metavar="DIR",
                        help="write chrome://tracing-compatible JSONL span traces "
                             "(trace-<pid>.jsonl per process) under DIR "
                             "(see docs/OBSERVABILITY.md)")
    return parser


def _list_experiments() -> str:
    rows = [
        (name, "study" if exp.parallel else "single", exp.help)
        for name, exp in sorted(EXPERIMENTS.items())
    ]
    rows.append(("bench", "perf", "benchmark harness (see `bench --help` / --list-scenarios)"))
    rows.append(("serve", "service", "long-running study server (see `serve --help` / docs/SERVICE.md)"))
    rows.append(("doctor", "ops", "diagnose shm/service/checkpoint residue (see `doctor --help`)"))
    rows.append(("campaign", "study", "resumable DAG-of-studies (see `campaign --help` / docs/CAMPAIGNS.md)"))
    return format_table(["experiment", "kind", "description"], rows)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        # The bench subcommand owns its flags (scenario selection, repeats,
        # compare/threshold) — dispatch before the experiment parser rejects
        # them.  Imported lazily: the harness pulls in heavier modules.
        from repro.bench.cli import bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "serve":
        # Same dispatch pattern for the study service's own flag set.
        return serve_main(argv[1:])
    if argv and argv[0] == "doctor":
        from repro.doctor import doctor_main

        return doctor_main(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import campaign_main

        return campaign_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list:
        print(_list_experiments())
        return 0
    if args.experiment is None:
        parser.print_usage(sys.stderr)
        print("repro: specify an experiment or --list", file=sys.stderr)
        return 2
    experiment = EXPERIMENTS[args.experiment]
    if experiment.parallel and args.restore and args.resume is None:
        # --restore without an explicit --resume continues this invocation's
        # default checkpoint: the JSONL written under --out by the previous,
        # interrupted run of the same experiment and scale.
        args.resume = str(_out_dir(args) / f"{experiment.name}_{args.scale}.runs.jsonl")
    if experiment.parallel and args.restore and args.checkpoint_every is None:
        print(
            "note: --restore without --checkpoint-every splices completed runs only; "
            "repeat --checkpoint-every N to re-enter partially completed runs from "
            "their session snapshots",
            file=sys.stderr,
        )
    if not experiment.parallel:
        ignored = [
            flag
            for flag, value in (
                ("--jobs", args.jobs is not None and args.jobs > 1),
                ("--backend", args.backend in ("process", "shm")),
                ("--resume", args.resume is not None),
                ("--restore", args.restore),
                ("--checkpoint-every", args.checkpoint_every is not None),
            )
            if value
        ]
        if ignored:
            print(
                f"note: {experiment.name} needs full in-process results; "
                f"running serially from scratch ({', '.join(ignored)} ignored)",
                file=sys.stderr,
            )
    if args.metrics or args.trace:
        from repro import telemetry

        telemetry.configure(
            metrics=True if args.metrics else None,
            trace_dir=args.trace,
            process_name=f"repro {experiment.name}",
        )
    _install_signal_handlers()
    try:
        outcome = experiment.run(args)
    except KeyboardInterrupt:
        # Graceful interruption: completed runs are already flushed to the
        # JSONL checkpoint and session snapshots are atomic, so exit cleanly
        # with a marker + resume hint instead of a raw traceback.
        marker = _write_interrupt_marker(args, experiment)
        hint = json.loads(marker.read_text())["resume"]
        print(f"\ninterrupted cleanly — checkpoints are intact (marker: {marker})",
              file=sys.stderr)
        if experiment.parallel:
            print(f"resume with: {hint}", file=sys.stderr)
        return 0
    if args.metrics:
        from repro import telemetry

        path = _out_dir(args) / f"{experiment.name}_{args.scale}.metrics.txt"
        path.write_text(telemetry.metrics().render_prometheus())
        outcome["metrics"] = str(path)
    if args.trace:
        from repro import telemetry

        telemetry.tracer().flush()
        outcome["trace"] = str(args.trace)
    print(json.dumps(outcome))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
