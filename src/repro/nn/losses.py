"""Loss modules.

The training server needs two views on the same loss computation:

* the scalar batch loss used for the optimizer step, and
* the per-sample losses used by Breed's acquisition metric (Eq. 4 of the
  paper) — obtained *without* an extra forward pass.

:class:`MSELoss` therefore exposes :meth:`per_sample`, and
:class:`PerSampleLossTracker` packages the "compute batch loss + remember the
per-sample values" pattern used by the on-line trainer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["MSELoss", "L1Loss", "PerSampleLossTracker", "BatchLossRecord"]


class MSELoss(Module):
    """Mean squared error with selectable reduction."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return F.mse_loss(prediction, target, reduction=self.reduction)

    @staticmethod
    def per_sample(prediction: Tensor, target: Tensor) -> Tensor:
        """Per-sample MSE (mean over features), keeping the batch axis."""
        return F.per_sample_mse(prediction, target)


class L1Loss(Module):
    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"unknown reduction {reduction!r}")
        self.reduction = reduction

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return F.l1_loss(prediction, target, reduction=self.reduction)


@dataclass
class BatchLossRecord:
    """Per-sample losses of one training batch plus summary statistics.

    Attributes
    ----------
    iteration:
        NN training iteration ``i`` at which the batch was consumed.
    sample_losses:
        Per-sample loss values ``l^{(i)}_{jt}``.
    mean, std:
        Batch-loss mean ``mu(l^{(i)})`` and standard deviation ``sigma(l^{(i)})``
        used by the Breed deviation statistic (Eq. 4).
    """

    iteration: int
    sample_losses: np.ndarray
    mean: float = field(init=False)
    std: float = field(init=False)

    def __post_init__(self) -> None:
        losses = np.asarray(self.sample_losses, dtype=np.float64)
        self.sample_losses = losses
        self.mean = float(losses.mean()) if losses.size else 0.0
        self.std = float(losses.std()) if losses.size else 0.0

    @property
    def batch_loss(self) -> float:
        """Scalar batch loss (mean of per-sample losses)."""
        return self.mean

    def deviations(self, epsilon: float = 1e-12) -> np.ndarray:
        """Positive normalised deviations ``max(l - mu, 0) / sigma`` (Eq. 4)."""
        sigma = self.std if self.std > epsilon else epsilon
        return np.maximum(self.sample_losses - self.mean, 0.0) / sigma


class PerSampleLossTracker:
    """Computes a differentiable batch loss while recording per-sample values.

    The tracker evaluates the per-sample MSE tensor once; the scalar batch loss
    returned to the optimizer is its mean, and the detached per-sample values
    are stored as a :class:`BatchLossRecord` for the Breed controller.
    """

    def __init__(self) -> None:
        self.records: List[BatchLossRecord] = []

    def batch_loss(self, prediction: Tensor, target: Tensor, iteration: int) -> Tensor:
        per_sample = F.per_sample_mse(prediction, target)
        record = BatchLossRecord(iteration=iteration, sample_losses=per_sample.data.copy())
        self.records.append(record)
        return per_sample.mean()

    @property
    def last(self) -> Optional[BatchLossRecord]:
        return self.records[-1] if self.records else None

    def clear(self) -> None:
        self.records.clear()
