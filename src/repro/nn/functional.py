"""Functional interface on top of :class:`repro.nn.tensor.Tensor`.

These free functions mirror a minimal subset of ``torch.nn.functional`` so the
surrogate model and training loop read like their PyTorch equivalents in the
original Melissa code base.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.tensor import Tensor, as_tensor

__all__ = [
    "linear",
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "mse_loss",
    "per_sample_mse",
    "l1_loss",
    "softmax",
    "dropout",
]


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout: (out, in)).

    Implemented as one fused autograd node: the whole batch goes through a
    single GEMM forward and a single backward callback computing
    ``grad_x = g @ W``, ``grad_W = (xᵀ g)ᵀ`` and ``grad_b = Σ_batch g``
    directly — instead of the three chained nodes (transpose → matmul → add)
    the composed form records.  The arithmetic is the exact operation
    sequence of the composed form, so results and gradients are
    **bit-identical**; the fusion removes per-layer graph bookkeeping and
    skips ``grad_x`` entirely when the input is a leaf that does not require
    gradients (the usual case for the first layer's batch input).
    """
    xd, w = x.data, weight.data
    if xd.ndim > 2:
        # Rare shapes keep the composed (broadcasting) implementation.
        out = x.matmul(weight.transpose())
        if bias is not None:
            out = out + bias
        return out
    out = xd @ w.T
    if bias is not None:
        out = out + bias.data
        parents = (x, weight, bias)
    else:
        parents = (x, weight)

    def backward(grad: np.ndarray):
        if xd.ndim == 1:
            grad_w = (xd[:, None] @ grad[None, :]).transpose()
            grad_x = (grad[None, :] @ w).reshape(xd.shape) if _wants_grad(x) else None
            grad_b = grad
        else:
            grad_w = (xd.T @ grad).transpose()
            grad_x = grad @ w if _wants_grad(x) else None
            grad_b = grad.sum(axis=0)
        if bias is None:
            return grad_x, grad_w
        return grad_x, grad_w, grad_b

    return x._make(out, parents, backward)


def _wants_grad(tensor: Tensor) -> bool:
    """Whether a backward pass must propagate a gradient into ``tensor``."""
    return tensor.requires_grad or tensor._backward is not None


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """LeakyReLU implemented from primitive ops (stays differentiable)."""
    positive = x.relu()
    negative = (-x).relu() * (-negative_slope)
    return positive + negative


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean-squared error.

    ``reduction`` is one of ``"mean"``, ``"sum"`` or ``"none"``.  With
    ``"none"`` the per-element squared errors are returned (callers typically
    then reduce per sample, see :func:`per_sample_mse`).
    """
    target = as_tensor(target)
    diff = prediction - target
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    if reduction == "none":
        return squared
    raise ValueError(f"unknown reduction {reduction!r}")


def per_sample_mse(prediction: Tensor, target: Tensor) -> Tensor:
    """Per-sample MSE for a batch: mean over feature axes, keep the batch axis.

    This is the quantity Breed consumes: the loss of each individual sample in
    a batch (``l_{jt}`` in the paper), from which batch mean/std and the
    deviation statistic are computed without any extra forward passes.
    """
    target = as_tensor(target)
    diff = prediction - target
    squared = diff * diff
    if squared.ndim == 1:
        return squared
    axes = tuple(range(1, squared.ndim))
    return squared.mean(axis=axes)


def l1_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    target = as_tensor(target)
    diff = (prediction - target).abs()
    if reduction == "mean":
        return diff.mean()
    if reduction == "sum":
        return diff.sum()
    if reduction == "none":
        return diff
    raise ValueError(f"unknown reduction {reduction!r}")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis`` (used in diagnostics only)."""
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.  No-op when not training or when ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)
