"""Functional interface on top of :class:`repro.nn.tensor.Tensor`.

These free functions mirror a minimal subset of ``torch.nn.functional`` so the
surrogate model and training loop read like their PyTorch equivalents in the
original Melissa code base.

The compute-heavy kernels (:func:`linear`, :func:`conv2d`) are recorded as
*single* ops on the autograd graph: one fused forward, and one registered VJP
(see :func:`repro.nn.tensor.register_vjp`) computing every parent gradient in
one pass — instead of the chain of primitive nodes the composed form would
record.  The arithmetic of each fused VJP is the exact operation sequence of
the composed form, so results and gradients are bit-identical; the fusion
removes per-layer graph bookkeeping and skips input gradients entirely when
the input is a leaf that does not require them (the usual case for the first
layer's batch input).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.nn.tensor import Node, Tensor, as_tensor, needs_grad, register_vjp

__all__ = [
    "linear",
    "conv2d",
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "mse_loss",
    "per_sample_mse",
    "l1_loss",
    "softmax",
    "dropout",
]


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout: (out, in)).

    Recorded as one fused ``"linear"`` node: the whole batch goes through a
    single GEMM forward, and the registered VJP computes ``grad_x = g @ W``,
    ``grad_W = (xᵀ g)ᵀ`` and ``grad_b = Σ_batch g`` directly.
    """
    xd, w = x.data, weight.data
    if xd.ndim > 2:
        # Rare shapes keep the composed (broadcasting) implementation.
        out = x.matmul(weight.transpose())
        if bias is not None:
            out = out + bias
        return out
    out = xd @ w.T
    if bias is not None:
        out = out + bias.data
        parents = (x, weight, bias)
    else:
        parents = (x, weight)
    return x._make(out, parents, "linear", saved=(xd, w))


@register_vjp("linear")
def _vjp_linear(node: Node, grad: np.ndarray):
    """Fused one-GEMM backward of :func:`linear` (dead-input grads skipped)."""
    x = node.parents[0]
    xd, w = node.saved
    if xd.ndim == 1:
        grad_w = (xd[:, None] @ grad[None, :]).transpose()
        grad_x = (grad[None, :] @ w).reshape(xd.shape) if needs_grad(x) else None
        grad_b = grad
    else:
        grad_w = (xd.T @ grad).transpose()
        grad_x = grad @ w if needs_grad(x) else None
        grad_b = grad.sum(axis=0)
    if len(node.parents) == 2:  # no bias
        return grad_x, grad_w
    return grad_x, grad_w, grad_b


def _conv_padding(padding: Union[int, str], kernel: int) -> int:
    if padding == "same":
        if kernel % 2 == 0:
            raise ValueError('padding="same" requires an odd kernel size')
        return (kernel - 1) // 2
    if isinstance(padding, int) and padding >= 0:
        return padding
    raise ValueError(f'padding must be a non-negative int or "same", got {padding!r}')


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    padding: Union[int, str] = 0,
) -> Tensor:
    """2-D cross-correlation, channels-first, stride 1.

    ``x`` has shape ``(batch, in_channels, H, W)`` and ``weight`` the PyTorch
    layout ``(out_channels, in_channels, kh, kw)``.  Implemented as a single
    fused op: the forward lowers the input to an im2col matrix and runs one
    GEMM; the registered VJP computes the weight gradient with the transposed
    GEMM and folds the column gradient back onto the input (col2im) — the
    input gradient is skipped entirely when nothing upstream needs it.
    """
    xd, w = x.data, weight.data
    if xd.ndim != 4 or w.ndim != 4:
        raise ValueError(
            f"conv2d expects 4-D input (B, C, H, W) and weight (O, C, kh, kw); "
            f"got input {xd.shape} and weight {w.shape}"
        )
    batch, channels, height, width = xd.shape
    out_channels, w_channels, kh, kw = w.shape
    if channels != w_channels:
        raise ValueError(
            f"conv2d channel mismatch: input has {channels} channels, "
            f"weight expects {w_channels}"
        )
    pad = _conv_padding(padding, kh)
    if padding == "same" and kw % 2 == 0:
        raise ValueError('padding="same" requires an odd kernel size')
    xp = np.pad(xd, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else xd
    out_h = xp.shape[2] - kh + 1
    out_w = xp.shape[3] - kw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv2d kernel ({kh}x{kw}) larger than padded input "
            f"({xp.shape[2]}x{xp.shape[3]})"
        )
    # im2col: one (B*Ho*Wo, C*kh*kw) matrix, then a single GEMM.
    windows = np.lib.stride_tricks.sliding_window_view(xp, (kh, kw), axis=(2, 3))
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch * out_h * out_w, channels * kh * kw)
    wmat = w.reshape(out_channels, -1)
    out = (cols @ wmat.T).reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    if bias is not None:
        out = out + bias.data.reshape(1, out_channels, 1, 1)
        parents = (x, weight, bias)
    else:
        parents = (x, weight)
    return x._make(out, parents, "conv2d", saved=(cols, w, xp.shape, pad, (out_h, out_w)))


@register_vjp("conv2d")
def _vjp_conv2d(node: Node, grad: np.ndarray):
    """Fused backward of :func:`conv2d`: GEMMs + a kernel-sized col2im fold."""
    x = node.parents[0]
    cols, w, padded_shape, pad, (out_h, out_w) = node.saved
    batch, channels = padded_shape[0], padded_shape[1]
    out_channels, _, kh, kw = w.shape
    wmat = w.reshape(out_channels, -1)
    # (B, O, Ho, Wo) -> (B*Ho*Wo, O), matching the im2col row order.
    g2 = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
    grad_w = (g2.T @ cols).reshape(w.shape)
    grad_x = None
    if needs_grad(x):
        grad_cols = (g2 @ wmat).reshape(batch, out_h, out_w, channels, kh, kw)
        grad_xp = np.zeros(padded_shape, dtype=np.float64)
        # col2im: scatter each kernel tap back onto the padded input.  The
        # loop is over the kernel footprint only (kh*kw iterations).
        for i in range(kh):
            for j in range(kw):
                grad_xp[:, :, i : i + out_h, j : j + out_w] += grad_cols[
                    :, :, :, :, i, j
                ].transpose(0, 3, 1, 2)
        grad_x = grad_xp[:, :, pad : padded_shape[2] - pad, pad : padded_shape[3] - pad] if pad else grad_xp
    if len(node.parents) == 2:  # no bias
        return grad_x, grad_w
    grad_b = grad.sum(axis=(0, 2, 3))
    return grad_x, grad_w, grad_b


def relu(x: Tensor) -> Tensor:
    return x.relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """LeakyReLU implemented from primitive ops (stays differentiable)."""
    positive = x.relu()
    negative = (-x).relu() * (-negative_slope)
    return positive + negative


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean-squared error.

    ``reduction`` is one of ``"mean"``, ``"sum"`` or ``"none"``.  With
    ``"none"`` the per-element squared errors are returned (callers typically
    then reduce per sample, see :func:`per_sample_mse`).
    """
    target = as_tensor(target)
    diff = prediction - target
    squared = diff * diff
    if reduction == "mean":
        return squared.mean()
    if reduction == "sum":
        return squared.sum()
    if reduction == "none":
        return squared
    raise ValueError(f"unknown reduction {reduction!r}")


def per_sample_mse(prediction: Tensor, target: Tensor) -> Tensor:
    """Per-sample MSE for a batch: mean over feature axes, keep the batch axis.

    This is the quantity Breed consumes: the loss of each individual sample in
    a batch (``l_{jt}`` in the paper), from which batch mean/std and the
    deviation statistic are computed without any extra forward passes.
    """
    target = as_tensor(target)
    diff = prediction - target
    squared = diff * diff
    if squared.ndim == 1:
        return squared
    axes = tuple(range(1, squared.ndim))
    return squared.mean(axis=axes)


def l1_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    target = as_tensor(target)
    diff = (prediction - target).abs()
    if reduction == "mean":
        return diff.mean()
    if reduction == "sum":
        return diff.sum()
    if reduction == "none":
        return diff
    raise ValueError(f"unknown reduction {reduction!r}")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis`` (used in diagnostics only)."""
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.  No-op when not training or when ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)
