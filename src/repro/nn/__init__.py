"""NumPy-based neural-network substrate (autograd, layers, losses, optimizers).

This package replaces PyTorch in the reproduction: it provides exactly the
functionality the paper's surrogate training requires (dense ReLU MLPs plus
residual and convolutional surrogate blocks, MSE with per-sample losses,
Adam) implemented on top of a small reverse-mode autodiff engine — a recorded
op graph with a VJP registry (see ``docs/AUTOGRAD.md``) — that is verified
against finite differences.
"""

from repro.nn import functional
from repro.nn.grad_check import (
    GradCheckEntry,
    GradCheckReport,
    assert_module_gradients,
    check_gradients,
    check_module_gradients,
    grad_check_module,
    numerical_gradient,
)
from repro.nn.init import kaiming_normal, kaiming_uniform, xavier_normal, xavier_uniform
from repro.nn.layers import (
    Conv2d,
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    ReLU,
    Reshape,
    Residual,
    Sequential,
    Tanh,
)
from repro.nn.losses import BatchLossRecord, L1Loss, MSELoss, PerSampleLossTracker
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    LRScheduler,
    ReduceLROnPlateau,
    StepLR,
)
from repro.nn.serialization import load_checkpoint, load_state_dict, save_checkpoint, save_state_dict
from repro.nn.tensor import (
    Node,
    Tape,
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    needs_grad,
    no_grad,
    register_vjp,
    stack,
    vjp_names,
)

__all__ = [
    "functional",
    "GradCheckEntry",
    "GradCheckReport",
    "assert_module_gradients",
    "check_gradients",
    "check_module_gradients",
    "grad_check_module",
    "numerical_gradient",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "Conv2d",
    "Dropout",
    "Identity",
    "LeakyReLU",
    "Linear",
    "ReLU",
    "Reshape",
    "Residual",
    "Sequential",
    "Tanh",
    "BatchLossRecord",
    "L1Loss",
    "MSELoss",
    "PerSampleLossTracker",
    "Module",
    "Parameter",
    "SGD",
    "Adam",
    "AdamW",
    "Optimizer",
    "ConstantLR",
    "CosineAnnealingLR",
    "LRScheduler",
    "ReduceLROnPlateau",
    "StepLR",
    "load_checkpoint",
    "load_state_dict",
    "save_checkpoint",
    "save_state_dict",
    "Node",
    "Tape",
    "Tensor",
    "as_tensor",
    "concatenate",
    "is_grad_enabled",
    "needs_grad",
    "no_grad",
    "register_vjp",
    "stack",
    "vjp_names",
]
