"""NumPy-based neural-network substrate (autograd, layers, losses, optimizers).

This package replaces PyTorch in the reproduction: it provides exactly the
functionality the paper's surrogate training requires (dense ReLU MLPs, MSE
with per-sample losses, Adam) implemented on top of a small reverse-mode
autodiff engine that is verified against finite differences.
"""

from repro.nn import functional
from repro.nn.grad_check import check_gradients, check_module_gradients, numerical_gradient
from repro.nn.init import kaiming_normal, kaiming_uniform, xavier_normal, xavier_uniform
from repro.nn.layers import Dropout, Identity, LeakyReLU, Linear, ReLU, Sequential, Tanh
from repro.nn.losses import BatchLossRecord, L1Loss, MSELoss, PerSampleLossTracker
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, AdamW, Optimizer
from repro.nn.schedulers import (
    ConstantLR,
    CosineAnnealingLR,
    LRScheduler,
    ReduceLROnPlateau,
    StepLR,
)
from repro.nn.serialization import load_checkpoint, load_state_dict, save_checkpoint, save_state_dict
from repro.nn.tensor import Tensor, as_tensor, concatenate, is_grad_enabled, no_grad, stack

__all__ = [
    "functional",
    "check_gradients",
    "check_module_gradients",
    "numerical_gradient",
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "Dropout",
    "Identity",
    "LeakyReLU",
    "Linear",
    "ReLU",
    "Sequential",
    "Tanh",
    "BatchLossRecord",
    "L1Loss",
    "MSELoss",
    "PerSampleLossTracker",
    "Module",
    "Parameter",
    "SGD",
    "Adam",
    "AdamW",
    "Optimizer",
    "ConstantLR",
    "CosineAnnealingLR",
    "LRScheduler",
    "ReduceLROnPlateau",
    "StepLR",
    "load_checkpoint",
    "load_state_dict",
    "save_checkpoint",
    "save_state_dict",
    "Tensor",
    "as_tensor",
    "concatenate",
    "is_grad_enabled",
    "no_grad",
    "stack",
]
