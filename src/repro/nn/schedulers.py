"""Learning-rate schedulers.

The paper keeps the learning rate fixed at ``1e-3``; the schedulers here exist
for the extension/ablation benchmarks (DESIGN.md §5, "widen coverage").
"""

from __future__ import annotations

import math
from typing import List

from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "StepLR", "CosineAnnealingLR", "ReduceLROnPlateau"]


class LRScheduler:
    """Base class storing the optimizer and its initial learning rate."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)  # type: ignore[attr-defined]
        self.last_step = 0
        self.history: List[float] = [self.base_lr]

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.last_step += 1
        lr = self.get_lr()
        self.optimizer.lr = lr  # type: ignore[attr-defined]
        self.history.append(lr)
        return lr

    def state_dict(self) -> dict:
        """Schedule progress (step counter, LR trace, current optimizer LR)."""
        return {
            "last_step": self.last_step,
            "base_lr": self.base_lr,
            "history": list(self.history),
            "optimizer_lr": float(self.optimizer.lr),  # type: ignore[attr-defined]
        }

    def load_state_dict(self, state: dict) -> None:
        self.last_step = int(state["last_step"])
        self.base_lr = float(state.get("base_lr", self.base_lr))
        self.history = [float(lr) for lr in state.get("history", self.history)]
        self.optimizer.lr = float(state.get("optimizer_lr", self.history[-1]))  # type: ignore[attr-defined]


class ConstantLR(LRScheduler):
    def get_lr(self) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` scheduler steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.last_step // self.step_size))


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_step, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * progress))


class ReduceLROnPlateau(LRScheduler):
    """Halve (by ``factor``) the LR when a monitored metric stops improving."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 10,
        min_lr: float = 1e-6,
        threshold: float = 1e-4,
    ) -> None:
        super().__init__(optimizer)
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self._best = math.inf
        self._bad_steps = 0
        self._current = self.base_lr

    def get_lr(self) -> float:
        return self._current

    def step_metric(self, metric: float) -> float:
        """Update with the latest validation metric and return the new LR."""
        if metric < self._best - self.threshold:
            self._best = metric
            self._bad_steps = 0
        else:
            self._bad_steps += 1
            if self._bad_steps > self.patience:
                self._current = max(self._current * self.factor, self.min_lr)
                self._bad_steps = 0
        return self.step()

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["best"] = self._best
        state["bad_steps"] = self._bad_steps
        state["current"] = self._current
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._best = float(state.get("best", math.inf))
        self._bad_steps = int(state.get("bad_steps", 0))
        self._current = float(state.get("current", self.optimizer.lr))  # type: ignore[attr-defined]
