"""A small reverse-mode automatic-differentiation engine on NumPy arrays.

This module is the substitute for PyTorch's tensor/autograd machinery (the
paper trains its surrogates with PyTorch).  Only the functionality required by
dense multilayer perceptrons is implemented, but it is implemented carefully:

* full broadcasting support in every binary operation (gradients are
  "un-broadcast" by summing over the broadcast axes),
* a topological-order backward pass over the recorded operation graph,
* gradient accumulation into leaf tensors (``requires_grad=True``),
* ``no_grad`` context to disable graph recording during inference/validation.

The engine is validated against central finite differences in
:mod:`repro.nn.grad_check` and by property-based tests.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence[float]]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes where the original size was 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """N-dimensional array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array content (copied to ``float64`` unless already a float array).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # ensure ndarray.__op__(Tensor) defers to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._parents: Tuple[Tensor, ...] = _parents if _GRAD_ENABLED else ()
        self._backward: Optional[Callable[[np.ndarray], None]] = _backward if _GRAD_ENABLED else None
        self.name = name

    # ------------------------------------------------------------------ info
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------- graph ops
    def _needs_graph(self, *others: "Tensor") -> bool:
        return _GRAD_ENABLED and (self.requires_grad or any(o.requires_grad for o in others))

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        if not (_GRAD_ENABLED and requires):
            return Tensor(data, requires_grad=False)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to 1.0 and must have the same shape as the tensor.
        Gradients are accumulated into every reachable tensor that has
        ``requires_grad=True``.
        """
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.shape}")

        # Topological sort of the sub-graph reachable from self.
        topo: List[Tensor] = []
        visited: Set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor.
                node._accumulate(node_grad)
            if node._backward is not None:
                # Intermediate op: _backward distributes into a per-call dict.
                node._route_backward(node_grad, grads)

    def _route_backward(self, grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Invoke the op's backward function, collecting parent gradients."""
        assert self._backward is not None
        contributions = self._backward(grad)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None:
                continue
            if not (parent.requires_grad or parent._backward is not None):
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contribution
            else:
                grads[key] = contribution

    # --------------------------------------------------------- binary ops
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(grad, other_t.data.shape),
            )

        return self._make(self.data + other_t.data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.data.shape),
                _unbroadcast(-grad, other_t.data.shape),
            )

        return self._make(self.data - other_t.data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        a, b = self.data, other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * b, a.shape),
                _unbroadcast(grad * a, b.shape),
            )

        return self._make(a * b, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        a, b = self.data, other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / b, a.shape),
                _unbroadcast(-grad * a / (b * b), b.shape),
            )

        return self._make(a / b, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return self._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        a = self.data

        def backward(grad: np.ndarray):
            return (grad * exponent * np.power(a, exponent - 1),)

        return self._make(np.power(a, exponent), (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting (n,k)@(k,m), (k,)@(k,m) and (n,k)@(k,)."""
        other_t = as_tensor(other)
        a, b = self.data, other_t.data
        out = a @ b

        def backward(grad: np.ndarray):
            a_local, b_local = a, b
            grad_local = grad
            # Promote vectors to matrices to make the adjoint formulas uniform.
            a2 = a_local[None, :] if a_local.ndim == 1 else a_local
            b2 = b_local[:, None] if b_local.ndim == 1 else b_local
            if a_local.ndim == 1 and b_local.ndim == 1:
                g2 = np.array([[grad_local]]) if np.ndim(grad_local) == 0 else grad_local.reshape(1, 1)
            elif a_local.ndim == 1:
                g2 = grad_local[None, :]
            elif b_local.ndim == 1:
                g2 = grad_local[:, None]
            else:
                g2 = grad_local
            grad_a = g2 @ b2.T
            grad_b = a2.T @ g2
            if a_local.ndim == 1:
                grad_a = grad_a.reshape(a_local.shape)
            if b_local.ndim == 1:
                grad_b = grad_b.reshape(b_local.shape)
            return grad_a, grad_b

        return self._make(out, (self, other_t), backward)

    # ---------------------------------------------------------- unary ops
    def relu(self) -> "Tensor":
        mask = self.data > 0.0

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return self._make(self.data * mask, (self,), backward)

    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * out,)

        return self._make(out, (self,), backward)

    def log(self) -> "Tensor":
        a = self.data

        def backward(grad: np.ndarray):
            return (grad / a,)

        return self._make(np.log(a), (self,), backward)

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - out * out),)

        return self._make(out, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * out * (1.0 - out),)

        return self._make(out, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray):
            return (grad * sign,)

        return self._make(np.abs(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / out,)

        return self._make(out, (self,), backward)

    # ------------------------------------------------------- shape ops
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        def backward(grad: np.ndarray):
            if axes is None:
                return (grad.transpose(),)
            inverse = np.argsort(axes)
            return (grad.transpose(inverse),)

        return self._make(self.data.transpose(axes), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        original_shape = self.data.shape

        def backward(grad: np.ndarray):
            full = np.zeros(original_shape, dtype=np.float64)
            np.add.at(full, index, grad)
            return (full,)

        return self._make(self.data[index], (self,), backward)

    # --------------------------------------------------------- reductions
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        original_shape = self.data.shape

        def backward(grad: np.ndarray):
            g = np.asarray(grad, dtype=np.float64)
            if axis is None:
                return (np.broadcast_to(g, original_shape).copy(),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                g = np.expand_dims(g, axis=tuple(a % len(original_shape) for a in axes))
            return (np.broadcast_to(g, original_shape).copy(),)

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        original_shape = self.data.shape
        if axis is None:
            denom = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            denom = int(np.prod([original_shape[a] for a in axes]))

        def backward(grad: np.ndarray):
            g = np.asarray(grad, dtype=np.float64) / denom
            if axis is None:
                return (np.broadcast_to(g, original_shape).copy(),)
            axes_local = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                g = np.expand_dims(g, axis=tuple(a % len(original_shape) for a in axes_local))
            return (np.broadcast_to(g, original_shape).copy(),)

        return self._make(self.data.mean(axis=axis, keepdims=keepdims), (self,), backward)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)
        original = self.data

        def backward(grad: np.ndarray):
            if axis is None:
                mask = (original == original.max()).astype(np.float64)
                mask /= mask.sum()
                return (mask * grad,)
            expanded = out if keepdims else np.expand_dims(out, axis)
            mask = (original == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            g = grad if keepdims else np.expand_dims(grad, axis)
            return (mask * g,)

        return self._make(out, (self,), backward)

    # --------------------------------------------------------- comparisons
    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:  # type: ignore[override]
        if isinstance(other, Tensor):
            return bool(np.array_equal(self.data, other.data))
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce a value to :class:`Tensor` without copying existing tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable w.r.t. every input."""
    tensor_list = list(tensors)
    arrays = [t.data for t in tensor_list]
    out = np.stack(arrays, axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(tensor_list), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    proto = tensor_list[0]
    return proto._make(out, tuple(tensor_list), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensor_list = list(tensors)
    arrays = [t.data for t in tensor_list]
    out = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        return tuple(np.split(grad, boundaries, axis=axis))

    proto = tensor_list[0]
    return proto._make(out, tuple(tensor_list), backward)
