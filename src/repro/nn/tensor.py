"""A small reverse-mode automatic-differentiation engine on NumPy arrays.

This module is the substitute for PyTorch's tensor/autograd machinery (the
paper trains its surrogates with PyTorch).  It is built around an explicit
*recorded op graph*:

* every differentiable operation records a :class:`Node` — the op name, the
  parent tensors and the saved forward values its backward pass needs,
* backward passes are *derived* from the recorded graph: a topological-order
  walk looks each node's vector-Jacobian product (VJP) up in the
  :data:`VJPS` registry (see :func:`register_vjp`) and accumulates parent
  gradients — no layer hand-wires its own backward,
* a :class:`Tape` context optionally records the nodes of a forward pass in
  execution order, for introspection, testing and overhead measurement,
* full broadcasting support in every binary operation (gradients are
  "un-broadcast" by summing over the broadcast axes),
* gradient accumulation into leaf tensors (``requires_grad=True``),
* ``no_grad`` context to disable graph recording during inference/validation.

Fused kernels stay *op-level*: :func:`repro.nn.functional.linear` records a
single ``"linear"`` node whose registered VJP is the fused one-GEMM backward,
so deriving gradients from the graph costs nothing on the MLP hot path.

The engine is validated against central finite differences in
:mod:`repro.nn.grad_check`, by property-based sweeps over every registered
op, and by exact-equality oracle tests replaying the historical hand-wired
backward implementations (``tests/nn/test_tape_oracle.py``).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = [
    "Node",
    "Tape",
    "Tensor",
    "as_tensor",
    "is_grad_enabled",
    "needs_grad",
    "no_grad",
    "register_vjp",
    "vjp_names",
]

ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence[float]]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


# ---------------------------------------------------------------------------
# VJP registry: op name -> vector-Jacobian product
# ---------------------------------------------------------------------------

#: op name → ``vjp(node, grad) -> tuple`` of per-parent gradient arrays
#: (``None`` entries mean "no gradient flows into this parent")
VJPS: Dict[str, Callable[["Node", np.ndarray], Tuple[Optional[np.ndarray], ...]]] = {}


def register_vjp(op: str, fn: Optional[Callable] = None, *, overwrite: bool = False) -> Callable:
    """Register the backward rule of a primitive op; usable as a decorator.

    The VJP receives the recorded :class:`Node` and the upstream gradient and
    returns one gradient array per parent (``None`` to skip a parent — the
    dead-input optimisation).  Registering an existing name raises unless
    ``overwrite=True``, so typos cannot silently shadow a kernel.
    """

    def _store(vjp_fn: Callable) -> Callable:
        if op in VJPS and not overwrite:
            raise ValueError(f"VJP for op {op!r} is already registered; pass overwrite=True")
        VJPS[op] = vjp_fn
        return vjp_fn

    if fn is None:
        return _store
    return _store(fn)


def vjp_names() -> List[str]:
    """Sorted names of every op with a registered backward rule."""
    return sorted(VJPS)


class Node:
    """One recorded primitive operation of the autograd graph.

    A node stores only what the backward pass needs: the op name (the
    :data:`VJPS` key), the parent tensors the gradients flow into, and the
    ``saved`` forward values of the op (arrays, shapes, axes...).  The
    output tensor holds its creating node in :attr:`Tensor.grad_fn`.
    """

    __slots__ = ("op", "parents", "saved")

    def __init__(self, op: str, parents: Tuple["Tensor", ...], saved: Tuple = ()) -> None:
        self.op = op
        self.parents = parents
        self.saved = saved

    def vjp(self, grad: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:
        """Per-parent gradient contributions for an upstream gradient."""
        try:
            rule = VJPS[self.op]
        except KeyError:
            raise KeyError(
                f"op {self.op!r} has no registered VJP; available: {vjp_names()}"
            ) from None
        return rule(self, grad)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Node(op={self.op!r}, n_parents={len(self.parents)})"


class Tape:
    """Explicit recording of the ops executed during a forward pass.

    The graph itself always lives on the tensors (every op output keeps its
    :class:`Node`); a tape additionally records those nodes *in execution
    order* while active, which makes the recorded program inspectable::

        with Tape() as tape:
            loss = F.mse_loss(model(x), y)
        assert "linear" in tape.ops()

    Tapes nest (the innermost active tape records); recording costs one list
    append per op and is measured by the ``nn/tape_overhead`` bench scenario.
    """

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self._previous: Optional["Tape"] = None

    def __enter__(self) -> "Tape":
        global _ACTIVE_TAPE
        self._previous = _ACTIVE_TAPE
        _ACTIVE_TAPE = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE_TAPE
        _ACTIVE_TAPE = self._previous
        self._previous = None

    def ops(self) -> List[str]:
        """Op names in execution order."""
        return [node.op for node in self.nodes]

    def counts(self) -> Dict[str, int]:
        """Number of recorded nodes per op name."""
        totals: Dict[str, int] = {}
        for node in self.nodes:
            totals[node.op] = totals.get(node.op, 0) + 1
        return totals

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tape({len(self.nodes)} nodes)"


_ACTIVE_TAPE: Optional[Tape] = None


def needs_grad(tensor: "Tensor") -> bool:
    """Whether a backward pass must propagate a gradient into ``tensor``.

    True for leaves that accumulate (``requires_grad``) and for op outputs
    (gradient must flow *through* them).  VJPs use this to skip dead inputs —
    e.g. the batch input of the first layer, which is the usual case.
    """
    return tensor.requires_grad or tensor.grad_fn is not None


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes where the original size was 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """N-dimensional array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array content (copied to ``float64`` unless already a float array).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "grad_fn", "name")
    __array_priority__ = 100  # ensure ndarray.__op__(Tensor) defers to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        #: the :class:`Node` that produced this tensor (None for leaves)
        self.grad_fn: Optional[Node] = None
        self.name = name

    # ------------------------------------------------------------------ info
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but severed from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------- graph ops
    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        op: str,
        saved: Tuple = (),
    ) -> "Tensor":
        """Record one op: build the output tensor and its graph node."""
        requires = any(p.requires_grad for p in parents)
        if not (_GRAD_ENABLED and requires):
            return Tensor(data, requires_grad=False)
        node = Node(op, parents, saved)
        if _ACTIVE_TAPE is not None:
            _ACTIVE_TAPE.nodes.append(node)
        out = Tensor(data, requires_grad=True)
        out.grad_fn = node
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        ``grad`` defaults to 1.0 and must have the same shape as the tensor.
        The backward pass is *derived* from the recorded graph: nodes are
        visited in reverse topological order and each op's registered VJP
        distributes the upstream gradient to its parents.  Gradients are
        accumulated into every reachable tensor with ``requires_grad=True``.
        """
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.shape}")

        # Topological sort of the sub-graph reachable from self.
        topo: List[Tensor] = []
        visited: Set[int] = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            tensor, processed = stack.pop()
            if processed:
                topo.append(tensor)
                continue
            if id(tensor) in visited:
                continue
            visited.add(id(tensor))
            stack.append((tensor, True))
            if tensor.grad_fn is not None:
                for parent in tensor.grad_fn.parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for tensor in reversed(topo):
            tensor_grad = grads.pop(id(tensor), None)
            if tensor_grad is None:
                continue
            if tensor.requires_grad and tensor.grad_fn is None:
                # Leaf tensor.
                tensor._accumulate(tensor_grad)
            if tensor.grad_fn is not None:
                # Recorded op: its VJP distributes into the per-call dict.
                tensor._route_backward(tensor_grad, grads)

    def _route_backward(self, grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Invoke the node's registered VJP, collecting parent gradients."""
        node = self.grad_fn
        assert node is not None
        contributions = node.vjp(grad)
        for parent, contribution in zip(node.parents, contributions):
            if contribution is None:
                continue
            if not needs_grad(parent):
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contribution
            else:
                grads[key] = contribution

    # --------------------------------------------------------- binary ops
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        return self._make(self.data + other_t.data, (self, other_t), "add")

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        return self._make(self.data - other_t.data, (self, other_t), "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        a, b = self.data, other_t.data
        return self._make(a * b, (self, other_t), "mul", saved=(a, b))

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = as_tensor(other)
        a, b = self.data, other_t.data
        return self._make(a / b, (self, other_t), "div", saved=(a, b))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self._make(-self.data, (self,), "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        return self._make(np.power(self.data, exponent), (self,), "pow", saved=(self.data, exponent))

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product supporting (n,k)@(k,m), (k,)@(k,m) and (n,k)@(k,)."""
        other_t = as_tensor(other)
        a, b = self.data, other_t.data
        return self._make(a @ b, (self, other_t), "matmul", saved=(a, b))

    # ---------------------------------------------------------- unary ops
    def relu(self) -> "Tensor":
        mask = self.data > 0.0
        return self._make(self.data * mask, (self,), "relu", saved=(mask,))

    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return self._make(out, (self,), "exp", saved=(out,))

    def log(self) -> "Tensor":
        return self._make(np.log(self.data), (self,), "log", saved=(self.data,))

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return self._make(out, (self,), "tanh", saved=(out,))

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))
        return self._make(out, (self,), "sigmoid", saved=(out,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return self._make(np.abs(self.data), (self,), "abs", saved=(sign,))

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return self._make(out, (self,), "sqrt", saved=(out,))

    # ------------------------------------------------------- shape ops
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return self._make(self.data.reshape(shape), (self,), "reshape", saved=(original,))

    def transpose(self, axes: Optional[Tuple[int, ...]] = None) -> "Tensor":
        return self._make(self.data.transpose(axes), (self,), "transpose", saved=(axes,))

    def __getitem__(self, index) -> "Tensor":
        return self._make(self.data[index], (self,), "getitem", saved=(self.data.shape, index))

    # --------------------------------------------------------- reductions
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        return self._make(
            self.data.sum(axis=axis, keepdims=keepdims),
            (self,),
            "sum",
            saved=(self.data.shape, axis, keepdims),
        )

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        original_shape = self.data.shape
        if axis is None:
            denom = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            denom = int(np.prod([original_shape[a] for a in axes]))
        return self._make(
            self.data.mean(axis=axis, keepdims=keepdims),
            (self,),
            "mean",
            saved=(original_shape, axis, keepdims, denom),
        )

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)
        return self._make(out, (self,), "max", saved=(self.data, out, axis, keepdims))

    # --------------------------------------------------------- comparisons
    def __len__(self) -> int:
        return len(self.data)

    def __eq__(self, other: object) -> bool:  # type: ignore[override]
        if isinstance(other, Tensor):
            return bool(np.array_equal(self.data, other.data))
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce a value to :class:`Tensor` without copying existing tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable w.r.t. every input."""
    tensor_list = list(tensors)
    arrays = [t.data for t in tensor_list]
    out = np.stack(arrays, axis=axis)
    proto = tensor_list[0]
    return proto._make(out, tuple(tensor_list), "stack", saved=(len(tensor_list), axis))


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensor_list = list(tensors)
    arrays = [t.data for t in tensor_list]
    out = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    boundaries = np.cumsum(sizes)[:-1]
    proto = tensor_list[0]
    return proto._make(out, tuple(tensor_list), "concatenate", saved=(boundaries, axis))


# ---------------------------------------------------------------------------
# VJPs of the primitive ops.
#
# Every rule is the *exact arithmetic* of the historical hand-wired backward
# closures (same numpy expressions, same evaluation order), so gradients are
# bit-identical to the pre-tape engine — proven by the oracle tests in
# ``tests/nn/test_tape_oracle.py``.
# ---------------------------------------------------------------------------


@register_vjp("add")
def _vjp_add(node: Node, grad: np.ndarray):
    a, b = node.parents
    return (
        _unbroadcast(grad, a.data.shape),
        _unbroadcast(grad, b.data.shape),
    )


@register_vjp("sub")
def _vjp_sub(node: Node, grad: np.ndarray):
    a, b = node.parents
    return (
        _unbroadcast(grad, a.data.shape),
        _unbroadcast(-grad, b.data.shape),
    )


@register_vjp("mul")
def _vjp_mul(node: Node, grad: np.ndarray):
    a, b = node.saved
    return (
        _unbroadcast(grad * b, a.shape),
        _unbroadcast(grad * a, b.shape),
    )


@register_vjp("div")
def _vjp_div(node: Node, grad: np.ndarray):
    a, b = node.saved
    return (
        _unbroadcast(grad / b, a.shape),
        _unbroadcast(-grad * a / (b * b), b.shape),
    )


@register_vjp("neg")
def _vjp_neg(node: Node, grad: np.ndarray):
    return (-grad,)


@register_vjp("pow")
def _vjp_pow(node: Node, grad: np.ndarray):
    a, exponent = node.saved
    return (grad * exponent * np.power(a, exponent - 1),)


@register_vjp("matmul")
def _vjp_matmul(node: Node, grad: np.ndarray):
    a_local, b_local = node.saved
    grad_local = grad
    # Promote vectors to matrices to make the adjoint formulas uniform.
    a2 = a_local[None, :] if a_local.ndim == 1 else a_local
    b2 = b_local[:, None] if b_local.ndim == 1 else b_local
    if a_local.ndim == 1 and b_local.ndim == 1:
        g2 = np.array([[grad_local]]) if np.ndim(grad_local) == 0 else grad_local.reshape(1, 1)
    elif a_local.ndim == 1:
        g2 = grad_local[None, :]
    elif b_local.ndim == 1:
        g2 = grad_local[:, None]
    else:
        g2 = grad_local
    grad_a = g2 @ b2.T
    grad_b = a2.T @ g2
    if a_local.ndim == 1:
        grad_a = grad_a.reshape(a_local.shape)
    if b_local.ndim == 1:
        grad_b = grad_b.reshape(b_local.shape)
    return grad_a, grad_b


@register_vjp("relu")
def _vjp_relu(node: Node, grad: np.ndarray):
    (mask,) = node.saved
    return (grad * mask,)


@register_vjp("exp")
def _vjp_exp(node: Node, grad: np.ndarray):
    (out,) = node.saved
    return (grad * out,)


@register_vjp("log")
def _vjp_log(node: Node, grad: np.ndarray):
    (a,) = node.saved
    return (grad / a,)


@register_vjp("tanh")
def _vjp_tanh(node: Node, grad: np.ndarray):
    (out,) = node.saved
    return (grad * (1.0 - out * out),)


@register_vjp("sigmoid")
def _vjp_sigmoid(node: Node, grad: np.ndarray):
    (out,) = node.saved
    return (grad * out * (1.0 - out),)


@register_vjp("abs")
def _vjp_abs(node: Node, grad: np.ndarray):
    (sign,) = node.saved
    return (grad * sign,)


@register_vjp("sqrt")
def _vjp_sqrt(node: Node, grad: np.ndarray):
    (out,) = node.saved
    return (grad * 0.5 / out,)


@register_vjp("reshape")
def _vjp_reshape(node: Node, grad: np.ndarray):
    (original,) = node.saved
    return (grad.reshape(original),)


@register_vjp("transpose")
def _vjp_transpose(node: Node, grad: np.ndarray):
    (axes,) = node.saved
    if axes is None:
        return (grad.transpose(),)
    inverse = np.argsort(axes)
    return (grad.transpose(inverse),)


@register_vjp("getitem")
def _vjp_getitem(node: Node, grad: np.ndarray):
    original_shape, index = node.saved
    full = np.zeros(original_shape, dtype=np.float64)
    np.add.at(full, index, grad)
    return (full,)


@register_vjp("sum")
def _vjp_sum(node: Node, grad: np.ndarray):
    original_shape, axis, keepdims = node.saved
    g = np.asarray(grad, dtype=np.float64)
    if axis is None:
        return (np.broadcast_to(g, original_shape).copy(),)
    axes = axis if isinstance(axis, tuple) else (axis,)
    if not keepdims:
        g = np.expand_dims(g, axis=tuple(a % len(original_shape) for a in axes))
    return (np.broadcast_to(g, original_shape).copy(),)


@register_vjp("mean")
def _vjp_mean(node: Node, grad: np.ndarray):
    original_shape, axis, keepdims, denom = node.saved
    g = np.asarray(grad, dtype=np.float64) / denom
    if axis is None:
        return (np.broadcast_to(g, original_shape).copy(),)
    axes_local = axis if isinstance(axis, tuple) else (axis,)
    if not keepdims:
        g = np.expand_dims(g, axis=tuple(a % len(original_shape) for a in axes_local))
    return (np.broadcast_to(g, original_shape).copy(),)


@register_vjp("max")
def _vjp_max(node: Node, grad: np.ndarray):
    original, out, axis, keepdims = node.saved
    if axis is None:
        mask = (original == original.max()).astype(np.float64)
        mask /= mask.sum()
        return (mask * grad,)
    expanded = out if keepdims else np.expand_dims(out, axis)
    mask = (original == expanded).astype(np.float64)
    mask /= mask.sum(axis=axis, keepdims=True)
    g = grad if keepdims else np.expand_dims(grad, axis)
    return (mask * g,)


@register_vjp("stack")
def _vjp_stack(node: Node, grad: np.ndarray):
    n, axis = node.saved
    pieces = np.split(grad, n, axis=axis)
    return tuple(np.squeeze(p, axis=axis) for p in pieces)


@register_vjp("concatenate")
def _vjp_concatenate(node: Node, grad: np.ndarray):
    boundaries, axis = node.saved
    return tuple(np.split(grad, boundaries, axis=axis))
