"""First-order optimizers (SGD, Adam, AdamW).

The paper trains every surrogate with Adam at learning rate ``1e-3`` (Section
4); SGD and AdamW are provided for the ablation benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base class: holds the parameter list and the ``zero_grad`` helper."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.step_count = 0

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        return {"step_count": self.step_count}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self.step_count = int(state.get("step_count", 0))


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if momentum < 0:
            raise ValueError("momentum must be non-negative")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = [None if v is None else v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        if "velocity" in state:
            velocity = state["velocity"]  # type: ignore[assignment]
            if len(velocity) != len(self._velocity):  # type: ignore[arg-type]
                raise ValueError(
                    f"velocity state has {len(velocity)} entries, "  # type: ignore[arg-type]
                    f"optimizer has {len(self._velocity)} parameters"
                )
            self._velocity = [
                None if v is None else np.array(v, dtype=np.float64, copy=True)
                for v in velocity  # type: ignore[union-attr]
            ]

    def step(self) -> None:
        self.step_count += 1
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(param.data)
                velocity = self._velocity[index]
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._v: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        # Per-parameter scratch buffers: step() is the per-batch hot path and
        # would otherwise allocate ~6 temporaries per parameter per call.
        self._scratch: List[np.ndarray] = [np.empty_like(p.data) for p in self.parameters]
        self._scratch2: List[np.ndarray] = [np.empty_like(p.data) for p in self.parameters]

    def _apply_weight_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def step(self) -> None:
        """One Adam update over every parameter that has a gradient.

        The update is written with explicit ``out=`` buffers but performs the
        *exact* scalar-by-scalar operation sequence of the textbook form
        (``m/bias1``, ``sqrt(v/bias2) + eps``, ``lr·m̂/denom``), so results
        are bit-identical to the allocating implementation it replaced.
        """
        self.step_count += 1
        t = self.step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = self._apply_weight_decay(param, param.grad)
            m = self._m[index]
            v = self._v[index]
            s1 = self._scratch[index]
            s2 = self._scratch2[index]
            # m ← β₁·m + (1-β₁)·grad ; v ← β₂·v + (1-β₂)·grad²
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s1)
            m += s1
            v *= self.beta2
            np.multiply(grad, 1.0 - self.beta2, out=s1)
            np.multiply(s1, grad, out=s1)
            v += s1
            # denom ← sqrt(v/bias2) + eps ; update ← (lr·(m/bias1)) / denom
            np.divide(v, bias2, out=s1)
            np.sqrt(s1, out=s1)
            s1 += self.eps
            np.divide(m, bias1, out=s2)
            np.multiply(s2, self.lr, out=s2)
            np.divide(s2, s1, out=s2)
            param.data -= s2

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        for key, buffers in (("m", self._m), ("v", self._v)):
            if key not in state:
                continue
            values = state[key]
            if len(values) != len(buffers):  # type: ignore[arg-type]
                raise ValueError(
                    f"Adam {key!r} state has {len(values)} entries, "  # type: ignore[arg-type]
                    f"optimizer has {len(buffers)} parameters"
                )
            for dst, src in zip(buffers, values):  # type: ignore[arg-type]
                dst[...] = src


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def _apply_weight_decay(self, param: Parameter, grad: np.ndarray) -> np.ndarray:
        # Decoupled: decay applied directly to weights, not folded into grads.
        if self.weight_decay:
            param.data -= self.lr * self.weight_decay * param.data
        return grad
