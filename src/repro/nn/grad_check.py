"""Finite-difference gradient checking for the autograd engine.

The harness verifies that analytic gradients produced by the recorded-graph
backward pass (:meth:`repro.nn.tensor.Tensor.backward`) match central finite
differences.  It has two layers:

* the low-level helpers (:func:`numerical_gradient`, :func:`check_gradients`,
  :func:`check_module_gradients`) kept for backward compatibility, and
* the reporting harness (:func:`grad_check_module`,
  :func:`assert_module_gradients`) producing a per-parameter
  :class:`GradCheckReport` with named failures and relative errors — the
  engine of the seeded property-based sweep in ``tests/nn/test_grad_sweep.py``
  and the recommended tool for downstream users extending the layer zoo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = [
    "GradCheckEntry",
    "GradCheckReport",
    "assert_module_gradients",
    "check_gradients",
    "check_module_gradients",
    "grad_check_module",
    "numerical_gradient",
]


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        f_plus = fn(x)
        flat[index] = original - epsilon
        f_minus = fn(x)
        flat[index] = original
        grad_flat[index] = (f_plus - f_minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Compare autograd gradients of ``fn`` (scalar output) with finite differences."""
    x = np.asarray(x, dtype=np.float64)
    tensor = Tensor(x.copy(), requires_grad=True)
    out = fn(tensor)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    analytic = tensor.grad
    if analytic is None:
        raise RuntimeError("no gradient was accumulated on the input tensor")

    def scalar_fn(arr: np.ndarray) -> float:
        return float(fn(Tensor(arr)).item())

    numeric = numerical_gradient(scalar_fn, x.copy(), epsilon=epsilon)
    return bool(np.allclose(analytic, numeric, rtol=rtol, atol=atol))


# ---------------------------------------------------------------------------
# Reporting harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GradCheckEntry:
    """Finite-difference verdict for one named parameter."""

    name: str
    max_abs_error: float
    max_rel_error: float
    passed: bool

    def describe(self) -> str:
        status = "ok" if self.passed else "FAIL"
        return (
            f"{self.name}: {status} "
            f"(max abs err {self.max_abs_error:.3e}, max rel err {self.max_rel_error:.3e})"
        )


@dataclass(frozen=True)
class GradCheckReport:
    """Per-parameter finite-difference comparison of a module's gradients."""

    entries: List[GradCheckEntry]

    @property
    def ok(self) -> bool:
        return all(entry.passed for entry in self.entries)

    @property
    def failures(self) -> List[str]:
        """Names of every parameter whose analytic gradient did not match."""
        return [entry.name for entry in self.entries if not entry.passed]

    def describe(self) -> str:
        """Human-readable multi-line report (failures first)."""
        ordered = sorted(self.entries, key=lambda e: e.passed)
        lines = [entry.describe() for entry in ordered]
        verdict = "all gradients match" if self.ok else f"FAILED parameters: {self.failures}"
        return "\n".join([verdict, *lines])


def _entry(
    name: str,
    analytic: Optional[np.ndarray],
    numeric: np.ndarray,
    rtol: float,
    atol: float,
) -> GradCheckEntry:
    if analytic is None:
        return GradCheckEntry(name, float("inf"), float("inf"), passed=False)
    abs_error = np.abs(analytic - numeric)
    # Relative error against the larger magnitude, guarded for zeros.
    scale = np.maximum(np.abs(numeric), np.abs(analytic))
    rel_error = abs_error / np.where(scale > 0.0, scale, 1.0)
    passed = bool(np.allclose(analytic, numeric, rtol=rtol, atol=atol))
    return GradCheckEntry(
        name,
        float(abs_error.max()) if abs_error.size else 0.0,
        float(rel_error.max()) if rel_error.size else 0.0,
        passed,
    )


def grad_check_module(
    module: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    loss_fn: Callable[[Tensor, Tensor], Tensor],
    parameters: Sequence[str] | None = None,
    epsilon: float = 1e-6,
    rtol: float = 1e-3,
    atol: float = 1e-5,
) -> GradCheckReport:
    """Central-difference check of every (or a subset of) module parameter(s).

    Returns a :class:`GradCheckReport` whose entries carry the parameter
    name and its maximum absolute/relative error — failures are *named*, so
    a sweep over architectures pinpoints the offending layer immediately.
    """
    x = Tensor(np.asarray(inputs, dtype=np.float64))
    y = Tensor(np.asarray(targets, dtype=np.float64))

    module.zero_grad()
    loss = loss_fn(module(x), y)
    loss.backward()

    entries: List[GradCheckEntry] = []
    named = dict(module.named_parameters())
    names = list(named) if parameters is None else list(parameters)
    for name in names:
        param = named[name]
        numeric = np.zeros_like(param.data)
        flat = param.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + epsilon
            f_plus = float(loss_fn(module(x), y).item())
            flat[index] = original - epsilon
            f_minus = float(loss_fn(module(x), y).item())
            flat[index] = original
            numeric_flat[index] = (f_plus - f_minus) / (2.0 * epsilon)
        entries.append(_entry(name, param.grad, numeric, rtol, atol))
    return GradCheckReport(entries)


def assert_module_gradients(
    module: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    loss_fn: Callable[[Tensor, Tensor], Tensor],
    parameters: Sequence[str] | None = None,
    epsilon: float = 1e-6,
    rtol: float = 1e-3,
    atol: float = 1e-5,
) -> GradCheckReport:
    """Raise ``AssertionError`` (naming every failing parameter) on mismatch."""
    report = grad_check_module(
        module, inputs, targets, loss_fn,
        parameters=parameters, epsilon=epsilon, rtol=rtol, atol=atol,
    )
    if not report.ok:
        raise AssertionError(f"gradient check failed:\n{report.describe()}")
    return report


def check_module_gradients(
    module: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    loss_fn: Callable[[Tensor, Tensor], Tensor],
    parameters: Sequence[str] | None = None,
    epsilon: float = 1e-6,
    rtol: float = 1e-3,
    atol: float = 1e-5,
) -> dict[str, bool]:
    """Boolean per-parameter verdicts (compatibility wrapper over the report)."""
    report = grad_check_module(
        module, inputs, targets, loss_fn,
        parameters=parameters, epsilon=epsilon, rtol=rtol, atol=atol,
    )
    return {entry.name: entry.passed for entry in report.entries}
