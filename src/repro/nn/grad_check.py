"""Finite-difference gradient checking for the autograd engine.

Used by the test suite (and available to downstream users extending the layer
zoo) to verify that analytic gradients produced by
:meth:`repro.nn.tensor.Tensor.backward` match central finite differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.module import Module
from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients", "check_module_gradients"]


def numerical_gradient(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central finite-difference gradient of a scalar function of an array."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        f_plus = fn(x)
        flat[index] = original - epsilon
        f_minus = fn(x)
        flat[index] = original
        grad_flat[index] = (f_plus - f_minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[[Tensor], Tensor],
    x: np.ndarray,
    epsilon: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Compare autograd gradients of ``fn`` (scalar output) with finite differences."""
    x = np.asarray(x, dtype=np.float64)
    tensor = Tensor(x.copy(), requires_grad=True)
    out = fn(tensor)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    analytic = tensor.grad
    if analytic is None:
        raise RuntimeError("no gradient was accumulated on the input tensor")

    def scalar_fn(arr: np.ndarray) -> float:
        return float(fn(Tensor(arr)).item())

    numeric = numerical_gradient(scalar_fn, x.copy(), epsilon=epsilon)
    return bool(np.allclose(analytic, numeric, rtol=rtol, atol=atol))


def check_module_gradients(
    module: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    loss_fn: Callable[[Tensor, Tensor], Tensor],
    parameters: Sequence[str] | None = None,
    epsilon: float = 1e-6,
    rtol: float = 1e-3,
    atol: float = 1e-5,
) -> dict[str, bool]:
    """Gradient-check every (or a subset of) parameter(s) of a module.

    Returns a mapping ``parameter name -> bool`` indicating whether the
    analytic gradient matched finite differences.
    """
    x = Tensor(np.asarray(inputs, dtype=np.float64))
    y = Tensor(np.asarray(targets, dtype=np.float64))

    module.zero_grad()
    loss = loss_fn(module(x), y)
    loss.backward()

    results: dict[str, bool] = {}
    named = dict(module.named_parameters())
    names = list(named) if parameters is None else list(parameters)
    for name in names:
        param = named[name]
        analytic = param.grad
        if analytic is None:
            results[name] = False
            continue
        numeric = np.zeros_like(param.data)
        flat = param.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + epsilon
            f_plus = float(loss_fn(module(x), y).item())
            flat[index] = original - epsilon
            f_minus = float(loss_fn(module(x), y).item())
            flat[index] = original
            numeric_flat[index] = (f_plus - f_minus) / (2.0 * epsilon)
        results[name] = bool(np.allclose(analytic, numeric, rtol=rtol, atol=atol))
    return results
