"""Weight-initialisation schemes for dense and convolutional layers.

The paper's surrogates are ReLU MLPs; we default to Kaiming-uniform
initialisation (the PyTorch ``nn.Linear`` default) so that training dynamics
are comparable to the original implementation.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "zeros",
    "uniform_bias",
]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in/fan-out of a weight shape.

    2-D shapes are dense ``(out, in)`` layouts; 4-D shapes are convolution
    kernels ``(out_channels, in_channels, kh, kw)``, whose fans follow the
    PyTorch convention (channels × receptive-field size).
    """
    if len(shape) == 2:
        out_features, in_features = shape
        return in_features, out_features
    if len(shape) == 4:
        out_channels, in_channels, kh, kw = shape
        receptive = kh * kw
        return in_channels * receptive, out_channels * receptive
    raise ValueError(f"initialisers expect 2-D (dense) or 4-D (conv) weight shapes, got {shape}")


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, a: float = math.sqrt(5)) -> np.ndarray:
    """Kaiming/He uniform init, PyTorch's default for ``nn.Linear``/``nn.Conv2d`` weights."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + a * a))
    std = gain / math.sqrt(fan_in)
    bound = math.sqrt(3.0) * std
    return rng.uniform(-bound, bound, size=shape)


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal init suited to ReLU activations."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def uniform_bias(out_features: int, in_features: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch's default bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(in_features) if in_features > 0 else 0.0
    return rng.uniform(-bound, bound, size=(out_features,))
