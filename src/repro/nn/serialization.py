"""Saving and loading model weights.

Checkpoints are stored as ``.npz`` archives (one array per state-dict entry)
plus a small JSON sidecar describing architecture hyper-parameters, which is
sufficient to resume or analyse a surrogate after an experiment.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "save_state_dict", "load_state_dict"]

_META_SUFFIX = ".meta.json"


def save_state_dict(path: str | Path, state: Dict[str, np.ndarray]) -> Path:
    """Write a state dict as an ``.npz`` archive and return the path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state)
    return path


def load_state_dict(path: str | Path) -> Dict[str, np.ndarray]:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_checkpoint(
    path: str | Path,
    model: Module,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Save model weights plus a JSON metadata sidecar."""
    path = save_state_dict(path, model.state_dict())
    meta = dict(metadata or {})
    meta.setdefault("num_parameters", model.num_parameters())
    meta_path = path.with_suffix(path.suffix + _META_SUFFIX)
    meta_path.write_text(json.dumps(meta, indent=2, sort_keys=True))
    return path


def load_checkpoint(path: str | Path, model: Module) -> Tuple[Module, Dict[str, Any]]:
    """Load weights into ``model`` in-place; returns (model, metadata)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    state = load_state_dict(path)
    model.load_state_dict(state)
    meta_path = path.with_suffix(path.suffix + _META_SUFFIX)
    metadata: Dict[str, Any] = {}
    if meta_path.exists():
        metadata = json.loads(meta_path.read_text())
    return model, metadata
