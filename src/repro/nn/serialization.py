"""Saving and loading model weights.

Checkpoints are stored as ``.npz`` archives (one array per state-dict entry)
plus a small JSON sidecar describing architecture hyper-parameters, which is
sufficient to resume or analyse a surrogate after an experiment.

Writes are *atomic*: the archive is written to a temporary file in the target
directory and moved into place with :func:`os.replace`, so a crash mid-write
can never leave a torn ``.npz`` behind — at worst a stale temporary file that
the next save overwrites.  ``compressed=True`` trades save latency for disk
space through :func:`numpy.savez_compressed`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "save_state_dict", "load_state_dict"]

_META_SUFFIX = ".meta.json"


def save_state_dict(
    path: str | Path, state: Dict[str, np.ndarray], compressed: bool = False
) -> Path:
    """Write a state dict as an ``.npz`` archive atomically and return the path.

    The archive is first written to ``<name>.tmp-<pid>`` next to the target and
    then renamed over it, so readers never observe a partially written file.
    ``compressed=True`` uses :func:`numpy.savez_compressed` (zip-deflate).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    saver = np.savez_compressed if compressed else np.savez
    try:
        with open(tmp_path, "wb") as stream:
            saver(stream, **state)
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():  # a failed save must not leave the tmp file behind
            tmp_path.unlink()
    return path


def load_state_dict(path: str | Path) -> Dict[str, np.ndarray]:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_checkpoint(
    path: str | Path,
    model: Module,
    metadata: Optional[Dict[str, Any]] = None,
    compressed: bool = False,
) -> Path:
    """Save model weights plus a JSON metadata sidecar."""
    path = save_state_dict(path, model.state_dict(), compressed=compressed)
    meta = dict(metadata or {})
    meta.setdefault("num_parameters", model.num_parameters())
    meta_path = path.with_suffix(path.suffix + _META_SUFFIX)
    tmp_meta = meta_path.with_name(f"{meta_path.name}.tmp-{os.getpid()}")
    try:
        tmp_meta.write_text(json.dumps(meta, indent=2, sort_keys=True))
        os.replace(tmp_meta, meta_path)
    finally:
        if tmp_meta.exists():  # a failed save must not leave the tmp file behind
            tmp_meta.unlink()
    return path


def load_checkpoint(
    path: str | Path,
    model: Module,
    require_metadata: bool = True,
) -> Tuple[Module, Dict[str, Any]]:
    """Load weights into ``model`` in-place; returns (model, metadata).

    A checkpoint written by :func:`save_checkpoint` always has a
    ``<name>.npz.meta.json`` sidecar; a missing one means the caller points at
    a bare weight archive (or a partially copied checkpoint), so by default a
    :class:`FileNotFoundError` naming the expected sidecar is raised instead
    of silently continuing (pass ``require_metadata=False`` to accept bare
    archives and get empty metadata).  A corrupt sidecar raises a
    :class:`ValueError` naming the file rather than a bare ``JSONDecodeError``.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    if not path.exists():
        raise FileNotFoundError(f"checkpoint archive {path} does not exist")
    state = load_state_dict(path)
    model.load_state_dict(state)
    meta_path = path.with_suffix(path.suffix + _META_SUFFIX)
    metadata: Dict[str, Any] = {}
    if not meta_path.exists():
        if require_metadata:
            raise FileNotFoundError(
                f"checkpoint metadata sidecar {meta_path} is missing; the weights "
                f"in {path.name} were loaded from an archive not written by "
                "save_checkpoint (pass require_metadata=False to accept bare "
                "weight archives)"
            )
        return model, metadata
    try:
        metadata = json.loads(meta_path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(
            f"checkpoint metadata sidecar {meta_path} is not valid JSON "
            f"(corrupt or truncated): {error}"
        ) from error
    return model, metadata
