"""Dense layers and containers used by the surrogate MLP."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Linear", "ReLU", "LeakyReLU", "Tanh", "Identity", "Dropout", "Sequential"]


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch-compatible weight layout.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias (default True).
    rng:
        Generator used for initialisation; a fresh default generator is used
        when omitted (mainly convenient in tests).
    init:
        One of ``"kaiming_uniform"`` (default), ``"kaiming_normal"``,
        ``"xavier_uniform"``, ``"xavier_normal"``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        init: str = "kaiming_uniform",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else np.random.default_rng()
        initialisers = {
            "kaiming_uniform": init_schemes.kaiming_uniform,
            "kaiming_normal": init_schemes.kaiming_normal,
            "xavier_uniform": init_schemes.xavier_uniform,
            "xavier_normal": init_schemes.xavier_normal,
        }
        if init not in initialisers:
            raise ValueError(f"unknown init scheme {init!r}; options: {sorted(initialisers)}")
        weight = initialisers[init]((out_features, in_features), rng)
        self.weight = Parameter(weight, name="weight")
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                init_schemes.uniform_bias(out_features, in_features, rng), name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class ReLU(Module):
    """Element-wise rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Ordered container applying sub-modules one after another."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = f"layer{len(self._order)}"
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterable[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x
