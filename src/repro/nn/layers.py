"""Layers and containers used by the surrogate architectures.

Dense layers power the paper's MLP surrogates; :class:`Conv2d`,
:class:`Residual` and :class:`Reshape` open the architecture registry to
convolutional and residual surrogates on top of the autograd tape (see
``docs/AUTOGRAD.md``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn import init as init_schemes
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = [
    "Linear",
    "Conv2d",
    "Residual",
    "Reshape",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Identity",
    "Dropout",
    "Sequential",
]

_INITIALISERS = {
    "kaiming_uniform": init_schemes.kaiming_uniform,
    "kaiming_normal": init_schemes.kaiming_normal,
    "xavier_uniform": init_schemes.xavier_uniform,
    "xavier_normal": init_schemes.xavier_normal,
}


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch-compatible weight layout.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to learn an additive bias (default True).
    rng:
        Generator used for initialisation; a fresh default generator is used
        when omitted (mainly convenient in tests).
    init:
        One of ``"kaiming_uniform"`` (default), ``"kaiming_normal"``,
        ``"xavier_uniform"``, ``"xavier_normal"``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        init: str = "kaiming_uniform",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng if rng is not None else np.random.default_rng()
        if init not in _INITIALISERS:
            raise ValueError(f"unknown init scheme {init!r}; options: {sorted(_INITIALISERS)}")
        weight = _INITIALISERS[init]((out_features, in_features), rng)
        self.weight = Parameter(weight, name="weight")
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                init_schemes.uniform_bias(out_features, in_features, rng), name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Conv2d(Module):
    """2-D convolution (cross-correlation), channels-first, stride 1.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of the input/output feature maps.
    kernel_size:
        Square kernel side length (or an ``(kh, kw)`` tuple).
    padding:
        Zero-padding on both spatial sides: an int, or ``"same"`` (odd
        kernels only) to preserve the spatial resolution.
    bias:
        Whether to learn a per-output-channel additive bias (default True).
    rng, init:
        As for :class:`Linear`; fans follow the PyTorch conv convention
        (``in_channels * kh * kw``).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Tuple[int, int]],
        padding: Union[int, str] = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        init: str = "kaiming_uniform",
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("Conv2d channel counts must be positive")
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        if kh <= 0 or kw <= 0:
            raise ValueError("Conv2d kernel sizes must be positive")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.padding = padding
        rng = rng if rng is not None else np.random.default_rng()
        if init not in _INITIALISERS:
            raise ValueError(f"unknown init scheme {init!r}; options: {sorted(_INITIALISERS)}")
        weight = _INITIALISERS[init]((out_channels, in_channels, kh, kw), rng)
        self.weight = Parameter(weight, name="weight")
        if bias:
            self.bias: Optional[Parameter] = Parameter(
                init_schemes.uniform_bias(out_channels, in_channels * kh * kw, rng), name="bias"
            )
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, padding=self.padding)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2d(in={self.in_channels}, out={self.out_channels}, "
            f"kernel={self.kernel_size}, padding={self.padding!r}, "
            f"bias={self.bias is not None})"
        )


class Residual(Module):
    """Skip connection ``y = x + inner(x)`` around any shape-preserving block.

    The additive join relies on the tape's gradient fan-out: the upstream
    gradient accumulates along both the identity path and the inner path.
    """

    def __init__(self, inner: Module) -> None:
        super().__init__()
        self.add_module("inner", inner)

    def forward(self, x: Tensor) -> Tensor:
        return x + self.inner(x)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Residual({self.inner!r})"


class Reshape(Module):
    """Reshape the non-batch axes (the batch axis is preserved).

    ``Reshape(4, 8, 8)`` maps ``(B, 256) -> (B, 4, 8, 8)`` — the glue between
    the dense stem and the convolutional trunk of a conv surrogate.
    """

    def __init__(self, *shape: int) -> None:
        super().__init__()
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        self.shape = tuple(int(s) for s in shape)

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape((x.shape[0],) + self.shape)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Reshape{self.shape}"


class ReLU(Module):
    """Element-wise rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return F.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)


class Sequential(Module):
    """Ordered container applying sub-modules one after another."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = f"layer{len(self._order)}"
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterable[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x
