"""Module/Parameter containers, mirroring the ``torch.nn.Module`` contract."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor flagged as trainable; collected by :meth:`Module.parameters`."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural-network components.

    Sub-modules and parameters assigned as attributes are registered
    automatically; :meth:`parameters` walks the tree.  Unlike PyTorch the
    implementation is intentionally small: no hooks, no buffers-with-state
    other than plain numpy arrays registered through :meth:`register_buffer`.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ----------------------------------------------------------- registration
    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array saved/restored with the state dict."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ----------------------------------------------------------- forward pass
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------- traversal
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for mod_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{mod_name}.")

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.size for p in self.parameters()))

    # ----------------------------------------------------------------- state
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buf in self._buffers.items():
            state[f"{prefix}{name}"] = buf.copy()
        for mod_name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{mod_name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: expected {param.data.shape}, got {value.shape}"
                )
            param.data[...] = value
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key in state:
                self._buffers[name][...] = np.asarray(state[key], dtype=np.float64)
        for mod_name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{mod_name}.")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        child_repr = ", ".join(f"{k}={v.__class__.__name__}" for k, v in self._modules.items())
        return f"{self.__class__.__name__}({child_repr})"
