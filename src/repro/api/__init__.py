"""Public on-line training API: pluggable workloads, sessions and registries.

This package is the composable surface over the Melissa/Breed machinery:

* :class:`~repro.api.workloads.Workload` — one simulation scenario (solver +
  parameter bounds + scalers + surrogate geometry); built-ins: ``"heat2d"``
  (the paper's case), ``"heat1d"``, ``"analytic"``, ``"advection1d"``,
  ``"advection2d"``, ``"burgers"`` and ``"fisher"``.
* :class:`~repro.api.config.OnlineTrainingConfig` — a fully serialisable run
  description (:meth:`to_dict` / :meth:`from_dict`) referencing workloads,
  steering methods and activations by registry name.
* :class:`~repro.api.session.TrainingSession` — the training loop decomposed
  into explicit ``submit`` / ``produce`` / ``receive`` / ``train`` /
  ``should_stop`` phases with ``on_tick`` / ``on_steering`` /
  ``on_validation`` hooks.
* :func:`~repro.api.registry.register_workload`,
  :func:`~repro.api.registry.register_sampler`,
  :func:`~repro.api.registry.register_activation`,
  :func:`~repro.api.registry.register_architecture` — extension points
  (built-in surrogate architectures: ``"mlp"``, ``"residual"``,
  ``"conv2d"``).

Example
-------
>>> from repro.api import OnlineTrainingConfig, TrainingSession
>>> config = OnlineTrainingConfig(workload="heat1d", n_simulations=16,
...                               max_iterations=50, reservoir_watermark=20)
>>> session = TrainingSession(config)
>>> session.add_hook("validation", lambda s, it, loss: print(it, loss))  # doctest: +SKIP
>>> result = session.run()  # doctest: +SKIP
"""

from repro.api.registry import (
    activation_names,
    architecture_names,
    get_activation,
    get_architecture,
    get_sampler,
    get_workload,
    register_activation,
    register_architecture,
    register_sampler,
    register_workload,
    sampler_names,
    workload_names,
)
from repro.api.workloads import (
    AdvectionDiffusion1DWorkload,
    AdvectionDiffusion2DWorkload,
    AnalyticWorkload,
    BurgersWorkload,
    FisherKPPWorkload,
    Heat1DWorkload,
    Heat2DWorkload,
    Workload,
)
from repro.api.config import OnlineTrainingConfig
from repro.api.session import OnlineTrainingResult, TrainingSession

__all__ = [
    "activation_names",
    "architecture_names",
    "get_activation",
    "get_architecture",
    "get_sampler",
    "get_workload",
    "register_activation",
    "register_architecture",
    "register_sampler",
    "register_workload",
    "sampler_names",
    "workload_names",
    "AdvectionDiffusion1DWorkload",
    "AdvectionDiffusion2DWorkload",
    "AnalyticWorkload",
    "BurgersWorkload",
    "FisherKPPWorkload",
    "Heat1DWorkload",
    "Heat2DWorkload",
    "Workload",
    "OnlineTrainingConfig",
    "OnlineTrainingResult",
    "TrainingSession",
]
