"""Run configuration of the pluggable on-line training API.

:class:`OnlineTrainingConfig` is the single value object describing one
on-line training run.  Every extension point is referenced *by name* —
``workload`` (registry of :class:`~repro.api.workloads.Workload` factories),
``method`` (steering-sampler registry) and ``activation`` (NN activation
registry) — which keeps the configuration fully serialisable:
:meth:`OnlineTrainingConfig.to_dict` / :meth:`OnlineTrainingConfig.from_dict`
round-trip through plain JSON-compatible dictionaries, the substrate of study
files and distributed runners.

The class previously lived in :mod:`repro.melissa.run`, which still re-exports
it for backward compatibility.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, TYPE_CHECKING

from repro import nn
from repro.api import registry as _registry
from repro.api.registry import (
    get_sampler,
    get_workload,
    register_activation,
    register_architecture,
    register_sampler,
)
from repro.breed.samplers import BreedConfig, BreedSampler, RandomSampler, SteeringSampler
from repro.sampling.bounds import HEAT2D_BOUNDS, ParameterBounds
from repro.solvers.heat2d import Heat2DConfig
from repro.surrogate.model import (
    SurrogateConfig,
    build_conv_surrogate,
    build_mlp,
    build_residual_mlp,
)

# Importing the workloads module populates the workload registry with the
# built-in ``heat2d`` / ``heat1d`` / ``analytic`` entries.
import repro.api.workloads  # noqa: F401  (imported for registration side effect)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.workloads import Workload

__all__ = ["CHECKPOINT_FIELDS", "OnlineTrainingConfig"]

#: configuration fields that control mid-run snapshotting but not the training
#: mathematics — excluded from :meth:`OnlineTrainingConfig.digest` so a run is
#: fingerprint-identical whether or not it checkpoints itself
CHECKPOINT_FIELDS = frozenset(
    {"checkpoint_every", "checkpoint_dir", "checkpoint_keep", "checkpoint_compressed"}
)


# --------------------------------------------------------------------------
# Default sampler / activation registrations (the names the configuration
# below validates against).  Each registration is guarded on its own key so
# the block is idempotent under re-import and a user's earlier registration
# of one name never suppresses the other defaults.
# --------------------------------------------------------------------------

def _build_breed_sampler(bounds: ParameterBounds, config: "OnlineTrainingConfig") -> SteeringSampler:
    return BreedSampler(bounds, config.breed)


def _build_random_sampler(bounds: ParameterBounds, config: "OnlineTrainingConfig") -> SteeringSampler:
    return RandomSampler(bounds)


for _name, _factory in (("breed", _build_breed_sampler), ("random", _build_random_sampler)):
    if _name not in _registry.SAMPLERS:
        register_sampler(_name, _factory)

for _name, _factory in (("relu", nn.ReLU), ("tanh", nn.Tanh), ("leaky_relu", nn.LeakyReLU)):
    if _name not in _registry.ACTIVATIONS:
        register_activation(_name, _factory)

for _name, _factory in (
    ("mlp", build_mlp),
    ("residual", build_residual_mlp),
    ("conv2d", build_conv_surrogate),
):
    if _name not in _registry.ARCHITECTURES:
        register_architecture(_name, _factory)


@dataclass(frozen=True)
class OnlineTrainingConfig:
    """Complete configuration of one on-line training run.

    Defaults correspond to a *scaled-down* version of the paper's setup that
    runs in seconds on a single CPU core; the full-size values from Section 4
    (``grid_size=64``, ``n_timesteps=100``, ``n_simulations=800``,
    ``reservoir_watermark=300``, ``max_iterations≈5000``,
    ``n_validation_trajectories=200``) can be set explicitly.

    The scenario is selected by the ``workload`` registry key (``"heat2d"``,
    ``"heat1d"``, ``"analytic"``, or anything registered through
    :func:`repro.api.register_workload`); the 1-D workloads derive their
    resolution from the shared ``heat`` knobs unless ``workload_options``
    overrides them.
    """

    # --- steering method -------------------------------------------------
    method: str = "breed"                      # steering-sampler registry key
    breed: BreedConfig = field(default_factory=BreedConfig)
    # --- PDE / workload ---------------------------------------------------
    workload: str = "heat2d"                   # workload registry key
    heat: Heat2DConfig = field(default_factory=lambda: Heat2DConfig(grid_size=12, n_timesteps=20))
    bounds: ParameterBounds = HEAT2D_BOUNDS
    workload_options: Dict[str, Any] = field(default_factory=dict)
    n_simulations: int = 64                    # S — simulation budget
    # --- surrogate / optimisation ----------------------------------------
    hidden_size: int = 16                      # H
    n_hidden_layers: int = 1                   # L
    activation: str = "relu"
    architecture: str = "mlp"                  # surrogate-architecture registry key
    learning_rate: float = 1e-3
    batch_size: int = 128                      # B
    # --- framework --------------------------------------------------------
    job_limit: int = 10                        # m — simultaneous client jobs
    scheduler_max_start_delay: int = 2
    reservoir_capacity: int = 1000
    reservoir_watermark: int = 300
    timesteps_per_tick: int = 2                # produced per running client per tick
    train_iterations_per_tick: int = 4
    max_iterations: int = 400
    validation_period: int = 50
    n_validation_trajectories: int = 16
    # --- fault tolerance ---------------------------------------------------
    #: snapshot the full session every N training batches (0 disables)
    checkpoint_every: int = 0
    #: directory receiving the versioned session snapshots (None disables)
    checkpoint_dir: Optional[str] = None
    #: number of most-recent snapshots retained in ``checkpoint_dir``
    checkpoint_keep: int = 3
    #: write snapshot arrays with ``np.savez_compressed`` (slower, smaller)
    checkpoint_compressed: bool = False
    # --- bookkeeping -------------------------------------------------------
    record_sample_statistics: bool = False
    seed: int = 0
    max_ticks: int = 1_000_000

    def __hash__(self) -> int:
        # The generated hash would choke on the dict-typed workload_options;
        # configs were hashable before that field existed, so keep them so.
        options = tuple((k, repr(v)) for k, v in sorted(self.workload_options.items()))
        scalars = tuple(
            getattr(self, f)
            for f in self.__dataclass_fields__
            if f not in ("workload_options",)
        )
        return hash((scalars, options))

    def __post_init__(self) -> None:
        if self.method not in _registry.SAMPLERS:
            raise ValueError(
                f"method must be one of {_registry.SAMPLERS.names()}, got {self.method!r}"
            )
        if self.workload not in _registry.WORKLOADS:
            raise ValueError(
                f"workload must be one of {_registry.WORKLOADS.names()}, got {self.workload!r}"
            )
        if self.architecture not in _registry.ARCHITECTURES:
            raise ValueError(
                f"architecture must be one of {_registry.ARCHITECTURES.names()}, "
                f"got {self.architecture!r}"
            )
        if self.n_simulations < 1:
            raise ValueError("n_simulations must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.timesteps_per_tick < 1 or self.train_iterations_per_tick < 0:
            raise ValueError("invalid per-tick settings")
        if self.reservoir_watermark > self.reservoir_capacity:
            raise ValueError("reservoir_watermark cannot exceed reservoir_capacity")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 disables snapshots)")
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")

    # ------------------------------------------------------------ factories
    def build_workload(self) -> "Workload":
        """Resolve and construct the configured :class:`Workload`."""
        return get_workload(self.workload)(self)

    def build_sampler(self, workload: "Workload" | None = None) -> SteeringSampler:
        """Resolve and construct the configured steering sampler."""
        bounds = (workload if workload is not None else self.build_workload()).bounds
        return get_sampler(self.method)(bounds, self)

    @property
    def surrogate_config(self) -> SurrogateConfig:
        """MLP architecture matching the configured workload's geometry."""
        workload = self.build_workload()
        return workload.surrogate_config(
            hidden_size=self.hidden_size,
            n_hidden_layers=self.n_hidden_layers,
            activation=self.activation,
            architecture=self.architecture,
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible dictionary representation (see :meth:`from_dict`)."""
        data: Dict[str, Any] = {
            "method": self.method,
            "breed": asdict(self.breed),
            "workload": self.workload,
            "heat": asdict(self.heat),
            "bounds": {
                "low": list(self.bounds.low),
                "high": list(self.bounds.high),
                "names": list(self.bounds.names),
            },
            "workload_options": dict(self.workload_options),
        }
        for name in (
            "n_simulations",
            "hidden_size",
            "n_hidden_layers",
            "activation",
            "architecture",
            "learning_rate",
            "batch_size",
            "job_limit",
            "scheduler_max_start_delay",
            "reservoir_capacity",
            "reservoir_watermark",
            "timesteps_per_tick",
            "train_iterations_per_tick",
            "max_iterations",
            "validation_period",
            "n_validation_trajectories",
            "checkpoint_every",
            "checkpoint_dir",
            "checkpoint_keep",
            "checkpoint_compressed",
            "record_sample_statistics",
            "seed",
            "max_ticks",
        ):
            data[name] = getattr(self, name)
        return data

    def digest(self) -> str:
        """Short stable fingerprint of the *training-relevant* configuration.

        The checkpoint knobs (:data:`CHECKPOINT_FIELDS`) are excluded: a run
        produces bit-identical results whether or not it snapshots itself, so
        its fingerprint — used by study resume and by snapshot/restore
        validation — must not depend on where (or how often) snapshots are
        written.  Configurations predating these fields hash identically.

        The default ``architecture="mlp"`` is likewise dropped from the
        payload, so every fingerprint computed before the architecture
        registry existed stays valid; non-default architectures *do*
        contribute (they change the training mathematics).
        """
        import hashlib
        import json

        payload = {k: v for k, v in self.to_dict().items() if k not in CHECKPOINT_FIELDS}
        if payload.get("architecture") == "mlp":
            payload.pop("architecture")
        return hashlib.sha256(
            json.dumps(payload, sort_keys=True, default=str).encode()
        ).hexdigest()[:16]

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OnlineTrainingConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Unknown keys raise ``TypeError`` (they would silently change the run
        otherwise); nested sections may be omitted to take the defaults.
        """
        kwargs = dict(data)
        if "breed" in kwargs:
            kwargs["breed"] = BreedConfig(**kwargs["breed"])
        if "heat" in kwargs:
            kwargs["heat"] = Heat2DConfig(**kwargs["heat"])
        if "bounds" in kwargs:
            bounds = kwargs["bounds"]
            kwargs["bounds"] = ParameterBounds(
                low=tuple(bounds["low"]),
                high=tuple(bounds["high"]),
                names=tuple(bounds.get("names", ())),
            )
        if "workload_options" in kwargs:
            kwargs["workload_options"] = dict(kwargs["workload_options"])
        return cls(**kwargs)

    # ------------------------------------------------------------- presets
    def paper_scale(self) -> "OnlineTrainingConfig":
        """Return the full-size configuration used by the paper (expensive)."""
        return OnlineTrainingConfig(
            method=self.method,
            breed=self.breed,
            workload=self.workload,
            heat=Heat2DConfig(grid_size=64, n_timesteps=100),
            bounds=self.bounds,
            workload_options=dict(self.workload_options),
            n_simulations=800,
            hidden_size=self.hidden_size,
            n_hidden_layers=self.n_hidden_layers,
            activation=self.activation,
            architecture=self.architecture,
            learning_rate=1e-3,
            batch_size=128,
            job_limit=10,
            reservoir_capacity=4000,
            reservoir_watermark=300,
            max_iterations=5000,
            validation_period=100,
            n_validation_trajectories=200,
            record_sample_statistics=self.record_sample_statistics,
            seed=self.seed,
        )
