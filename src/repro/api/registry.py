"""String registries behind the pluggable training API.

Every extension point of :mod:`repro.api` — workloads, steering samplers and
NN activations — is resolved through a named registry, so a configuration is
just strings and numbers: fully serialisable, storable in JSON/YAML study
files, and extensible from user code without touching the framework::

    from repro.api import register_workload

    @register_workload("my-pde")
    def _my_pde(config):
        return MyPdeWorkload(...)

    run_online_training(OnlineTrainingConfig(workload="my-pde"))

Registries are deliberately dumb: a mapping from a lower-cased string key to
a factory callable, with loud errors on unknown or duplicate keys.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, TypeVar

__all__ = [
    "Registry",
    "register_workload",
    "get_workload",
    "workload_names",
    "register_sampler",
    "get_sampler",
    "sampler_names",
    "register_activation",
    "get_activation",
    "activation_names",
    "register_architecture",
    "get_architecture",
    "architecture_names",
]

F = TypeVar("F", bound=Callable)


class Registry:
    """A named string → factory mapping with decorator-style registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, Callable] = {}

    @staticmethod
    def _key(name: str) -> str:
        if not isinstance(name, str) or not name:
            raise TypeError("registry keys must be non-empty strings")
        return name.lower()

    def register(
        self, name: str, factory: Optional[F] = None, *, overwrite: bool = False
    ) -> Callable:
        """Register ``factory`` under ``name``; usable as a decorator.

        ``register(name, factory)`` registers directly; ``@register(name)``
        returns a decorator.  Duplicate keys raise unless ``overwrite=True``.
        """
        key = self._key(name)

        def _store(fn: F) -> F:
            if key in self._factories and not overwrite:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._factories[key] = fn
            return fn

        if factory is None:
            return _store
        return _store(factory)

    def get(self, name: str) -> Callable:
        """The factory registered under ``name`` (``KeyError`` names the options)."""
        key = self._key(name)
        if key not in self._factories:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            )
        return self._factories[key]

    def names(self) -> List[str]:
        """Sorted (lower-cased) keys of every registered factory."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        try:
            return self._key(name) in self._factories
        except TypeError:
            return False

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Registry({self.kind!r}, {self.names()})"


#: workload name → ``factory(config) -> Workload``
WORKLOADS = Registry("workload")
#: steering-method name → ``factory(bounds, config) -> SteeringSampler``
SAMPLERS = Registry("sampler")
#: activation name → ``factory() -> nn.Module``
ACTIVATIONS = Registry("activation")
#: surrogate-architecture name → ``factory(SurrogateConfig, rng) -> nn.Module``
ARCHITECTURES = Registry("architecture")


def register_workload(name: str, factory: Optional[Callable] = None, *, overwrite: bool = False) -> Callable:
    """Register a workload factory ``factory(config) -> Workload``."""
    return WORKLOADS.register(name, factory, overwrite=overwrite)


def get_workload(name: str) -> Callable:
    """Resolve a workload factory by name (raises ``KeyError`` when unknown)."""
    return WORKLOADS.get(name)


def workload_names() -> List[str]:
    """Sorted registry keys of every registered workload (built-ins + user)."""
    return WORKLOADS.names()


def register_sampler(name: str, factory: Optional[Callable] = None, *, overwrite: bool = False) -> Callable:
    """Register a steering-sampler factory ``factory(bounds, config) -> SteeringSampler``."""
    return SAMPLERS.register(name, factory, overwrite=overwrite)


def get_sampler(name: str) -> Callable:
    """Resolve a steering-sampler factory by name (raises ``KeyError`` when unknown)."""
    return SAMPLERS.get(name)


def sampler_names() -> List[str]:
    """Sorted registry keys of every registered steering sampler."""
    return SAMPLERS.names()


def register_activation(name: str, factory: Optional[Callable] = None, *, overwrite: bool = False) -> Callable:
    """Register an activation factory ``factory() -> nn.Module``."""
    return ACTIVATIONS.register(name, factory, overwrite=overwrite)


def get_activation(name: str) -> Callable:
    """Resolve an activation factory by name (raises ``KeyError`` when unknown)."""
    return ACTIVATIONS.get(name)


def activation_names() -> List[str]:
    """Sorted registry keys of every registered NN activation."""
    return ACTIVATIONS.names()


def register_architecture(name: str, factory: Optional[Callable] = None, *, overwrite: bool = False) -> Callable:
    """Register a surrogate-architecture factory ``factory(config, rng) -> nn.Module``."""
    return ARCHITECTURES.register(name, factory, overwrite=overwrite)


def get_architecture(name: str) -> Callable:
    """Resolve a surrogate-architecture factory by name (raises ``KeyError`` when unknown)."""
    return ARCHITECTURES.get(name)


def architecture_names() -> List[str]:
    """Sorted registry keys of every registered surrogate architecture."""
    return ARCHITECTURES.names()
