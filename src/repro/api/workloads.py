"""Workloads: the pluggable "physics" side of the on-line training API.

A :class:`Workload` bundles everything the training session needs to know
about one simulation scenario:

* the solver that produces trajectories (the data "oracle"),
* the input-parameter box ``Λ`` the steering samplers draw from,
* the surrogate input/output dimensions and the a-priori normalisation
  scalers.

Three workloads ship with the reproduction:

* ``"heat2d"`` — the paper's 2-D heat PDE (implicit backward-Euler solver),
* ``"heat1d"`` — the cheaper 1-D heat PDE (implicit solver), useful for fast
  scenario studies and CI,
* ``"analytic"`` — closed-form transient 1-D solutions, a discretisation-free
  workload whose only error source is the surrogate itself.

New workloads are plugged in through
:func:`repro.api.registry.register_workload`; the factory receives the full
:class:`~repro.api.config.OnlineTrainingConfig` so it can derive its
resolution from the shared ``heat``/``workload_options`` knobs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict

from repro.api.registry import register_workload
from repro.sampling.bounds import HEAT1D_BOUNDS, HEAT2D_BOUNDS, ParameterBounds
from repro.solvers.analytic import Analytic1DConfig, Analytic1DSolver
from repro.solvers.base import Solver
from repro.solvers.heat1d import Heat1DConfig, Heat1DImplicitSolver
from repro.solvers.heat2d import Heat2DConfig, Heat2DImplicitSolver
from repro.surrogate.model import SurrogateConfig
from repro.surrogate.normalization import SurrogateScalers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.config import OnlineTrainingConfig

__all__ = [
    "Workload",
    "Heat2DWorkload",
    "Heat1DWorkload",
    "AnalyticWorkload",
]


class Workload(abc.ABC):
    """One simulation scenario: solver + parameter box + surrogate geometry."""

    #: registry key of the workload (implementations override)
    name: str = "workload"

    @property
    @abc.abstractmethod
    def bounds(self) -> ParameterBounds:
        """Input-parameter space ``Λ`` sampled by the steering methods."""

    @property
    @abc.abstractmethod
    def n_timesteps(self) -> int:
        """Number of solver time steps per trajectory (excluding ``t = 0``)."""

    @property
    @abc.abstractmethod
    def output_dim(self) -> int:
        """Flattened solution-field length (the surrogate output size)."""

    @abc.abstractmethod
    def build_solver(self) -> Solver:
        """Construct the solver shared by every client of a run."""

    @property
    def input_dim(self) -> int:
        """Surrogate input size: the parameter vector plus the time step."""
        return self.bounds.dim + 1

    def build_scalers(self) -> SurrogateScalers:
        """A-priori min-max scalers; override for unbounded fields."""
        return SurrogateScalers.from_bounds(self.bounds, self.n_timesteps)

    def surrogate_config(
        self, hidden_size: int, n_hidden_layers: int, activation: str
    ) -> SurrogateConfig:
        """Surrogate architecture matching this workload's geometry."""
        return SurrogateConfig(
            input_dim=self.input_dim,
            output_dim=self.output_dim,
            hidden_size=hidden_size,
            n_hidden_layers=n_hidden_layers,
            activation=activation,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{self.__class__.__name__}(dim={self.bounds.dim}, "
            f"T={self.n_timesteps}, output_dim={self.output_dim})"
        )


@dataclass(frozen=True)
class Heat2DWorkload(Workload):
    """The paper's 2-D heat PDE scenario (Appendix B.1)."""

    heat: Heat2DConfig = field(default_factory=Heat2DConfig)
    parameter_bounds: ParameterBounds = HEAT2D_BOUNDS

    name = "heat2d"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.heat.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.heat.grid_size**2

    def build_solver(self) -> Heat2DImplicitSolver:
        return Heat2DImplicitSolver(self.heat)


@dataclass(frozen=True)
class Heat1DWorkload(Workload):
    """1-D heat PDE scenario: ~100× cheaper trajectories than ``heat2d``."""

    heat: Heat1DConfig = field(default_factory=Heat1DConfig)
    parameter_bounds: ParameterBounds = HEAT1D_BOUNDS

    name = "heat1d"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.heat.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.heat.n_points

    def build_solver(self) -> Heat1DImplicitSolver:
        return Heat1DImplicitSolver(self.heat)


@dataclass(frozen=True)
class AnalyticWorkload(Workload):
    """Closed-form 1-D transient scenario: exact fields, no solver error."""

    analytic: Analytic1DConfig = field(default_factory=Analytic1DConfig)
    parameter_bounds: ParameterBounds = HEAT1D_BOUNDS

    name = "analytic"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.analytic.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.analytic.n_points

    def build_solver(self) -> Analytic1DSolver:
        return Analytic1DSolver(self.analytic)


# --------------------------------------------------------------------------
# Default registrations.  Factories receive the full run configuration; the
# 1-D workloads derive their resolution from the shared ``heat`` knobs
# (grid_size → n_points) unless overridden through ``workload_options``.
# --------------------------------------------------------------------------

def _options(config: "OnlineTrainingConfig", **defaults: Any) -> Dict[str, Any]:
    merged = dict(defaults)
    merged.update(config.workload_options)
    return merged


def _bounds_1d(config: "OnlineTrainingConfig") -> ParameterBounds:
    """Honour a user-supplied parameter box for the 1-D workloads.

    The config's ``bounds`` field defaults to the 5-dim heat2d box; when left
    at that default the canonical :data:`HEAT1D_BOUNDS` is used.  An
    explicitly customised box must have the workload's 3 dimensions —
    anything else is a misconfiguration that must not be silently ignored.
    """
    if config.bounds == HEAT2D_BOUNDS:
        return HEAT1D_BOUNDS
    if config.bounds.dim != 3:
        raise ValueError(
            f"workload {config.workload!r} takes 3 parameters (T0, T_left, T_right); "
            f"got bounds with dim={config.bounds.dim}"
        )
    return config.bounds


@register_workload("heat2d")
def _build_heat2d(config: "OnlineTrainingConfig") -> Heat2DWorkload:
    return Heat2DWorkload(heat=config.heat, parameter_bounds=config.bounds)


@register_workload("heat1d")
def _build_heat1d(config: "OnlineTrainingConfig") -> Heat1DWorkload:
    opts = _options(
        config,
        n_points=max(config.heat.grid_size, 3),
        n_timesteps=config.heat.n_timesteps,
        dt=config.heat.dt,
        alpha=config.heat.alpha,
        length=config.heat.length,
    )
    return Heat1DWorkload(heat=Heat1DConfig(**opts), parameter_bounds=_bounds_1d(config))


@register_workload("analytic")
def _build_analytic(config: "OnlineTrainingConfig") -> AnalyticWorkload:
    opts = _options(
        config,
        n_points=max(config.heat.grid_size, 3),
        n_timesteps=config.heat.n_timesteps,
        dt=config.heat.dt,
        alpha=config.heat.alpha,
        length=config.heat.length,
    )
    return AnalyticWorkload(analytic=Analytic1DConfig(**opts), parameter_bounds=_bounds_1d(config))
