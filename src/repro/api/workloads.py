"""Workloads: the pluggable "physics" side of the on-line training API.

A :class:`Workload` bundles everything the training session needs to know
about one simulation scenario:

* the solver that produces trajectories (the data "oracle"),
* the input-parameter box ``Λ`` the steering samplers draw from,
* the surrogate input/output dimensions and the a-priori normalisation
  scalers.

Seven workloads ship with the reproduction, spanning four physics families:

* ``"heat2d"`` — the paper's 2-D heat PDE (implicit backward-Euler solver),
* ``"heat1d"`` — the cheaper 1-D heat PDE (implicit solver), useful for fast
  scenario studies and CI,
* ``"analytic"`` — closed-form transient 1-D solutions, a discretisation-free
  workload whose only error source is the surrogate itself,
* ``"advection1d"`` / ``"advection2d"`` — periodic advection–diffusion of a
  Gaussian pulse (explicit upwind transport, CFL-checked),
* ``"burgers"`` — the nonlinear viscous Burgers equation (Cole–Hopf
  travelling-wave initial data),
* ``"fisher"`` — the Fisher–KPP reaction–diffusion equation.

New workloads are plugged in through
:func:`repro.api.registry.register_workload`; the factory receives the full
:class:`~repro.api.config.OnlineTrainingConfig` so it can derive its
resolution from the shared ``heat``/``workload_options`` knobs.  See
``docs/WORKLOADS.md`` for a step-by-step authoring guide.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict

from repro.api.registry import register_workload
from repro.sampling.bounds import (
    ADVECTION1D_BOUNDS,
    ADVECTION2D_BOUNDS,
    BURGERS_BOUNDS,
    FISHER_BOUNDS,
    HEAT1D_BOUNDS,
    HEAT2D_BOUNDS,
    ParameterBounds,
)
from repro.solvers.advection import (
    AdvectionDiffusion1DConfig,
    AdvectionDiffusion1DSolver,
    AdvectionDiffusion2DConfig,
    AdvectionDiffusion2DSolver,
)
from repro.solvers.analytic import Analytic1DConfig, Analytic1DSolver
from repro.solvers.base import Solver
from repro.solvers.burgers import Burgers1DConfig, Burgers1DSolver
from repro.solvers.heat1d import Heat1DConfig, Heat1DImplicitSolver
from repro.solvers.heat2d import Heat2DConfig, Heat2DImplicitSolver
from repro.solvers.reaction_diffusion import FisherKPPConfig, FisherKPPSolver
from repro.surrogate.model import SurrogateConfig
from repro.surrogate.normalization import SurrogateScalers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.config import OnlineTrainingConfig

__all__ = [
    "Workload",
    "Heat2DWorkload",
    "Heat1DWorkload",
    "AnalyticWorkload",
    "AdvectionDiffusion1DWorkload",
    "AdvectionDiffusion2DWorkload",
    "BurgersWorkload",
    "FisherKPPWorkload",
]


class Workload(abc.ABC):
    """One simulation scenario: solver + parameter box + surrogate geometry."""

    #: registry key of the workload (implementations override)
    name: str = "workload"

    @property
    @abc.abstractmethod
    def bounds(self) -> ParameterBounds:
        """Input-parameter space ``Λ`` sampled by the steering methods."""

    @property
    @abc.abstractmethod
    def n_timesteps(self) -> int:
        """Number of solver time steps per trajectory (excluding ``t = 0``)."""

    @property
    @abc.abstractmethod
    def output_dim(self) -> int:
        """Flattened solution-field length (the surrogate output size)."""

    @abc.abstractmethod
    def build_solver(self) -> Solver:
        """Construct the solver shared by every client of a run."""

    @property
    def input_dim(self) -> int:
        """Surrogate input size: the parameter vector plus the time step."""
        return self.bounds.dim + 1

    def build_scalers(self) -> SurrogateScalers:
        """A-priori min-max scalers; override for unbounded fields."""
        return SurrogateScalers.from_bounds(self.bounds, self.n_timesteps)

    def surrogate_config(
        self,
        hidden_size: int,
        n_hidden_layers: int,
        activation: str,
        architecture: str = "mlp",
    ) -> SurrogateConfig:
        """Surrogate architecture matching this workload's geometry."""
        return SurrogateConfig(
            input_dim=self.input_dim,
            output_dim=self.output_dim,
            hidden_size=hidden_size,
            n_hidden_layers=n_hidden_layers,
            activation=activation,
            architecture=architecture,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{self.__class__.__name__}(dim={self.bounds.dim}, "
            f"T={self.n_timesteps}, output_dim={self.output_dim})"
        )


@dataclass(frozen=True)
class Heat2DWorkload(Workload):
    """The paper's 2-D heat PDE scenario (Appendix B.1)."""

    heat: Heat2DConfig = field(default_factory=Heat2DConfig)
    parameter_bounds: ParameterBounds = HEAT2D_BOUNDS

    name = "heat2d"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.heat.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.heat.grid_size**2

    def build_solver(self) -> Heat2DImplicitSolver:
        return Heat2DImplicitSolver(self.heat)


@dataclass(frozen=True)
class Heat1DWorkload(Workload):
    """1-D heat PDE scenario: ~100× cheaper trajectories than ``heat2d``."""

    heat: Heat1DConfig = field(default_factory=Heat1DConfig)
    parameter_bounds: ParameterBounds = HEAT1D_BOUNDS

    name = "heat1d"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.heat.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.heat.n_points

    def build_solver(self) -> Heat1DImplicitSolver:
        return Heat1DImplicitSolver(self.heat)


@dataclass(frozen=True)
class AnalyticWorkload(Workload):
    """Closed-form 1-D transient scenario: exact fields, no solver error."""

    analytic: Analytic1DConfig = field(default_factory=Analytic1DConfig)
    parameter_bounds: ParameterBounds = HEAT1D_BOUNDS

    name = "analytic"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.analytic.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.analytic.n_points

    def build_solver(self) -> Analytic1DSolver:
        return Analytic1DSolver(self.analytic)


@dataclass(frozen=True)
class AdvectionDiffusion1DWorkload(Workload):
    """1-D periodic advection–diffusion of a Gaussian pulse."""

    advection: AdvectionDiffusion1DConfig = field(default_factory=AdvectionDiffusion1DConfig)
    parameter_bounds: ParameterBounds = ADVECTION1D_BOUNDS

    name = "advection1d"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.advection.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.advection.n_points

    def build_solver(self) -> AdvectionDiffusion1DSolver:
        return AdvectionDiffusion1DSolver(self.advection)

    def build_scalers(self) -> SurrogateScalers:
        # Field values live in [0, amplitude] (maximum principle); the other
        # parameters are geometric and must not pollute the output range.
        return SurrogateScalers.from_field_range(
            self.bounds, self.n_timesteps, 0.0, self.bounds.high[0]
        )


@dataclass(frozen=True)
class AdvectionDiffusion2DWorkload(Workload):
    """2-D periodic advection–diffusion of a Gaussian blob."""

    advection: AdvectionDiffusion2DConfig = field(default_factory=AdvectionDiffusion2DConfig)
    parameter_bounds: ParameterBounds = ADVECTION2D_BOUNDS

    name = "advection2d"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.advection.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.advection.grid_size**2

    def build_solver(self) -> AdvectionDiffusion2DSolver:
        return AdvectionDiffusion2DSolver(self.advection)

    def build_scalers(self) -> SurrogateScalers:
        return SurrogateScalers.from_field_range(
            self.bounds, self.n_timesteps, 0.0, self.bounds.high[0]
        )


@dataclass(frozen=True)
class BurgersWorkload(Workload):
    """Viscous Burgers fronts (nonlinear, Cole–Hopf-validated)."""

    burgers: Burgers1DConfig = field(default_factory=Burgers1DConfig)
    parameter_bounds: ParameterBounds = BURGERS_BOUNDS

    name = "burgers"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.burgers.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.burgers.n_points

    def build_solver(self) -> Burgers1DSolver:
        return Burgers1DSolver(self.burgers)

    def build_scalers(self) -> SurrogateScalers:
        # The viscous maximum principle bounds fields by the far-field
        # states: [min u_right, max u_left] over the parameter box.
        return SurrogateScalers.from_field_range(
            self.bounds, self.n_timesteps, self.bounds.low[1], self.bounds.high[0]
        )


@dataclass(frozen=True)
class FisherKPPWorkload(Workload):
    """Fisher–KPP reaction–diffusion fronts."""

    fisher: FisherKPPConfig = field(default_factory=FisherKPPConfig)
    parameter_bounds: ParameterBounds = FISHER_BOUNDS

    name = "fisher"

    @property
    def bounds(self) -> ParameterBounds:
        return self.parameter_bounds

    @property
    def n_timesteps(self) -> int:
        return self.fisher.n_timesteps

    @property
    def output_dim(self) -> int:
        return self.fisher.n_points

    def build_solver(self) -> FisherKPPSolver:
        return FisherKPPSolver(self.fisher)

    def build_scalers(self) -> SurrogateScalers:
        # [0, 1] is the invariant region of the logistic reaction.
        return SurrogateScalers.from_field_range(self.bounds, self.n_timesteps, 0.0, 1.0)


# --------------------------------------------------------------------------
# Default registrations.  Factories receive the full run configuration; the
# 1-D workloads derive their resolution from the shared ``heat`` knobs
# (grid_size → n_points) unless overridden through ``workload_options``.
# --------------------------------------------------------------------------

def _options(config: "OnlineTrainingConfig", **defaults: Any) -> Dict[str, Any]:
    merged = dict(defaults)
    merged.update(config.workload_options)
    return merged


def _workload_bounds(
    config: "OnlineTrainingConfig", default: ParameterBounds, description: str
) -> ParameterBounds:
    """Honour a user-supplied parameter box for a non-heat2d workload.

    The config's ``bounds`` field defaults to the 5-dim heat2d box; when left
    at that default the workload's canonical box is used.  An explicitly
    customised box must have the workload's dimensionality — anything else is
    a misconfiguration that must not be silently ignored.
    """
    if config.bounds == HEAT2D_BOUNDS:
        return default
    if config.bounds.dim != default.dim:
        raise ValueError(
            f"workload {config.workload!r} takes {default.dim} parameters {description}; "
            f"got bounds with dim={config.bounds.dim}"
        )
    return config.bounds


def _bounds_1d(config: "OnlineTrainingConfig") -> ParameterBounds:
    """Parameter box of the 1-D heat workloads (see :func:`_workload_bounds`)."""
    return _workload_bounds(config, HEAT1D_BOUNDS, "(T0, T_left, T_right)")


@register_workload("heat2d")
def _build_heat2d(config: "OnlineTrainingConfig") -> Heat2DWorkload:
    return Heat2DWorkload(heat=config.heat, parameter_bounds=config.bounds)


@register_workload("heat1d")
def _build_heat1d(config: "OnlineTrainingConfig") -> Heat1DWorkload:
    opts = _options(
        config,
        n_points=max(config.heat.grid_size, 3),
        n_timesteps=config.heat.n_timesteps,
        dt=config.heat.dt,
        alpha=config.heat.alpha,
        length=config.heat.length,
    )
    return Heat1DWorkload(heat=Heat1DConfig(**opts), parameter_bounds=_bounds_1d(config))


@register_workload("analytic")
def _build_analytic(config: "OnlineTrainingConfig") -> AnalyticWorkload:
    opts = _options(
        config,
        n_points=max(config.heat.grid_size, 3),
        n_timesteps=config.heat.n_timesteps,
        dt=config.heat.dt,
        alpha=config.heat.alpha,
        length=config.heat.length,
    )
    return AnalyticWorkload(analytic=Analytic1DConfig(**opts), parameter_bounds=_bounds_1d(config))


# The multi-physics factories reuse the shared resolution/budget knobs
# (``grid_size`` → ``n_points``, ``n_timesteps``) but keep their own ``dt``
# defaults: the explicit transport schemes have CFL stability limits that the
# heat workloads' implicit ``dt`` need not satisfy.  Everything remains
# overridable through ``workload_options`` (e.g. ``{"dt": 0.001}``).


@register_workload("advection1d")
def _build_advection1d(config: "OnlineTrainingConfig") -> AdvectionDiffusion1DWorkload:
    opts = _options(
        config,
        n_points=max(config.heat.grid_size, 4),
        n_timesteps=config.heat.n_timesteps,
    )
    return AdvectionDiffusion1DWorkload(
        advection=AdvectionDiffusion1DConfig(**opts),
        parameter_bounds=_workload_bounds(
            config, ADVECTION1D_BOUNDS, "(amplitude, center, width)"
        ),
    )


@register_workload("advection2d")
def _build_advection2d(config: "OnlineTrainingConfig") -> AdvectionDiffusion2DWorkload:
    opts = _options(
        config,
        grid_size=max(config.heat.grid_size, 4),
        n_timesteps=config.heat.n_timesteps,
    )
    return AdvectionDiffusion2DWorkload(
        advection=AdvectionDiffusion2DConfig(**opts),
        parameter_bounds=_workload_bounds(
            config, ADVECTION2D_BOUNDS, "(amplitude, center_x, center_y, width)"
        ),
    )


@register_workload("burgers")
def _build_burgers(config: "OnlineTrainingConfig") -> BurgersWorkload:
    opts = _options(
        config,
        n_points=max(config.heat.grid_size, 4),
        n_timesteps=config.heat.n_timesteps,
    )
    return BurgersWorkload(
        burgers=Burgers1DConfig(**opts),
        parameter_bounds=_workload_bounds(config, BURGERS_BOUNDS, "(u_left, u_right, x0)"),
    )


@register_workload("fisher")
def _build_fisher(config: "OnlineTrainingConfig") -> FisherKPPWorkload:
    opts = _options(
        config,
        n_points=max(config.heat.grid_size, 4),
        n_timesteps=config.heat.n_timesteps,
    )
    return FisherKPPWorkload(
        fisher=FisherKPPConfig(**opts),
        parameter_bounds=_workload_bounds(config, FISHER_BOUNDS, "(rate, amplitude, center)"),
    )
