"""The on-line training session: explicit phases over pluggable workloads.

:class:`TrainingSession` decomposes the previously monolithic driver loop of
:func:`repro.melissa.run.run_online_training` into named phases that mirror
the asynchronous components of the real Melissa system:

* :meth:`submit` — the launcher keeps the batch scheduler fed with at most
  ``m`` client jobs,
* :meth:`produce` — each running client streams a bounded number of time
  steps per tick (volume-accounted through the transport),
* :meth:`receive` — pending messages are drained into the reservoir while it
  accepts them,
* :meth:`train` — once the reservoir watermark is reached, a configurable
  number of NN iterations run per tick; each may trigger a Breed steering,
* :meth:`should_stop` — the termination predicate.

:meth:`tick` runs one submit→produce→receive→train round, :meth:`run` loops
until termination and returns the :class:`OnlineTrainingResult`.  Observers
subscribe through the hook lists :attr:`on_tick`, :attr:`on_steering` and
:attr:`on_validation` instead of patching the loop.

The session is workload-agnostic: every scenario dependency (solver, bounds,
scalers, surrogate geometry) comes from the :class:`~repro.api.workloads.Workload`
resolved from ``config.workload``.  For ``workload="heat2d"`` the training
behaviour — RNG streams, losses, executed parameters, tick counts, transport
byte/message totals — is bit-for-bit identical to the historic monolithic
loop.  (One deliberate exception: the data channel's ``max_depth`` statistic
no longer counts the artificial ``put``/``get`` round-trip the old loop
performed per message, so it reports 0 instead of 1.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.api.config import OnlineTrainingConfig
from repro.api.workloads import Workload
from repro.breed.controller import BreedController, SteeringRecord
from repro.breed.samplers import ParameterSource
from repro.melissa.client import ClientFactory
from repro.melissa.launcher import Launcher
from repro.melissa.messages import TimeStepMessage
from repro.melissa.reservoir import Reservoir
from repro.melissa.scheduler import BatchScheduler
from repro.melissa.server import TrainingHistory, TrainingServer
from repro.melissa.transport import InProcessTransport
from repro.nn.optim import Adam
from repro.solvers.base import Solver
from repro.surrogate.model import DirectSurrogate
from repro.surrogate.validation import ValidationSet, validation_set_for_workload
from repro.utils.logging import EventLog
from repro.utils.rng import RngStreams

__all__ = ["OnlineTrainingResult", "TrainingSession"]

#: hook signatures (session, …) — see :meth:`TrainingSession.add_hook`
TickHook = Callable[["TrainingSession"], None]
SteeringHook = Callable[["TrainingSession", SteeringRecord], None]
ValidationHook = Callable[["TrainingSession", int, float], None]


@dataclass
class OnlineTrainingResult:
    """Everything produced by one on-line training run."""

    config: OnlineTrainingConfig
    method: str
    history: TrainingHistory
    model: DirectSurrogate
    executed_parameters: np.ndarray
    parameter_sources: List[str]
    steering_records: List[SteeringRecord]
    launcher_summary: Dict[str, int]
    reservoir_summary: Dict[str, float]
    server_summary: Dict[str, float]
    transport_bytes: int
    n_ticks: int
    steering_seconds: float
    workload: str = "heat2d"
    #: messages rejected by bounded transport channels (back-pressure)
    transport_dropped: int = 0

    @property
    def final_validation_loss(self) -> float:
        """Validation MSE at the last evaluation (normalised units)."""
        return self.history.final_validation_loss()

    @property
    def final_train_loss(self) -> float:
        """Training-batch MSE at the last recorded iteration (normalised units)."""
        return self.history.final_train_loss()

    @property
    def overfit_gap(self) -> float:
        """validation − train loss at the end of the run (positive ⇒ overfitting)."""
        return self.final_validation_loss - self.final_train_loss

    def uniform_fraction(self) -> float:
        """Fraction of executed parameter vectors that came from a uniform draw."""
        if not self.parameter_sources:
            return float("nan")
        uniform = sum(
            1
            for s in self.parameter_sources
            if s in (ParameterSource.INITIAL_UNIFORM, ParameterSource.MIX_UNIFORM)
        )
        return uniform / len(self.parameter_sources)


class TrainingSession:
    """One on-line training run, decomposed into explicit phases.

    Parameters
    ----------
    config:
        The run configuration; ``config.workload`` selects the scenario.
    workload:
        Optional pre-built workload (overrides the registry lookup, e.g. for
        ad-hoc scenarios that are not registered).
    solver:
        Optional pre-built solver (sharing one across runs avoids re-factorising
        the implicit system when sweeping hyper-parameters).
    validation_set:
        Optional pre-built validation set (reusable across runs of a study
        since the paper keeps it fixed).
    event_log:
        Optional structured event log for debugging / tests.
    """

    def __init__(
        self,
        config: OnlineTrainingConfig,
        workload: Optional[Workload] = None,
        solver: Optional[Solver] = None,
        validation_set: Optional[ValidationSet] = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        self.config = config
        self.event_log = event_log
        self.streams = RngStreams(config.seed)
        # Report the registry key the run was configured with; fall back to
        # the class-level name only for injected ad-hoc workload objects.
        self.workload_name = workload.name if workload is not None else config.workload
        self.workload = workload if workload is not None else config.build_workload()
        self.solver = solver if solver is not None else self.workload.build_solver()
        self.scalers = self.workload.build_scalers()

        # --- validation set (fixed, Halton-sequence parameters) -----------
        if validation_set is None:
            validation_set = validation_set_for_workload(
                self.workload,
                config.n_validation_trajectories,
                solver=self.solver,
            )
        self.validation_set = validation_set

        # --- model / optimizer --------------------------------------------
        self.model = DirectSurrogate(
            self.workload.surrogate_config(
                hidden_size=config.hidden_size,
                n_hidden_layers=config.n_hidden_layers,
                activation=config.activation,
                architecture=config.architecture,
            ),
            self.scalers,
            rng=self.streams.get("model_init"),
        )
        self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate)

        # --- steering ------------------------------------------------------
        self.sampler = config.build_sampler(self.workload)
        self.controller = BreedController(
            sampler=self.sampler, rng=self.streams.get("breed"), event_log=event_log
        )

        # --- framework ------------------------------------------------------
        initial_parameters = self.sampler.initial_parameters(
            config.n_simulations, self.streams.get("initial_sampling")
        )
        self.scheduler = BatchScheduler(
            job_limit=config.job_limit,
            rng=self.streams.get("scheduler"),
            max_start_delay=config.scheduler_max_start_delay,
        )
        self.client_factory = ClientFactory(solver=self.solver)
        self.launcher = Launcher(
            initial_parameters=initial_parameters,
            client_factory=self.client_factory,
            scheduler=self.scheduler,
            event_log=event_log,
        )
        self.reservoir = Reservoir(
            capacity=config.reservoir_capacity,
            watermark=min(config.reservoir_watermark, config.reservoir_capacity),
            rng=self.streams.get("reservoir"),
        )
        self.transport = InProcessTransport()
        self.server = TrainingServer(
            model=self.model,
            optimizer=self.optimizer,
            reservoir=self.reservoir,
            controller=self.controller,
            batch_size=config.batch_size,
            validation_set=self.validation_set,
            validation_period=config.validation_period,
            record_sample_statistics=config.record_sample_statistics,
            event_log=event_log,
        )

        self.pending_messages: Deque[TimeStepMessage] = deque()
        self.n_ticks = 0
        self._finalized = False
        self._checkpoint_policy = None  # attached lazily by run()

        # --- telemetry (observation only: no-ops unless enabled) -----------
        self._tracer = telemetry.tracer()
        registry = telemetry.metrics()
        self._m_ticks = registry.counter(
            "repro_session_ticks_total", help="submit→produce→receive→train rounds driven"
        )
        self._m_train_iters = registry.counter(
            "repro_session_train_iterations_total", help="NN training iterations completed"
        )
        self._m_steering = registry.counter(
            "repro_session_steering_total", help="Breed steering decisions applied"
        )
        self._m_validations = registry.counter(
            "repro_session_validations_total", help="validation evaluations performed"
        )

        # --- hooks ----------------------------------------------------------
        #: called after every completed tick with the session
        self.on_tick: List[TickHook] = []
        #: called with every new :class:`SteeringRecord` as it is applied
        self.on_steering: List[SteeringHook] = []
        #: called with ``(session, iteration, loss)`` for every validation point
        self.on_validation: List[ValidationHook] = []

    # ----------------------------------------------------------------- hooks
    def add_hook(self, event: str, callback: Callable) -> Callable:
        """Subscribe ``callback`` to ``"tick"``, ``"steering"`` or ``"validation"``."""
        hooks = {"tick": self.on_tick, "steering": self.on_steering, "validation": self.on_validation}
        if event not in hooks:
            raise KeyError(f"unknown hook event {event!r}; available: {sorted(hooks)}")
        hooks[event].append(callback)
        return callback

    def _fire_validation(self, since: int) -> None:
        history = self.server.history
        for index in range(since, len(history.validation_losses)):
            for hook in self.on_validation:
                hook(self, history.validation_iterations[index], history.validation_losses[index])

    def _fire_steering(self, since: int) -> None:
        for record in self.controller.records[since:]:
            for hook in self.on_steering:
                hook(self, record)

    # ---------------------------------------------------------------- phases
    def submit(self) -> List[int]:
        """Phase 1 — keep the scheduler fed up to the job limit; start jobs."""
        self.launcher.submit_available()
        started = self.launcher.advance_scheduler()
        for client in started:
            record = self.launcher.records[client.simulation_id]
            uniform = record.source in (ParameterSource.INITIAL_UNIFORM, ParameterSource.MIX_UNIFORM)
            self.server.mark_parameter_source(client.simulation_id, uniform)
        return [client.simulation_id for client in started]

    def produce(self) -> int:
        """Phase 2 — each running client streams a few time steps; returns count."""
        produced = 0
        if not self.reservoir.can_accept():
            return produced
        for client in self.launcher.running_clients():
            messages = client.produce(self.config.timesteps_per_tick)
            if messages:
                # Volume accounting only — one batched call per trajectory
                # chunk; the messages themselves stay in the local
                # bounded-memory pending queue.
                self.transport.account_batch(messages)
                self.pending_messages.extend(messages)
                produced += len(messages)
            if client.finished:
                self.launcher.mark_finished(client.simulation_id)
        return produced

    def receive(self) -> int:
        """Phase 3 — drain pending messages while the reservoir accepts them."""
        received = 0
        while self.pending_messages:
            if not self.reservoir.can_accept():
                break
            message = self.pending_messages.popleft()
            if not self.server.receive(message):
                self.pending_messages.appendleft(message)
                break
            received += 1
        return received

    def train(self) -> List[float]:
        """Phase 4 — NN iterations for this tick (empty before the watermark)."""
        losses: List[float] = []
        if not self.server.ready:
            return losses
        iters_before = self.server.iteration
        validations_before = len(self.server.history.validation_losses)
        steerings_before = len(self.controller.records)
        for _ in range(self.config.train_iterations_per_tick):
            if self.server.iteration >= self.config.max_iterations:
                break
            n_validation = len(self.server.history.validation_losses)
            n_steering = len(self.controller.records)
            loss = self.server.train_iteration(self.launcher)
            if loss is not None:
                losses.append(loss)
            if self.on_validation:
                self._fire_validation(n_validation)
            if self.on_steering:
                self._fire_steering(n_steering)
        # Counter mirrors as end-of-phase deltas: one float add per series
        # per tick instead of per iteration.
        if self.server.iteration > iters_before:
            self._m_train_iters.inc(self.server.iteration - iters_before)
        new_validations = len(self.server.history.validation_losses) - validations_before
        if new_validations:
            self._m_validations.inc(new_validations)
        new_steerings = len(self.controller.records) - steerings_before
        if new_steerings:
            self._m_steering.inc(new_steerings)
        return losses

    def should_stop(self) -> bool:
        """Phase 5 — termination: iteration budget reached, or data starved."""
        if self.server.iteration >= self.config.max_iterations:
            return True
        if self.launcher.all_finished and not self.pending_messages and not self.server.ready:
            # Not enough data was ever produced to reach the watermark.
            return True
        return False

    # --------------------------------------------------------------- driving
    def tick(self) -> bool:
        """Run one submit→produce→receive→train round; False when done."""
        self.n_ticks += 1
        self._m_ticks.inc()
        # One span per round keeps tracing inside the ≤2 % overhead budget
        # (docs/OBSERVABILITY.md); validation/steering/checkpoint events are
        # emitted at their own seams where they actually happen.
        with self._tracer.span("session.tick", cat="session"):
            self.submit()
            self.produce()
            self.receive()
            self.train()
            for hook in self.on_tick:
                hook(self)
        return not self.should_stop()

    def run(self) -> OnlineTrainingResult:
        """Drive ticks until termination and return the collected result."""
        self._ensure_checkpoint_policy()
        while self.n_ticks < self.config.max_ticks:
            # A session restored from a snapshot taken at the run's final tick
            # is already terminated; ticking it again would advance counters
            # past the uninterrupted run's values.  (Always false mid-loop:
            # tick() breaks out the moment should_stop() first turns true.)
            if self.should_stop():
                break
            if not self.tick():
                break
        result = self.result()
        self._tracer.flush()
        return result

    def _ensure_checkpoint_policy(self) -> None:
        """Attach the configured periodic snapshot policy (once)."""
        if self._checkpoint_policy is not None:
            return
        if self.config.checkpoint_every <= 0 or not self.config.checkpoint_dir:
            return
        # Imported lazily: repro.checkpoint builds on this module.
        from repro.checkpoint.policy import CheckpointPolicy

        self._checkpoint_policy = CheckpointPolicy(
            directory=self.config.checkpoint_dir,
            every_n_batches=self.config.checkpoint_every,
            keep=self.config.checkpoint_keep,
            compressed=self.config.checkpoint_compressed,
        ).attach(self)

    # ---------------------------------------------------------------- state
    def state_dict(self) -> Dict[str, object]:
        """Everything the training loop owns, as one nested state tree.

        The tree contains only JSON-compatible scalars/containers and numpy
        arrays; :func:`repro.checkpoint.save_session` splits it into an
        ``arrays.npz`` + JSON manifest snapshot.  Static run inputs — the
        workload, solver factorisation and Halton validation set — are
        deterministic functions of the configuration and are rebuilt on
        restore instead of being persisted.
        """
        pending = list(self.pending_messages)
        state: Dict[str, object] = {
            "n_ticks": self.n_ticks,
            "finalized": self._finalized,
            "streams": self.streams.state_dict(),
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "controller": self.controller.state_dict(),
            "scheduler": self.scheduler.state_dict(),
            "launcher": self.launcher.state_dict(),
            "reservoir": self.reservoir.state_dict(),
            "transport": self.transport.state_dict(),
            "server": self.server.state_dict(),
            "n_pending_messages": len(pending),
        }
        if pending:
            state["pending_simulation_ids"] = np.array(
                [int(m.simulation_id or 0) for m in pending], dtype=np.int64
            )
            state["pending_timesteps"] = np.array([m.timestep for m in pending], dtype=np.int64)
            state["pending_parameters"] = np.stack([m.parameters for m in pending], axis=0)
            state["pending_payloads"] = np.stack([m.payload for m in pending], axis=0)
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a freshly constructed session to a snapshotted state.

        The constructor has already rebuilt every component from the
        configuration (drawing initialisation randomness in the process);
        loading overwrites all mutable state — including the RNG stream
        states, in place, so components sharing a generator stay aliased —
        which makes the restored session bit-identical to the saved one.
        """
        self.streams.load_state_dict(state["streams"])  # type: ignore[arg-type]
        self.model.load_state_dict(state["model"])  # type: ignore[arg-type]
        self.optimizer.load_state_dict(state["optimizer"])  # type: ignore[arg-type]
        self.controller.load_state_dict(state["controller"])  # type: ignore[arg-type]
        self.scheduler.load_state_dict(state["scheduler"])  # type: ignore[arg-type]
        self.launcher.load_state_dict(state["launcher"])  # type: ignore[arg-type]
        self.reservoir.load_state_dict(state["reservoir"])  # type: ignore[arg-type]
        self.transport.load_state_dict(state["transport"])  # type: ignore[arg-type]
        self.server.load_state_dict(state["server"])  # type: ignore[arg-type]
        self.pending_messages = deque(
            TimeStepMessage(
                simulation_id=int(state["pending_simulation_ids"][index]),  # type: ignore[index]
                parameters=np.asarray(state["pending_parameters"][index]),  # type: ignore[index]
                timestep=int(state["pending_timesteps"][index]),  # type: ignore[index]
                payload=np.asarray(state["pending_payloads"][index]),  # type: ignore[index]
            )
            for index in range(int(state["n_pending_messages"]))  # type: ignore[arg-type]
        )
        self.n_ticks = int(state["n_ticks"])  # type: ignore[arg-type]
        self._finalized = bool(state["finalized"])

    # ---------------------------------------------------------------- result
    def result(self) -> OnlineTrainingResult:
        """Finalise (one last validation point) and package the run's output."""
        if not self._finalized:
            self._finalized = True
            if self.validation_set is not None:
                n_validation = len(self.server.history.validation_losses)
                with self._tracer.span("session.final_validation", cat="session"):
                    self.server.evaluate_validation()
                self._m_validations.inc()
                if self.on_validation:
                    self._fire_validation(n_validation)
            # Ingest mirrors are draw-time synced; flush the tail so the
            # registry matches the canonical totals at run completion.
            self.reservoir.sync_metrics()
        executed_parameters, sources = self.launcher.executed_parameters()
        return OnlineTrainingResult(
            config=self.config,
            method=self.sampler.name,
            history=self.server.history,
            model=self.model,
            executed_parameters=executed_parameters,
            parameter_sources=sources,
            steering_records=list(self.controller.records),
            launcher_summary=self.launcher.summary(),
            reservoir_summary=self.reservoir.summary(),
            server_summary=self.server.summary(),
            transport_bytes=self.transport.total_bytes(),
            n_ticks=self.n_ticks,
            steering_seconds=self.controller.total_steering_seconds,
            workload=self.workload_name,
            transport_dropped=self.transport.total_dropped(),
        )
