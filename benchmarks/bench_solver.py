"""Appendix B.1 — heat-solver benches.

Not a paper figure per se, but the substrate every experiment depends on:
benchmarks the cost of one full trajectory at several grid resolutions
(including the paper's 64x64) and validates the long-time solution against the
analytic steady state.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.solvers.analytic import steady_state_2d
from repro.solvers.heat2d import Heat2DConfig, Heat2DImplicitSolver

PARAMS = [300.0, 100.0, 500.0, 200.0, 400.0]


@pytest.mark.benchmark(group="solver")
@pytest.mark.parametrize("grid_size", [16, 32, 64])
def test_heat2d_trajectory(benchmark, grid_size):
    config = Heat2DConfig(grid_size=grid_size, n_timesteps=20)
    solver = Heat2DImplicitSolver(config)

    trajectory = benchmark(lambda: solver.solve(PARAMS))
    fields = trajectory.as_array()
    emit(
        f"Solver bench — implicit Euler, {grid_size}x{grid_size}, 20 steps",
        format_table(
            ["metric", "value"],
            [
                ("field size", f"{solver.field_size}"),
                ("temperature range (K)", f"[{fields.min():.1f}, {fields.max():.1f}]"),
                ("maximum principle", str(bool(fields.min() >= 100.0 - 1e-8 and fields.max() <= 500.0 + 1e-8))),
            ],
        ),
    )
    assert fields.shape == (21, grid_size * grid_size)


@pytest.mark.benchmark(group="solver", min_rounds=1, max_time=1.0, warmup=False)
def test_heat2d_steady_state_accuracy(benchmark):
    config = Heat2DConfig(grid_size=32, n_timesteps=600)
    solver = Heat2DImplicitSolver(config)

    final = benchmark.pedantic(lambda: solver.solve(PARAMS).final_field, rounds=1, iterations=1)
    analytic = steady_state_2d(config.grid.coordinates, *PARAMS[1:])
    interior = (slice(2, -2), slice(2, -2))
    error = np.abs(final.reshape(32, 32)[interior] - analytic[interior]).max()
    emit(
        "Solver validation — long-time solution vs analytic steady state (32x32)",
        f"max interior error after 600 steps: {error:.3f} K (dynamic range 400 K)",
    )
    assert error < 5.0
