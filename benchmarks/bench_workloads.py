"""Multi-physics workload benches.

Beyond the paper: times one full trajectory of each new solver family
(advection–diffusion, viscous Burgers, Fisher–KPP), validates the transport
schemes against their closed-form references, and reproduces the
cross-workload Breed-vs-Random study at the chosen ``--repro-scale``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.solvers.advection import AdvectionDiffusion1DConfig, AdvectionDiffusion1DSolver
from repro.solvers.burgers import Burgers1DConfig, Burgers1DSolver
from repro.solvers.reaction_diffusion import FisherKPPConfig, FisherKPPSolver


@pytest.mark.benchmark(group="workloads")
@pytest.mark.parametrize(
    "name,solver,params",
    [
        ("advection1d", AdvectionDiffusion1DSolver(AdvectionDiffusion1DConfig()), [1.5, 0.3, 0.05]),
        ("burgers", Burgers1DSolver(Burgers1DConfig()), [1.0, 0.2, 0.3]),
        ("fisher", FisherKPPSolver(FisherKPPConfig()), [6.0, 0.8, 0.5]),
    ],
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_multiphysics_trajectory(benchmark, name, solver, params):
    trajectory = benchmark(lambda: solver.solve(params))
    fields = trajectory.as_array()
    emit(
        f"Workload bench — {name}, {solver.field_size} points, {solver.n_timesteps} steps",
        format_table(
            ["metric", "value"],
            [
                ("field size", f"{solver.field_size}"),
                ("field range", f"[{fields.min():.3f}, {fields.max():.3f}]"),
            ],
        ),
    )
    assert fields.shape == (solver.n_timesteps + 1, solver.field_size)


@pytest.mark.benchmark(group="workloads", min_rounds=1, max_time=1.0, warmup=False)
def test_transport_schemes_vs_analytic(benchmark):
    """Upwind transport vs the exact advected Gaussian / Cole–Hopf wave."""

    def errors():
        adv = AdvectionDiffusion1DSolver(AdvectionDiffusion1DConfig(n_points=64, n_timesteps=50))
        *_, adv_last = adv.steps([1.5, 0.3, 0.05])
        adv_exact = adv.exact([1.5, 0.3, 0.05], 50 * adv.config.dt)
        bur = Burgers1DSolver(Burgers1DConfig(n_points=64, n_timesteps=50))
        *_, bur_last = bur.steps([1.0, 0.2, 0.3])
        bur_exact = bur.exact([1.0, 0.2, 0.3], 50 * bur.config.dt)
        rel = lambda a, b: float(np.linalg.norm(a - b) / np.linalg.norm(b))  # noqa: E731
        return rel(adv_last, adv_exact), rel(bur_last, bur_exact)

    adv_err, bur_err = benchmark.pedantic(errors, rounds=1, iterations=1)
    emit(
        "Transport validation — relative L2 error vs closed form (64 points)",
        format_table(
            ["scheme", "rel. L2 error"],
            [
                ("advection1d vs advected Gaussian", f"{adv_err:.4f}"),
                ("burgers vs Cole-Hopf wave", f"{bur_err:.4f}"),
            ],
        ),
    )
    assert adv_err < 0.25
    assert bur_err < 0.05


@pytest.mark.benchmark(group="workloads", min_rounds=1, max_time=60.0, warmup=False)
def test_cross_workload_study(benchmark, repro_scale, repro_jobs):
    """The cross-workload Breed-vs-Random study on the three new families."""
    from repro.experiments.cross_workload import run_cross_workload

    backend = "process" if repro_jobs > 1 else "serial"
    result = benchmark.pedantic(
        lambda: run_cross_workload(
            scale=repro_scale,
            workloads=["advection1d", "burgers", "fisher"],
            backend=backend,
            max_workers=repro_jobs if repro_jobs > 1 else None,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        f"Cross-workload study — Breed vs Random ({repro_scale} scale, backend={backend})",
        format_table(
            ["workload", "method", "validation MSE"],
            [(w, m, f"{val:.5f}") for w, m, _, val, _ in result.summary_rows()],
        ),
    )
    assert len(result.study.runs) == 6
