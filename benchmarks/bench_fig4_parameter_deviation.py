"""Figure 4 — input-parameter deviation histograms.

Regenerates both panels:

* 4a — within one Breed run, deviation histogram of uniform-sourced vs
  proposal-sourced parameter vectors,
* 4b — whole-run comparison, Random vs Breed.

The paper's qualitative claim to check: the proposal/Breed histograms have
their mean shifted towards *higher* parameter-vector deviation (Breed samples
regions where the five temperatures are most dissimilar).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table, render_histograms
from repro.experiments.fig4 import run_fig4

#: seeds averaged by the smoke-scale bench.  With only ~50 parameter vectors
#: per run (vs 800 in the paper) the per-run shift is noisy, so the qualitative
#: claim is checked on the multi-seed average (see EXPERIMENTS.md).
SEEDS = (0, 1, 2, 3)


@pytest.mark.benchmark(group="fig4", min_rounds=1, max_time=1.0, warmup=False)
def test_fig4_parameter_deviation(benchmark, repro_scale):
    seeds = SEEDS if repro_scale == "smoke" else (0,)

    def run_all_seeds():
        return [run_fig4(scale=repro_scale, seed=seed, n_bins=12) for seed in seeds]

    results = benchmark.pedantic(run_all_seeds, rounds=1, iterations=1)
    first = results[0]

    emit(
        f"Figure 4a — deviation per point source, one Breed run (seed {seeds[0]}, {repro_scale} scale)",
        render_histograms(first.by_source),
    )
    emit(
        "Figure 4b — deviation per run, Random vs Breed",
        render_histograms(first.by_method),
    )
    per_seed_rows = [
        (
            seed,
            f"{r.by_method['Random'].mean:.2f}",
            f"{r.by_method['Breed'].mean:.2f}",
            f"{r.breed_mean_shift:+.2f}",
            f"{r.proposal_mean_shift:+.2f}",
            r.by_source["Proposal"].n,
        )
        for seed, r in zip(seeds, results)
    ]
    emit(
        "Figure 4 — per-seed deviation means (Kelvin)",
        format_table(
            ["seed", "Random mean", "Breed mean", "Breed shift", "proposal shift", "# proposal vectors"],
            per_seed_rows,
        ),
    )

    # Structural checks matching the paper's construction.
    for result in results:
        budget = result.breed_run.config.n_simulations
        assert result.by_method["Breed"].n == budget
        assert result.by_method["Random"].n == budget
        assert result.by_source["Proposal"].n + result.by_source["Uniform"].n == budget
        assert result.by_source["Proposal"].n > 0, "Breed run produced no proposal-sourced vectors"

    # Qualitative shape (paper Fig. 4b): on average across seeds, the Breed
    # run's parameter-deviation mean is shifted towards higher values.
    mean_shift = float(np.mean([r.breed_mean_shift for r in results]))
    emit("Figure 4 — mean Breed deviation shift across seeds", f"{mean_shift:+.2f} K")
    assert mean_shift > 0.0
