"""Hot-path micro-benches driven through the ``repro.bench`` scenario registry.

These wrap the same scenarios the regression harness times (``python -m
repro.cli bench``) in pytest-benchmark, so the interactive benchmark workflow
(``pytest benchmarks/ --benchmark-only``) and the machine-readable regression
gate measure *one* definition of each hot path.  The selection covers the
vectorisation targets of the performance pass documented in
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bench import get_scenario

HOTPATHS = [
    "reservoir/draw",
    "reservoir/ingest",
    "nn/forward",
    "nn/train_step",
    "nn/optimizer_step",
    "solver/heat2d_explicit",
    "solver/advection2d",
    "session/online_smoke",
]


@pytest.mark.benchmark(group="hotpaths")
@pytest.mark.parametrize("scenario_name", HOTPATHS)
def test_hotpath_scenario(benchmark, scenario_name):
    """Time one registry scenario; the returned unit count must be stable."""
    scenario = get_scenario(scenario_name)
    run = scenario.build()
    try:
        units = benchmark(run.fn)
    finally:
        if run.cleanup is not None:
            run.cleanup()
    emit(
        f"Hot path — {scenario.name}",
        f"{units} {scenario.units} per call ({scenario.description})",
    )
    assert units > 0
