"""Figure 6 — correlation matrix of the per-sample training statistics.

Runs one Breed experiment with per-sample statistics recording and prints the
correlation matrix over (NN iteration, parameter index, time step, per-sample
loss, uniform indicator, batch loss, loss deviation), plus the key findings of
Section 4.2:

* deviation metric vs NN iteration      (paper: -0.02 — essentially uncorrelated),
* deviation metric vs per-sample loss   (paper: +0.27 — positive),
* batch loss / sample loss vs iteration (paper: -0.40 / -0.31 — losses decrease).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table, render_correlation
from repro.experiments.fig6 import run_fig6

#: the coefficients reported in the paper (for side-by-side printing)
PAPER_VALUES = {
    "deviation_vs_iteration": -0.02,
    "deviation_vs_sample_loss": +0.27,
    "batch_loss_vs_iteration": -0.40,
    "sample_loss_vs_iteration": -0.31,
}


@pytest.mark.benchmark(group="fig6", min_rounds=1, max_time=1.0, warmup=False)
def test_fig6_correlation_matrix(benchmark, repro_scale):
    result = benchmark.pedantic(
        run_fig6, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )

    emit(f"Figure 6 — correlation matrix ({repro_scale} scale)", render_correlation(result.matrix))

    findings = result.key_findings()
    rows = [
        (name, f"{PAPER_VALUES[name]:+.2f}", f"{findings[name]:+.3f}")
        for name in PAPER_VALUES
    ]
    emit(
        "Figure 6 — paper vs reproduced key coefficients",
        format_table(["coefficient", "paper", "reproduced"], rows),
    )

    checks = result.checks()
    assert checks["deviation_weakly_coupled_to_iteration"], findings
    assert checks["deviation_positively_tracks_sample_loss"], findings
    assert checks["losses_decrease_with_iteration"], findings
