"""Parallel study execution — serial vs process-pool executor backends.

The paper's studies are grids of independent Melissa runs (Appendix B.2);
the study engine fans them out over a ``ProcessPoolExecutor``.  This bench
runs the same multi-configuration study through both backends, checks the
records are bit-identical (excluding the wall-clock timing metrics), and
reports the wall-clock speedup.  On a single-core host the process backend
only adds pool overhead, so the speedup assertion is gated on the cores
actually available to the process.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.experiments.base import base_config
from repro.experiments.fig3b import SMOKE_FACTORS, fig3b_configurations
from repro.workflow.executor import TIMING_METRICS
from repro.workflow.study import StudyRunner


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _run_study(scale: str, backend: str, max_workers: int | None = None):
    template = base_config(scale, method="breed", seed=0)
    runner = StudyRunner(
        base_config=template, study_name="parallel", backend=backend, max_workers=max_workers
    )
    configurations = fig3b_configurations(SMOKE_FACTORS)
    start = time.perf_counter()
    results = runner.run_all(configurations)
    return results, time.perf_counter() - start


@pytest.mark.benchmark(group="parallel-study", min_rounds=1, max_time=1.0, warmup=False)
def test_parallel_study_speedup(benchmark, repro_scale, repro_jobs):
    workers = max(repro_jobs, 2)
    serial_results, serial_seconds = _run_study(repro_scale, "serial")
    (process_results, process_seconds) = benchmark.pedantic(
        _run_study,
        kwargs={"scale": repro_scale, "backend": "process", "max_workers": workers},
        rounds=1,
        iterations=1,
    )

    # Determinism contract: the two backends must agree bit-for-bit on every
    # metric and series (timing metrics measure wall-clock and are excluded).
    assert len(serial_results) == len(process_results)
    for serial_run, process_run in zip(serial_results, process_results):
        assert serial_run.name == process_run.name
        assert serial_run.series == process_run.series
        for key, value in serial_run.metrics.items():
            if key not in TIMING_METRICS:
                assert process_run.metrics[key] == value, (serial_run.name, key)

    speedup = serial_seconds / process_seconds if process_seconds > 0 else float("inf")
    emit(
        f"Parallel study — serial vs process backend ({repro_scale} scale, "
        f"{len(serial_results)} runs, {workers} workers, {_available_cpus()} CPUs available)",
        format_table(
            ["backend", "wall-clock (s)", "speedup"],
            [
                ("serial", f"{serial_seconds:.2f}", "1.00x"),
                (f"process x{workers}", f"{process_seconds:.2f}", f"{speedup:.2f}x"),
            ],
        ),
    )

    if _available_cpus() >= 2:
        assert speedup > 1.0, (
            f"process backend with {workers} workers should beat serial on "
            f"{_available_cpus()} CPUs ({process_seconds:.2f}s vs {serial_seconds:.2f}s)"
        )
