"""Table 1 — fixed hyper-parameters of the paper's studies.

Regenerates the table rows (study, sigma, P, N, r_s, r_e, r_c, H, L) and
benchmarks the configuration-construction path (building every Breed
configuration of the three studies, including the varied-value grids).
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.experiments.table1 import TABLE1, VARIED_VALUES, breed_config_for_study, render_table1


def build_all_study_configs() -> int:
    """Instantiate every BreedConfig implied by Table 1 + Section 4.1 grids."""
    count = 0
    # Study 1: architecture is varied, Breed values fixed.
    breed_config_for_study("study1")
    count += 1
    # Study 2: sampling parameters varied one at a time.
    for factor, values in VARIED_VALUES["study2"].items():
        for value in values:
            breed_config_for_study("study2", **{factor: value})
            count += 1
    # Study 3: mixing ratio varied one at a time.
    for factor, values in VARIED_VALUES["study3"].items():
        for value in values:
            breed_config_for_study("study3", **{factor: value})
            count += 1
    return count


def test_table1_configurations(benchmark):
    count = benchmark(build_all_study_configs)
    emit("Table 1 — fixed hyper-parameters per study (paper values)", render_table1())
    varied = "\n".join(
        f"{study}: " + ", ".join(f"{k}={v}" for k, v in grids.items())
        for study, grids in VARIED_VALUES.items()
    )
    emit("Section 4.1 — varied-value grids", varied)
    assert count == 1 + sum(len(v) for v in VARIED_VALUES["study2"].values()) + sum(
        len(v) for v in VARIED_VALUES["study3"].values()
    )
    assert set(TABLE1) == {"study1", "study2", "study3"}
