"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables/figures at the ``smoke``
scale (see ``repro.experiments.base.SCALES``) and prints the reproduced
rows/series; run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
The scale can be overridden with ``--repro-scale small`` for longer runs.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        action="store",
        default="smoke",
        choices=["smoke", "small", "paper"],
        help="experiment scale used by the figure-reproduction benches",
    )
    parser.addoption(
        "--repro-jobs",
        action="store",
        type=int,
        default=1,
        help="worker count for the study benches (>1 selects the process executor backend)",
    )


@pytest.fixture(scope="session")
def repro_scale(request) -> str:
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def repro_jobs(request) -> int:
    return request.config.getoption("--repro-jobs")


@pytest.fixture(scope="session")
def repro_backend(repro_jobs) -> str:
    return "process" if repro_jobs > 1 else "serial"


def emit(title: str, body: str) -> None:
    """Print a reproduced table/figure with a visible banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
