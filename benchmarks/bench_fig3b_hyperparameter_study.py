"""Figure 3b — performance comparison across Breed hyper-parameters.

One panel per hyper-parameter (window N, period P, sigma, r_start, r_end,
r_breakpoint), each value run as an independent Breed experiment with the
architecture fixed to H=16, L=1 (Table 1, studies 2-3).  Prints, per panel and
value, the final train/validation MSE and the overfit gap — the series behind
the paper's six sub-plots.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.experiments.fig3b import PAPER_FACTORS, SMOKE_FACTORS, run_fig3b


@pytest.mark.benchmark(group="fig3b", min_rounds=1, max_time=1.0, warmup=False)
def test_fig3b_hyperparameter_study(benchmark, repro_scale, repro_backend, repro_jobs):
    factors = SMOKE_FACTORS if repro_scale == "smoke" else PAPER_FACTORS

    result = benchmark.pedantic(
        run_fig3b,
        kwargs={
            "scale": repro_scale,
            "factors": factors,
            "seed": 0,
            "backend": repro_backend,
            "max_workers": repro_jobs,
        },
        rounds=1,
        iterations=1,
    )

    rows = [
        (factor, f"{value:g}", f"{train:.5f}", f"{val:.5f}", f"{gap:+.5f}")
        for factor, value, train, val, gap in result.summary_rows()
    ]
    emit(
        f"Figure 3b — Breed hyper-parameter study ({repro_scale} scale, H=16, L=1)",
        format_table(["hyper-parameter", "value", "train MSE", "validation MSE", "gap (val-train)"], rows),
    )
    best = [(panel.factor, f"{panel.best_value():g}") for panel in result.panels]
    emit("Figure 3b — best value per hyper-parameter (lowest validation MSE)",
         format_table(["hyper-parameter", "best value"], best))

    assert len(result.panels) == len(factors)
    for factor, values in factors.items():
        assert set(result.panel(factor).curves) == {float(v) for v in values}
