"""Micro-benchmarks of the training-path components.

These are ablation/throughput benches for the design choices documented in
DESIGN.md: the NumPy autograd training step (the PyTorch substitute), the
per-sample-loss acquisition bookkeeping, and the AMIS resampling step whose
complexity the paper states is O(K).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro import nn
from repro.analysis.report import format_table
from repro.api.workloads import Heat2DWorkload
from repro.breed.acquisition import LossDeviationTracker
from repro.breed.amis import AMISConfig, AdaptiveImportanceSampler
from repro.nn.tensor import Tensor
from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.solvers.heat2d import Heat2DConfig
from repro.surrogate.model import DirectSurrogate


@pytest.mark.benchmark(group="training")
@pytest.mark.parametrize("hidden,layers", [(16, 1), (64, 3)])
def test_training_step(benchmark, hidden, layers):
    """One Adam step on the paper's surrogate (batch 128, output 64x64)."""
    rng = np.random.default_rng(0)
    workload = Heat2DWorkload(heat=Heat2DConfig(grid_size=64, n_timesteps=100))
    model = DirectSurrogate(
        workload.surrogate_config(hidden_size=hidden, n_hidden_layers=layers, activation="relu"),
        workload.build_scalers(),
        rng=rng,
    )
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    inputs = Tensor(rng.random((128, 6)))
    targets = Tensor(rng.random((128, 64 * 64)))

    def step():
        model.zero_grad()
        loss = nn.functional.per_sample_mse(model(inputs), targets).mean()
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark(step)
    emit(
        f"Training step bench — H={hidden}, L={layers}, batch=128, output=4096",
        f"parameters: {model.num_parameters()}, loss after step: {loss:.5f}",
    )
    assert np.isfinite(loss)


@pytest.mark.benchmark(group="breed")
def test_acquisition_ingest(benchmark):
    """Ingest one batch of per-sample losses into the loss-deviation tracker."""
    rng = np.random.default_rng(0)
    tracker = LossDeviationTracker()
    for sim_id in range(800):
        tracker.register_parameters(sim_id, rng.uniform(100, 500, 5))
    sim_ids = rng.integers(0, 800, size=128)
    timesteps = rng.integers(0, 101, size=128)
    losses = rng.random(128)

    def ingest():
        tracker.observe_batch(1, sim_ids, timesteps, losses)
        return tracker.n_observations

    benchmark(ingest)
    emit("Breed bench — acquisition ingest", f"observations ingested: {tracker.n_observations}")


@pytest.mark.benchmark(group="breed")
@pytest.mark.parametrize("n_samples", [10, 100, 400])
def test_amis_step_scales_with_k(benchmark, n_samples):
    """One AMIS resampling step; the paper states O(K) complexity."""
    rng = np.random.default_rng(0)
    sampler = AdaptiveImportanceSampler(HEAT2D_BOUNDS, AMISConfig(sigma=10.0))
    locations = rng.uniform(100, 500, size=(200, 5))
    q_values = rng.random(200)

    result = benchmark(
        lambda: sampler.propose(locations, q_values, n_samples, concentrate_probability=0.7, rng=rng)
    )
    emit(
        f"Breed bench — AMIS step, K={n_samples}",
        format_table(
            ["metric", "value"],
            [
                ("samples produced", f"{result.n_samples}"),
                ("from proposal", f"{result.n_proposal}"),
                ("from uniform mixing", f"{result.n_uniform}"),
                ("weight ESS", f"{result.ess:.1f}"),
            ],
        ),
    )
    assert result.n_samples == n_samples
