"""Checkpoint subsystem cost: snapshot latency and per-batch overhead.

Two benches:

* ``test_snapshot_save_restore_latency`` measures one full-session
  ``save_session``/``restore_session`` round trip (plain and compressed) plus
  the snapshot's on-disk size, for a mid-run session.
* ``test_checkpoint_overhead_per_interval`` runs the same training
  configuration with snapshotting disabled / every 100 / every 10 batches and
  reports wall-clock and per-batch overhead — the number to consult when
  choosing ``--checkpoint-every`` (the paper's fault-tolerance stance is that
  durability must not meaningfully slow the hot loop).

Run with ``pytest benchmarks/bench_checkpoint.py --benchmark-only -s``
(add ``--benchmark-json out.json`` for machine-readable results, as for the
other benches).
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.api.session import TrainingSession
from repro.checkpoint import restore_session, save_session
from repro.experiments.base import base_config
from repro.workflow.executor import TIMING_METRICS  # noqa: F401  (contract reference)


def _bench_config(checkpoint_dir: str | None = None, checkpoint_every: int = 0):
    config = base_config("smoke", method="breed", seed=0)
    return dataclasses.replace(
        config,
        n_simulations=32,
        max_iterations=200,
        n_validation_trajectories=4,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )


def _mid_run_session() -> TrainingSession:
    session = TrainingSession(_bench_config())
    while session.server.iteration < 100:
        if not session.tick():
            break
    return session


def _dir_size(path: Path) -> int:
    return sum(f.stat().st_size for f in path.rglob("*") if f.is_file())


@pytest.mark.benchmark(group="checkpoint", min_rounds=1, max_time=2.0, warmup=False)
def test_snapshot_save_restore_latency(benchmark, tmp_path):
    session = _mid_run_session()
    counter = {"n": 0}

    def save_once():
        # a fresh directory per round: save_session is idempotent per tick
        counter["n"] += 1
        return save_session(session, tmp_path / f"round-{counter['n']}")

    snapshot = benchmark.pedantic(save_once, rounds=5, iterations=1)

    start = time.perf_counter()
    restored = restore_session(snapshot)
    restore_seconds = time.perf_counter() - start
    assert restored.server.iteration == session.server.iteration

    start = time.perf_counter()
    compressed = save_session(session, tmp_path / "compressed", compressed=True)
    compressed_seconds = time.perf_counter() - start

    emit(
        "Session snapshot — save/restore latency and size (smoke scale, mid-run)",
        format_table(
            ["operation", "seconds", "snapshot size (KiB)"],
            [
                ("save", f"{benchmark.stats.stats.mean:.4f}", f"{_dir_size(snapshot) / 1024:.1f}"),
                ("save (compressed)", f"{compressed_seconds:.4f}", f"{_dir_size(compressed) / 1024:.1f}"),
                ("restore (incl. fast-forward)", f"{restore_seconds:.4f}", "-"),
            ],
        ),
    )
    assert _dir_size(compressed) <= _dir_size(snapshot)


@pytest.mark.benchmark(group="checkpoint", min_rounds=1, max_time=2.0, warmup=False)
def test_checkpoint_overhead_per_interval(benchmark, tmp_path):
    def run(interval: int):
        directory = str(tmp_path / f"every-{interval}") if interval else None
        config = _bench_config(directory, checkpoint_every=interval)
        start = time.perf_counter()
        result = TrainingSession(config).run()
        return result, time.perf_counter() - start

    baseline, baseline_seconds = run(0)
    sparse, sparse_seconds = run(100)
    dense, dense_seconds = benchmark.pedantic(run, args=(10,), rounds=1, iterations=1)

    # Snapshotting is an observer: results must be bit-identical either way.
    assert dense.history.train_losses == baseline.history.train_losses
    assert sparse.history.validation_losses == baseline.history.validation_losses

    n_batches = float(baseline.server_summary["iterations"])
    rows = []
    for label, seconds in (
        ("disabled", baseline_seconds),
        ("every 100 batches", sparse_seconds),
        ("every 10 batches", dense_seconds),
    ):
        overhead = seconds - baseline_seconds
        rows.append(
            (
                label,
                f"{seconds:.3f}",
                f"{overhead:+.3f}",
                f"{overhead / n_batches * 1e3:+.3f}",
            )
        )
    emit(
        f"Checkpoint overhead — {n_batches:.0f} training batches (smoke scale)",
        format_table(["snapshot interval", "wall-clock (s)", "overhead (s)", "overhead/batch (ms)"], rows),
    )
