"""Figure 3a — performance comparison across NN architectures (Breed vs Random).

Regenerates the architecture grid of the paper (at the configured scale) and
prints, per (H, L) cell and method, the final train/validation MSE and the
overfit gap.  The paper's qualitative claim to check: with growing model
expressivity, Random runs overfit (train < validation, growing gap) while
Breed's curves stay close.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.experiments.fig3a import run_fig3a

#: architecture grid per scale — "smoke" keeps the corner cells of the paper's 3x3
GRIDS = {
    "smoke": ([16, 64], [1, 3]),
    "small": ([16, 32, 64], [1, 2, 3]),
    "paper": ([16, 32, 64], [1, 2, 3]),
}


@pytest.mark.benchmark(group="fig3a", min_rounds=1, max_time=1.0, warmup=False)
def test_fig3a_architecture_study(benchmark, repro_scale, repro_backend, repro_jobs):
    hidden_sizes, layer_counts = GRIDS.get(repro_scale, GRIDS["smoke"])

    result = benchmark.pedantic(
        run_fig3a,
        kwargs={
            "scale": repro_scale,
            "hidden_sizes": hidden_sizes,
            "layer_counts": layer_counts,
            "seed": 0,
            "backend": repro_backend,
            "max_workers": repro_jobs,
        },
        rounds=1,
        iterations=1,
    )

    rows = [
        (label, method, f"{train:.5f}", f"{val:.5f}", f"{gap:+.5f}")
        for label, method, train, val, gap in result.summary_rows()
    ]
    emit(
        f"Figure 3a — architecture study ({repro_scale} scale)",
        format_table(["architecture", "method", "train MSE", "validation MSE", "gap (val-train)"], rows),
    )
    emit(
        "Figure 3a — mean overfit gap per method",
        format_table(
            ["method", "mean gap"],
            [
                ("Breed", f"{result.mean_overfit_gap('Breed'):+.5f}"),
                ("Random", f"{result.mean_overfit_gap('Random'):+.5f}"),
            ],
        ),
    )

    # Structural checks: every requested cell produced curves for both methods.
    assert len(result.cells) == len(hidden_sizes) * len(layer_counts)
    for cell in result.cells:
        assert set(cell.curves) == {"Breed", "Random"}
        for curve in cell.curves.values():
            assert curve.train_iterations.size > 0
