"""Framework behaviour and the "no computational overhead" claim (Section 6).

Two benches:

* ``test_steering_overhead`` runs matched Random and Breed experiments and
  reports the wall-clock cost of the steering machinery (loss-statistics
  bookkeeping + AMIS resampling) against the total run, backing the paper's
  claim that Breed improves generalisation *without computational overhead*.
* ``test_reservoir_throughput`` micro-benchmarks the reservoir's put/sample
  path (Appendix A), the hot loop of the on-line server.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.analysis.report import format_table
from repro.experiments.overhead import run_overhead
from repro.melissa.reservoir import Reservoir


@pytest.mark.benchmark(group="overhead", min_rounds=1, max_time=1.0, warmup=False)
def test_steering_overhead(benchmark, repro_scale):
    result = benchmark.pedantic(
        run_overhead, kwargs={"scale": repro_scale, "seed": 0}, rounds=1, iterations=1
    )
    summary = result.summary()
    emit(
        f"Section 6 claim — steering overhead ({repro_scale} scale)",
        format_table(
            ["metric", "value"],
            [
                ("Breed steering events", f"{summary['breed_steering_events']:.0f}"),
                ("Breed steering wall-clock (s)", f"{summary['breed_steering_seconds']:.4f}"),
                ("steering seconds per event", f"{summary['steering_seconds_per_event']:.5f}"),
                ("Breed NN iterations", f"{summary['breed_iterations']:.0f}"),
                ("Random final validation MSE", f"{summary['random_final_validation']:.5f}"),
                ("Breed final validation MSE", f"{summary['breed_final_validation']:.5f}"),
            ],
        ),
    )
    assert result.random_run.steering_seconds == 0.0
    assert result.overhead_is_negligible


@pytest.mark.benchmark(group="overhead")
def test_reservoir_throughput(benchmark):
    rng = np.random.default_rng(0)
    field = rng.random(64 * 64)
    x = rng.random(6)

    def workload():
        reservoir = Reservoir(capacity=1000, watermark=100, rng=np.random.default_rng(1))
        accepted = 0
        for i in range(2000):
            accepted += int(reservoir.put(i % 37, i % 101, x, field))
            if i % 4 == 0:
                reservoir.sample_batch(128)
        return accepted

    accepted = benchmark(workload)
    emit(
        "Appendix A — reservoir micro-benchmark",
        f"accepted {accepted} / 2000 samples with capacity 1000, watermark 100, batch 128",
    )
    assert accepted > 0
