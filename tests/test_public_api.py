"""Public-API smoke tests: every documented export resolves and is importable."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.nn",
    "repro.solvers",
    "repro.sampling",
    "repro.melissa",
    "repro.breed",
    "repro.surrogate",
    "repro.workflow",
    "repro.analysis",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_imports(package_name):
    module = importlib.import_module(package_name)
    assert module is not None


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package_name}.__all__ lists missing attribute {name!r}"


def test_top_level_convenience_exports():
    import repro

    assert repro.__version__
    assert callable(repro.run_online_training)
    assert repro.OnlineTrainingConfig is not None
    assert repro.OnlineTrainingResult is not None
    assert repro.TrainingSession is not None
    assert callable(repro.register_workload)
    assert {"heat2d", "heat1d", "analytic"} <= set(repro.workload_names())


def test_examples_are_syntactically_valid():
    """Every example script must at least compile (full runs are exercised manually)."""
    import pathlib
    import py_compile

    examples_dir = pathlib.Path(__file__).resolve().parents[1] / "examples"
    scripts = sorted(examples_dir.glob("*.py"))
    assert len(scripts) >= 3, "the repository must ship at least three examples"
    for script in scripts:
        py_compile.compile(str(script), doraise=True)
