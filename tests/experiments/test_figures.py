"""Integration tests of the figure-reproduction harness (tiny scale).

Each test runs the real experiment pipeline at a reduced size (fewer
architecture cells / factor values than the benches) and checks the structural
properties the paper reports.  Marked ``slow`` tests exercise the full smoke
scale used by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig3a import run_fig3a
from repro.experiments.fig3b import run_fig3b
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig6 import run_fig6
from repro.experiments.overhead import run_overhead


class TestFig3a:
    @pytest.fixture(scope="class")
    def result(self):
        # One cell, both methods, smoke scale.
        return run_fig3a(scale="smoke", hidden_sizes=[16], layer_counts=[1], seed=3)

    def test_cells_and_curves_present(self, result):
        assert len(result.cells) == 1
        cell = result.cell(16, 1)
        assert set(cell.curves) == {"Breed", "Random"}
        assert cell.label == "H=16, L=1"

    def test_curves_have_losses(self, result):
        for curve in result.cell(16, 1).curves.values():
            assert curve.train_iterations.size > 0
            assert curve.validation_iterations.size > 0
            assert np.all(np.isfinite(curve.train_losses))

    def test_summary_rows(self, result):
        rows = result.summary_rows()
        assert len(rows) == 2
        assert all(len(row) == 5 for row in rows)

    def test_mean_overfit_gap_finite(self, result):
        assert np.isfinite(result.mean_overfit_gap("Breed"))
        assert np.isfinite(result.mean_overfit_gap("Random"))

    def test_missing_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell(99, 9)


class TestFig3b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3b(scale="smoke", factors={"sigma": [1.0, 25.0]}, seed=3)

    def test_panels(self, result):
        assert len(result.panels) == 1
        panel = result.panel("sigma")
        assert set(panel.curves) == {1.0, 25.0}

    def test_summary_rows(self, result):
        rows = result.summary_rows()
        assert len(rows) == 2
        assert all(row[0] == "sigma" for row in rows)

    def test_best_value(self, result):
        assert result.panel("sigma").best_value() in (1.0, 25.0)

    def test_missing_panel_raises(self, result):
        with pytest.raises(KeyError):
            result.panel("window")


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(scale="smoke", seed=3)

    def test_histograms_present(self, result):
        assert set(result.by_source) == {"Uniform", "Proposal"}
        assert set(result.by_method) == {"Random", "Breed"}

    def test_breed_run_contains_proposal_vectors(self, result):
        assert result.by_source["Proposal"].n > 0
        assert result.by_source["Uniform"].n > 0

    def test_total_vectors_equal_budget(self, result):
        budget = result.breed_run.config.n_simulations
        assert result.by_source["Proposal"].n + result.by_source["Uniform"].n == budget
        assert result.by_method["Breed"].n == budget
        assert result.by_method["Random"].n == budget

    def test_breed_shifts_deviation_upwards(self, result):
        # The paper's qualitative claim (Fig. 4b): Breed's mean parameter
        # deviation is shifted towards higher values than Random's.
        assert result.breed_mean_shift > 0.0

    def test_summary_keys(self, result):
        assert {"uniform_mean", "proposal_mean", "breed_mean_shift"} <= set(result.summary())


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(scale="smoke", seed=3)

    def test_matrix_dimensions(self, result):
        assert result.matrix.matrix.shape == (7, 7)

    def test_statistics_recorded(self, result):
        assert len(result.run.history.sample_statistics) > 0

    def test_paper_shape_checks(self, result):
        checks = result.checks()
        assert checks["deviation_weakly_coupled_to_iteration"]
        assert checks["deviation_positively_tracks_sample_loss"]
        assert checks["losses_decrease_with_iteration"]

    def test_key_findings_magnitudes(self, result):
        findings = result.key_findings()
        # Deviation metric should be far less coupled to the iteration than the raw loss.
        assert abs(findings["deviation_vs_iteration"]) < abs(findings["sample_loss_vs_iteration"])


class TestOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        return run_overhead(scale="smoke", seed=3)

    def test_random_run_has_zero_steering_time(self, result):
        assert result.random_run.steering_seconds == 0.0
        assert len(result.random_run.steering_records) == 0

    def test_breed_steering_time_is_negligible(self, result):
        assert result.breed_run.steering_seconds < 1.0
        assert result.overhead_is_negligible

    def test_summary(self, result):
        summary = result.summary()
        assert summary["breed_steering_events"] >= 1
        assert summary["breed_steering_seconds"] >= 0.0
