"""Cross-workload study: grid expansion, backend parity, resume, summaries."""

from __future__ import annotations

import math

import pytest

from repro.experiments.cross_workload import (
    METHODS,
    CrossWorkloadResult,
    _scaled_sigma,
    cross_workload_configurations,
    run_cross_workload,
)
from repro.experiments.base import base_config
from repro.workflow.executor import TIMING_METRICS

#: cheap 1-D workloads used to keep these integration runs fast
FAST_WORKLOADS = ["advection1d", "burgers", "fisher"]


class TestConfigurations:
    def test_grid_covers_workload_times_method(self):
        configurations = cross_workload_configurations(FAST_WORKLOADS)
        assert len(configurations) == len(FAST_WORKLOADS) * len(METHODS)
        names = {c["_name"] for c in configurations}
        assert "burgers-breed" in names and "fisher-random" in names

    def test_sigma_rides_on_every_run_of_the_workload(self):
        configurations = cross_workload_configurations(["burgers"], sigmas={"burgers": 0.02})
        assert all(c["sigma"] == 0.02 for c in configurations)

    def test_sigma_scales_with_the_parameter_box(self):
        template = base_config("smoke")
        # heat workloads: 400-wide box -> exactly the preset sigma
        assert _scaled_sigma(template, "heat2d") == pytest.approx(template.breed.sigma)
        assert _scaled_sigma(template, "heat1d") == pytest.approx(template.breed.sigma)
        # transport workloads: O(1) boxes -> proportionally tiny proposals
        assert _scaled_sigma(template, "burgers") < 0.01 * template.breed.sigma


class TestStudy:
    @pytest.fixture(scope="class")
    def result(self) -> CrossWorkloadResult:
        return run_cross_workload(scale="smoke", workloads=FAST_WORKLOADS, seed=2)

    def test_one_run_per_cell(self, result):
        assert len(result.study.runs) == 6
        assert result.workloads == FAST_WORKLOADS

    def test_summary_rows_cover_every_cell(self, result):
        rows = result.summary_rows()
        assert len(rows) == 6
        assert {(w, m) for w, m, *_ in rows} == {
            (w, m) for w in FAST_WORKLOADS for m in METHODS
        }
        assert all(math.isfinite(val) for *_, val, _ in rows)

    def test_losses_and_improvement(self, result):
        for workload in FAST_WORKLOADS:
            losses = result.losses(workload)
            assert set(losses) == {"breed", "random"}
            improvement = result.breed_improvement(workload)
            assert math.isfinite(improvement)

    def test_improvement_nan_for_missing_workload(self, result):
        assert math.isnan(result.breed_improvement("heat2d"))

    def test_runs_record_their_workload(self, result):
        assert {run.workload for run in result.study.runs} == set(FAST_WORKLOADS)


@pytest.mark.slow  # three full cross-workload studies per backend
class TestBackendsAndResume:
    def test_process_backend_is_bit_identical_to_serial(self):
        # one study over all three new families: 6 runs through each backend
        serial = run_cross_workload(scale="smoke", workloads=FAST_WORKLOADS, seed=4)
        process = run_cross_workload(
            scale="smoke", workloads=FAST_WORKLOADS, seed=4, backend="process", max_workers=2
        )
        for a, b in zip(serial.study.runs, process.study.runs):
            assert a.name == b.name
            assert a.series == b.series
            for key in a.metrics:
                if key not in TIMING_METRICS:
                    assert a.metrics[key] == b.metrics[key], (a.name, key)

    def test_resume_skips_completed_runs(self, tmp_path):
        checkpoint = tmp_path / "cross.runs.jsonl"
        first = run_cross_workload(
            scale="smoke", workloads=["fisher"], seed=6, checkpoint=checkpoint
        )
        assert len(checkpoint.read_text().splitlines()) == 2
        resumed = run_cross_workload(
            scale="smoke", workloads=["fisher"], seed=6, resume=checkpoint
        )
        assert checkpoint.read_text().count("\n") == 2  # nothing re-executed
        for a, b in zip(first.study.runs, resumed.study.runs):
            assert a.series == b.series
