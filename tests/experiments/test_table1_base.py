"""Tests for the Table-1 encoding and the experiment scale presets."""

from __future__ import annotations

import pytest

from repro.breed.samplers import BreedConfig
from repro.experiments.base import SCALES, base_config, scaled_breed_config, with_architecture
from repro.experiments.table1 import TABLE1, VARIED_VALUES, breed_config_for_study, render_table1


class TestTable1:
    def test_three_studies_present(self):
        assert set(TABLE1) == {"study1", "study2", "study3"}

    def test_study1_row_matches_paper(self):
        row = TABLE1["study1"]
        assert (row.sigma, row.period, row.window) == (10.0, 300, 200)
        assert (row.r_start, row.r_end, row.r_breakpoint) == (0.5, 0.7, 3)
        assert row.hidden_size is None and row.n_layers is None   # varied entries

    def test_study2_and_3_fix_architecture(self):
        assert TABLE1["study2"].hidden_size == 16 and TABLE1["study2"].n_layers == 1
        assert TABLE1["study3"].hidden_size == 16 and TABLE1["study3"].n_layers == 1

    def test_varied_value_grids_match_section_4_1(self):
        assert VARIED_VALUES["study1"]["hidden_size"] == [16, 32, 64]
        assert VARIED_VALUES["study1"]["n_layers"] == [1, 2, 3]
        assert VARIED_VALUES["study2"]["period"] == [10, 50, 100, 300, 500]
        assert VARIED_VALUES["study2"]["sigma"] == [1.0, 5.0, 10.0, 25.0]
        assert VARIED_VALUES["study3"]["r_start"] == [0.1, 0.5, 0.8, 1.0]

    def test_breed_config_for_study1(self):
        config = breed_config_for_study("study1")
        assert isinstance(config, BreedConfig)
        assert config.sigma == 10.0 and config.period == 300

    def test_breed_config_for_study_with_override(self):
        config = breed_config_for_study("study2", sigma=25.0)
        assert config.sigma == 25.0
        assert config.r_end == pytest.approx(0.9)

    def test_breed_config_missing_varied_value(self):
        # Study 3 varies r_start/r_end/r_breakpoint but fixes them in the row,
        # so it builds without overrides; a fully-specified study must not raise.
        breed_config_for_study("study3")

    def test_render_table1_contains_rows_and_stars(self):
        text = render_table1()
        assert "Study (1)" in text and "Study (3)" in text
        assert "*" in text
        assert "sigma" in text.splitlines()[0]


class TestScales:
    def test_presets_exist(self):
        assert {"smoke", "small", "paper"} <= set(SCALES)

    def test_paper_scale_matches_section4(self):
        paper = SCALES["paper"]
        assert paper.grid_size == 64
        assert paper.n_timesteps == 100
        assert paper.n_simulations == 800
        assert paper.batch_size == 128
        assert paper.reservoir_watermark == 300
        assert paper.n_validation_trajectories == 200
        assert paper.job_limit == 10

    def test_describe(self):
        assert "smoke" in SCALES["smoke"].describe()

    def test_base_config_round_trip(self):
        config = base_config("smoke", method="random", seed=3)
        assert config.method == "random"
        assert config.seed == 3
        assert config.heat.grid_size == SCALES["smoke"].grid_size
        assert config.breed.period == SCALES["smoke"].breed_period

    def test_base_config_breed_overrides(self):
        config = base_config("smoke", sigma=3.0, period=7)
        assert config.breed.sigma == 3.0 and config.breed.period == 7

    def test_base_config_unknown_scale(self):
        with pytest.raises(KeyError):
            base_config("huge")

    def test_scaled_breed_config(self):
        config = scaled_breed_config(SCALES["paper"])
        assert config.sigma == 10.0 and config.period == 300 and config.window == 200

    def test_with_architecture(self):
        config = with_architecture(base_config("smoke"), hidden_size=64, n_layers=3)
        assert config.hidden_size == 64 and config.n_hidden_layers == 3
