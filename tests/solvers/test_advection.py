"""Advection–diffusion solvers: analytic error bounds, CFL guards, protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.advection import (
    AdvectionDiffusion1DConfig,
    AdvectionDiffusion1DSolver,
    AdvectionDiffusion2DConfig,
    AdvectionDiffusion2DSolver,
    advected_gaussian_1d,
    wrapped_gaussian,
)

PARAMS_1D = [1.5, 0.3, 0.05]
PARAMS_2D = [1.5, 0.3, 0.4, 0.08]


def rel_l2(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(a - b) / np.linalg.norm(b))


class TestAnalyticReference:
    def test_initial_field_matches_reference_at_t0(self):
        solver = AdvectionDiffusion1DSolver(AdvectionDiffusion1DConfig(n_points=48))
        initial = solver.initial_field(PARAMS_1D)
        np.testing.assert_allclose(initial, solver.exact(PARAMS_1D, 0.0), rtol=1e-12)

    def test_pulse_advects_against_gaussian_reference(self):
        config = AdvectionDiffusion1DConfig(n_points=64, n_timesteps=50, dt=0.004)
        solver = AdvectionDiffusion1DSolver(config)
        *_, final = solver.steps(PARAMS_1D)
        exact = solver.exact(PARAMS_1D, config.n_timesteps * config.dt)
        # First-order upwind adds numerical diffusion; the bound reflects it.
        assert rel_l2(final, exact) < 0.2
        # The peak must have moved with the flow, not stayed put.
        x = config.coordinates
        assert abs(x[np.argmax(final)] - (0.3 + config.velocity * 0.2)) < 0.05

    def test_error_decreases_under_refinement(self):
        errors = []
        for n, dt, steps in [(32, 0.008, 25), (64, 0.004, 50), (128, 0.002, 100)]:
            config = AdvectionDiffusion1DConfig(n_points=n, dt=dt, n_timesteps=steps)
            solver = AdvectionDiffusion1DSolver(config)
            *_, final = solver.steps(PARAMS_1D)
            errors.append(rel_l2(final, solver.exact(PARAMS_1D, 0.2)))
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 0.6 * errors[0]  # ~first-order convergence

    def test_2d_blob_advects_against_reference(self):
        config = AdvectionDiffusion2DConfig(grid_size=32, n_timesteps=20, dt=0.005)
        solver = AdvectionDiffusion2DSolver(config)
        *_, final = solver.steps(PARAMS_2D)
        exact = solver.exact(PARAMS_2D, config.n_timesteps * config.dt)
        assert rel_l2(final, exact) < 0.25

    def test_mass_is_conserved_on_the_periodic_domain(self):
        solver = AdvectionDiffusion1DSolver(AdvectionDiffusion1DConfig(n_points=48, n_timesteps=40))
        fields = list(solver.steps(PARAMS_1D))
        masses = [f.sum() for f in fields]
        np.testing.assert_allclose(masses, masses[0], rtol=1e-12)

    def test_wrapped_gaussian_is_periodic(self):
        x = np.linspace(0.0, 1.0, 33)
        profile = wrapped_gaussian(x - 0.9, 0.1)
        assert profile[0] == pytest.approx(profile[-1], rel=1e-12)

    def test_reference_conserves_mass_while_decaying_peak(self):
        x = np.linspace(0.0, 1.0, 200, endpoint=False)
        early = advected_gaussian_1d(x, 0.0, 1.0, 0.5, 0.05)
        late = advected_gaussian_1d(x, 0.3, 1.0, 0.5, 0.05)
        assert late.max() < early.max()
        assert late.sum() == pytest.approx(early.sum(), rel=1e-6)


class TestCflGuards:
    def test_advective_cfl_violation_raises(self):
        with pytest.raises(ValueError, match="CFL violation.*advection"):
            AdvectionDiffusion1DConfig(n_points=64, dt=0.05, velocity=1.0)

    def test_diffusive_cfl_violation_raises(self):
        with pytest.raises(ValueError, match="CFL violation.*diffusion"):
            AdvectionDiffusion1DConfig(n_points=256, dt=0.004, nu=0.01, velocity=0.0)

    def test_2d_cfl_violation_raises(self):
        with pytest.raises(ValueError, match="CFL violation"):
            AdvectionDiffusion2DConfig(grid_size=64, dt=0.05)

    def test_error_message_points_at_workload_options(self):
        with pytest.raises(ValueError, match="workload_options"):
            AdvectionDiffusion1DConfig(n_points=64, dt=0.05)

    def test_valid_config_accepted(self):
        config = AdvectionDiffusion1DConfig(n_points=64, dt=0.004)
        assert config.dx == pytest.approx(1.0 / 64)


class TestSolverProtocol:
    def test_field_and_parameter_dims(self):
        solver = AdvectionDiffusion1DSolver(AdvectionDiffusion1DConfig(n_points=24))
        assert solver.field_size == 24
        assert solver.parameter_dim == 3
        solver2d = AdvectionDiffusion2DSolver(AdvectionDiffusion2DConfig(grid_size=8))
        assert solver2d.field_size == 64
        assert solver2d.parameter_dim == 4

    def test_steps_yields_t0_through_T(self):
        solver = AdvectionDiffusion1DSolver(AdvectionDiffusion1DConfig(n_points=16, n_timesteps=7))
        fields = list(solver.steps(PARAMS_1D))
        assert len(fields) == 8

    def test_trajectories_are_deterministic(self):
        solver = AdvectionDiffusion1DSolver(AdvectionDiffusion1DConfig(n_points=16, n_timesteps=5))
        a = solver.solve(PARAMS_1D).as_array()
        b = solver.solve(PARAMS_1D).as_array()
        np.testing.assert_array_equal(a, b)

    def test_wrong_parameter_count_rejected(self):
        solver = AdvectionDiffusion1DSolver()
        with pytest.raises(ValueError, match="expected 3 parameters"):
            list(solver.steps([1.0, 0.5]))

    def test_non_positive_width_rejected(self):
        solver = AdvectionDiffusion1DSolver()
        with pytest.raises(ValueError, match="width"):
            solver.initial_field([1.0, 0.5, 0.0])

    def test_negative_velocity_uses_downwind_stencil(self):
        config = AdvectionDiffusion1DConfig(n_points=48, n_timesteps=20, dt=0.004, velocity=-1.0)
        solver = AdvectionDiffusion1DSolver(config)
        *_, final = solver.steps(PARAMS_1D)
        exact = solver.exact(PARAMS_1D, 20 * config.dt)
        assert rel_l2(final, exact) < 0.2


class TestFused2DStepBitIdentity:
    """The buffered 2-D update must replay the np.roll reference expression
    bit-for-bit, for every upwind direction."""

    @staticmethod
    def _reference_steps(config, field0):
        field = field0.copy()
        ax = config.velocity[0] * config.dt / config.dx
        ay = config.velocity[1] * config.dt / config.dx
        diff = config.nu * config.dt / config.dx**2
        while True:
            if config.velocity[0] >= 0:
                grad_x = field - np.roll(field, 1, axis=0)
            else:
                grad_x = np.roll(field, -1, axis=0) - field
            if config.velocity[1] >= 0:
                grad_y = field - np.roll(field, 1, axis=1)
            else:
                grad_y = np.roll(field, -1, axis=1) - field
            laplacian = (
                np.roll(field, 1, axis=0)
                + np.roll(field, -1, axis=0)
                + np.roll(field, 1, axis=1)
                + np.roll(field, -1, axis=1)
                - 4.0 * field
            )
            field = field - ax * grad_x - ay * grad_y + diff * laplacian
            yield field

    @pytest.mark.parametrize("velocity", [(1.0, 0.5), (-1.0, 0.5), (1.0, -0.5), (-0.7, -0.4)])
    def test_fused_steps_match_roll_reference_exactly(self, velocity):
        config = AdvectionDiffusion2DConfig(
            grid_size=16, n_timesteps=9, dt=0.005, velocity=velocity, nu=0.004
        )
        solver = AdvectionDiffusion2DSolver(config)
        field0 = solver.initial_field(PARAMS_2D).reshape(config.grid_size, config.grid_size)
        reference = self._reference_steps(config, field0)
        for step, field in enumerate(solver.steps(PARAMS_2D)):
            if step == 0:
                np.testing.assert_array_equal(field, field0.ravel())
            else:
                np.testing.assert_array_equal(field, next(reference).ravel())
