"""Viscous Burgers solver: Cole–Hopf error bounds, CFL guards, protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.burgers import Burgers1DConfig, Burgers1DSolver, cole_hopf_wave

PARAMS = [1.0, 0.2, 0.3]


def rel_l2(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.linalg.norm(a - b) / np.linalg.norm(b))


class TestColeHopfReference:
    def test_initial_field_is_the_cole_hopf_profile(self):
        solver = Burgers1DSolver(Burgers1DConfig(n_points=48))
        np.testing.assert_allclose(
            solver.initial_field(PARAMS),
            cole_hopf_wave(solver.config.coordinates, 0.0, 1.0, 0.2, 0.3, nu=solver.config.nu),
            rtol=1e-12,
        )

    def test_front_translates_at_rankine_hugoniot_speed(self):
        config = Burgers1DConfig(n_points=128, n_timesteps=100, dt=0.00125)
        solver = Burgers1DSolver(config)
        *_, final = solver.steps(PARAMS)
        x = config.coordinates
        c = 0.5 * (PARAMS[0] + PARAMS[1])
        midpoint = 0.5 * (PARAMS[0] + PARAMS[1])
        # front position = where u crosses the mid value
        front = x[np.argmin(np.abs(final - midpoint))]
        expected = PARAMS[2] + c * config.n_timesteps * config.dt
        assert front == pytest.approx(expected, abs=3 * config.dx)

    def test_solution_tracks_cole_hopf_wave(self):
        config = Burgers1DConfig(n_points=64, n_timesteps=50, dt=0.005)
        solver = Burgers1DSolver(config)
        *_, final = solver.steps(PARAMS)
        exact = solver.exact(PARAMS, config.n_timesteps * config.dt)
        assert rel_l2(final, exact) < 0.05

    def test_error_decreases_under_refinement(self):
        errors = []
        for n, dt, steps in [(32, 0.005, 50), (64, 0.005, 50), (128, 0.00125, 200)]:
            config = Burgers1DConfig(n_points=n, dt=dt, n_timesteps=steps)
            solver = Burgers1DSolver(config)
            *_, final = solver.steps(PARAMS)
            errors.append(rel_l2(final, solver.exact(PARAMS, 0.25)))
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 0.5 * errors[0]

    def test_maximum_principle_holds(self):
        solver = Burgers1DSolver(Burgers1DConfig(n_points=64, n_timesteps=80))
        fields = np.stack(list(solver.steps(PARAMS)))
        assert fields.min() >= PARAMS[1] - 1e-9
        assert fields.max() <= PARAMS[0] + 1e-9


class TestStabilityGuards:
    def test_diffusive_cfl_violation_raises_at_config_time(self):
        with pytest.raises(ValueError, match="CFL violation.*diffusion"):
            Burgers1DConfig(n_points=256, dt=0.005, nu=0.01)

    def test_advective_cfl_violation_raises_when_trajectory_starts(self):
        config = Burgers1DConfig(n_points=64, dt=0.01, nu=0.001)
        solver = Burgers1DSolver(config)
        with pytest.raises(ValueError, match="CFL violation.*advection"):
            next(solver.steps([2.0, 0.2, 0.3]))

    def test_expansion_front_rejected(self):
        solver = Burgers1DSolver()
        with pytest.raises(ValueError, match="compressive"):
            next(solver.steps([0.2, 1.0, 0.3]))

    def test_negative_downstream_state_rejected(self):
        solver = Burgers1DSolver()
        with pytest.raises(ValueError, match="non-negative"):
            next(solver.steps([1.0, -0.5, 0.3]))


class TestSolverProtocol:
    def test_field_and_parameter_dims(self):
        solver = Burgers1DSolver(Burgers1DConfig(n_points=40))
        assert solver.field_size == 40
        assert solver.parameter_dim == 3

    def test_steps_yields_t0_through_T(self):
        solver = Burgers1DSolver(Burgers1DConfig(n_points=16, n_timesteps=6))
        assert len(list(solver.steps(PARAMS))) == 7

    def test_dirichlet_states_stay_pinned(self):
        solver = Burgers1DSolver(Burgers1DConfig(n_points=32, n_timesteps=30))
        fields = list(solver.steps(PARAMS))
        # t = 0 is the tanh profile itself (saturated to ~1e-5 at the walls);
        # every later step pins the far-field states exactly.
        assert fields[0][0] == pytest.approx(PARAMS[0], abs=1e-4)
        assert fields[0][-1] == pytest.approx(PARAMS[1], abs=1e-4)
        for field in fields[1:]:
            assert field[0] == PARAMS[0]
            assert field[-1] == PARAMS[1]

    def test_trajectories_are_deterministic(self):
        solver = Burgers1DSolver(Burgers1DConfig(n_points=24, n_timesteps=10))
        a = solver.solve(PARAMS).as_array()
        b = solver.solve(PARAMS).as_array()
        np.testing.assert_array_equal(a, b)
