"""Tests for grids and trajectory containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.grid import Grid1D, Grid2D
from repro.solvers.trajectory import TimeStepSample, Trajectory


class TestGrid1D:
    def test_spacing_and_coordinates(self):
        grid = Grid1D(n_points=5, length=2.0)
        assert grid.dx == pytest.approx(0.5)
        np.testing.assert_allclose(grid.coordinates, [0.0, 0.5, 1.0, 1.5, 2.0])
        assert grid.n_interior == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid1D(n_points=2)
        with pytest.raises(ValueError):
            Grid1D(n_points=5, length=0.0)


class TestGrid2D:
    def test_basic_properties(self):
        grid = Grid2D(n=4, length=3.0)
        assert grid.shape == (4, 4)
        assert grid.n_total == 16
        assert grid.n_interior == 4
        assert grid.dx == pytest.approx(1.0)

    def test_coordinates_meshgrid(self):
        grid = Grid2D(n=3)
        x1, x2 = grid.coordinates
        assert x1.shape == (3, 3)
        assert x1[0, 0] == 0.0 and x1[-1, 0] == 1.0
        assert x2[0, -1] == 1.0

    def test_interior_boundary_masks_are_complementary(self):
        grid = Grid2D(n=5)
        interior = grid.interior_index()
        boundary = grid.boundary_index()
        assert interior.sum() == 9
        assert np.all(interior ^ boundary)

    def test_flatten_unflatten_roundtrip(self, rng):
        grid = Grid2D(n=6)
        field = rng.normal(size=(6, 6))
        np.testing.assert_array_equal(grid.unflatten_field(grid.flatten_field(field)), field)

    def test_flatten_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            Grid2D(n=4).flatten_field(np.zeros((3, 3)))

    def test_unflatten_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            Grid2D(n=4).unflatten_field(np.zeros(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid2D(n=2)
        with pytest.raises(ValueError):
            Grid2D(n=4, length=-1.0)


class TestTimeStepSample:
    def test_flattening_and_key(self):
        sample = TimeStepSample(3, [1.0, 2.0], 7, np.ones((2, 2)))
        assert sample.field.shape == (4,)
        assert sample.key == (3, 7)
        assert sample.parameters.dtype == np.float64


class TestTrajectory:
    def test_append_and_iterate(self):
        traj = Trajectory(simulation_id=1, parameters=np.array([1.0]))
        traj.append(0, np.zeros(4))
        traj.append(1, np.ones(4))
        assert len(traj) == 2
        samples = list(traj)
        assert samples[0].timestep == 0 and samples[1].timestep == 1
        assert all(s.simulation_id == 1 for s in samples)

    def test_append_enforces_increasing_timesteps(self):
        traj = Trajectory(simulation_id=0, parameters=np.array([1.0]))
        traj.append(0, np.zeros(2))
        with pytest.raises(ValueError):
            traj.append(0, np.zeros(2))

    def test_as_array(self):
        traj = Trajectory(simulation_id=0, parameters=np.array([1.0]))
        traj.append(0, np.zeros(3))
        traj.append(1, np.ones(3))
        assert traj.as_array().shape == (2, 3)

    def test_as_array_empty(self):
        assert Trajectory(0, np.array([1.0])).as_array().size == 0

    def test_sample_at(self):
        traj = Trajectory(simulation_id=0, parameters=np.array([1.0]))
        traj.append(0, np.zeros(2))
        traj.append(3, np.ones(2))
        assert traj.sample_at(3) is not None
        assert traj.sample_at(2) is None

    def test_final_field(self):
        traj = Trajectory(simulation_id=0, parameters=np.array([1.0]))
        with pytest.raises(ValueError):
            _ = traj.final_field
        traj.append(0, np.full(2, 7.0))
        np.testing.assert_array_equal(traj.final_field, [7.0, 7.0])
