"""Tests for the 1-D solver and the analytic reference solutions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.analytic import laplace_edge_series, steady_state_2d, transient_1d
from repro.solvers.heat1d import Heat1DConfig, Heat1DImplicitSolver


class TestHeat1DConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            Heat1DConfig(n_points=2)
        with pytest.raises(ValueError):
            Heat1DConfig(dt=-1.0)
        with pytest.raises(ValueError):
            Heat1DConfig(n_timesteps=0)


class TestHeat1DImplicitSolver:
    @pytest.fixture(scope="class")
    def solver(self):
        return Heat1DImplicitSolver(Heat1DConfig(n_points=32, n_timesteps=40, dt=0.005))

    def test_sizes(self, solver):
        assert solver.field_size == 32
        assert solver.parameter_dim == 3

    def test_trajectory_length(self, solver):
        assert len(solver.solve([300.0, 100.0, 500.0])) == 41

    def test_boundary_values_fixed(self, solver):
        traj = solver.solve([300.0, 100.0, 500.0]).as_array()
        np.testing.assert_allclose(traj[:, 0], 100.0)
        np.testing.assert_allclose(traj[:, -1], 500.0)

    def test_constant_state_is_stationary(self, solver):
        traj = solver.solve([250.0, 250.0, 250.0])
        np.testing.assert_allclose(traj.final_field, 250.0, rtol=1e-12)

    def test_maximum_principle(self, solver):
        fields = solver.solve([450.0, 120.0, 480.0]).as_array()
        assert fields.min() >= 120.0 - 1e-9
        assert fields.max() <= 480.0 + 1e-9

    def test_long_run_converges_to_linear_profile(self):
        solver = Heat1DImplicitSolver(Heat1DConfig(n_points=32, n_timesteps=2000, dt=0.01))
        params = [300.0, 100.0, 500.0]
        final = solver.solve(params).final_field
        np.testing.assert_allclose(final, solver.steady_state(params), atol=0.5)

    def test_matches_analytic_transient(self):
        config = Heat1DConfig(n_points=64, n_timesteps=50, dt=0.001)
        solver = Heat1DImplicitSolver(config)
        params = [400.0, 100.0, 200.0]
        numeric = solver.solve(params).final_field
        analytic = transient_1d(
            config.grid.coordinates,
            t=config.n_timesteps * config.dt,
            t0=400.0,
            t_left=100.0,
            t_right=200.0,
        )
        # Interior comparison (backward Euler is first-order accurate in time).
        assert np.abs(numeric[1:-1] - analytic[1:-1]).max() < 5.0


class TestLaplaceEdgeSeries:
    def test_hot_edge_value(self):
        x2 = np.linspace(0.0, 1.0, 101)
        x1 = np.zeros_like(x2)
        u = laplace_edge_series(x1, x2, 100.0, n_modes=801)
        # On the hot edge (excluding corners) the series converges to the edge value.
        assert np.abs(u[10:-10] - 100.0).max() < 2.0

    def test_opposite_edge_is_cold(self):
        x2 = np.linspace(0.0, 1.0, 21)
        x1 = np.ones_like(x2)
        u = laplace_edge_series(x1, x2, 100.0)
        np.testing.assert_allclose(u, 0.0, atol=1e-8)

    def test_interior_bounded_by_edge_value(self):
        grid = np.linspace(0.05, 0.95, 10)
        x1, x2 = np.meshgrid(grid, grid, indexing="ij")
        u = laplace_edge_series(x1, x2, 100.0)
        assert np.all(u >= -1e-6) and np.all(u <= 100.0 + 1e-6)


class TestSteadyState2D:
    def test_equal_boundaries_give_constant_field(self):
        grid = np.linspace(0.0, 1.0, 17)
        x1, x2 = np.meshgrid(grid, grid, indexing="ij")
        u = steady_state_2d((x1, x2), 300.0, 300.0, 300.0, 300.0, n_modes=301)
        interior = u[2:-2, 2:-2]
        np.testing.assert_allclose(interior, 300.0, atol=1.0)

    def test_center_value_is_boundary_average(self):
        grid = np.linspace(0.0, 1.0, 41)
        x1, x2 = np.meshgrid(grid, grid, indexing="ij")
        u = steady_state_2d((x1, x2), 100.0, 500.0, 200.0, 400.0, n_modes=301)
        # By symmetry of the Laplace problem, the centre equals the average.
        assert u[20, 20] == pytest.approx(300.0, abs=1.0)


class TestTransient1D:
    def test_t_zero_recovers_initial_condition(self):
        x = np.linspace(0.0, 1.0, 201)
        u = transient_1d(x, t=0.0, t0=350.0, t_left=100.0, t_right=500.0, n_modes=2000)
        interior = slice(5, -5)
        np.testing.assert_allclose(u[interior], 350.0, atol=5.0)

    def test_long_time_is_linear_profile(self):
        x = np.linspace(0.0, 1.0, 51)
        u = transient_1d(x, t=10.0, t0=350.0, t_left=100.0, t_right=500.0)
        np.testing.assert_allclose(u, 100.0 + 400.0 * x, atol=1e-6)
