"""Tests for the 2-D heat solvers (Appendix B.1 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.analytic import steady_state_2d
from repro.solvers.heat2d import (
    Heat2DConfig,
    Heat2DExplicitSolver,
    Heat2DImplicitSolver,
    apply_dirichlet_boundaries,
)

temps = st.floats(min_value=100.0, max_value=500.0, allow_nan=False)


class TestConfig:
    def test_defaults_match_paper(self):
        config = Heat2DConfig()
        assert config.grid_size == 64
        assert config.n_timesteps == 100
        assert config.dt == pytest.approx(0.01)
        assert config.alpha == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Heat2DConfig(grid_size=2)
        with pytest.raises(ValueError):
            Heat2DConfig(n_timesteps=0)
        with pytest.raises(ValueError):
            Heat2DConfig(dt=0.0)
        with pytest.raises(ValueError):
            Heat2DConfig(alpha=-1.0)

    def test_scaled(self):
        scaled = Heat2DConfig().scaled(grid_size=8, n_timesteps=5)
        assert scaled.grid_size == 8 and scaled.n_timesteps == 5
        assert scaled.dt == Heat2DConfig().dt


class TestBoundaries:
    def test_apply_dirichlet(self):
        field = np.zeros((4, 4))
        apply_dirichlet_boundaries(field, 1.0, 2.0, 3.0, 4.0)
        assert np.all(field[0, 1:-1] == 1.0)
        assert np.all(field[-1, 1:-1] == 2.0)
        assert np.all(field[1:-1, 0] == 3.0)
        assert np.all(field[1:-1, -1] == 4.0)
        assert np.all(field[1:-1, 1:-1] == 0.0)


class TestImplicitSolver:
    @pytest.fixture(scope="class")
    def solver(self):
        return Heat2DImplicitSolver(Heat2DConfig(grid_size=10, n_timesteps=15))

    def test_interface_sizes(self, solver):
        assert solver.field_size == 100
        assert solver.parameter_dim == 5

    def test_trajectory_length_and_shape(self, solver):
        traj = solver.solve([300.0, 100.0, 500.0, 200.0, 400.0])
        assert len(traj) == 16  # t = 0 .. 15
        assert traj.as_array().shape == (16, 100)

    def test_initial_field(self, solver):
        field = solver.initial_field([250.0, 100.0, 500.0, 200.0, 400.0])
        assert field[3, 3] == 250.0
        assert np.all(field[0, 1:-1] == 100.0)

    def test_constant_temperature_is_stationary(self, solver):
        traj = solver.solve([350.0] * 5)
        np.testing.assert_allclose(traj.final_field, 350.0, rtol=1e-10)

    def test_maximum_principle(self, solver):
        params = [450.0, 120.0, 480.0, 130.0, 470.0]
        fields = solver.solve(params).as_array()
        assert fields.min() >= min(params) - 1e-8
        assert fields.max() <= max(params) + 1e-8

    def test_monotone_approach_to_boundary_mean(self, solver):
        # Starting hot with cold boundaries, the interior mean must decrease.
        params = [500.0, 100.0, 100.0, 100.0, 100.0]
        fields = solver.solve(params).as_array()
        interior_means = fields.reshape(-1, 10, 10)[:, 1:-1, 1:-1].mean(axis=(1, 2))
        assert np.all(np.diff(interior_means) < 1e-9)

    def test_symmetry_under_parameter_symmetry(self, solver):
        # Swapping the x1=0 / x1=L boundary temperatures mirrors the field.
        a = solver.solve([300.0, 150.0, 450.0, 250.0, 250.0]).final_field.reshape(10, 10)
        b = solver.solve([300.0, 450.0, 150.0, 250.0, 250.0]).final_field.reshape(10, 10)
        np.testing.assert_allclose(a, b[::-1, :], rtol=1e-10)

    def test_long_run_converges_to_analytic_steady_state(self):
        config = Heat2DConfig(grid_size=20, n_timesteps=400)
        solver = Heat2DImplicitSolver(config)
        params = [200.0, 100.0, 500.0, 300.0, 400.0]
        final = solver.solve(params).final_field.reshape(20, 20)
        analytic = steady_state_2d(config.grid.coordinates, *params[1:])
        interior = (slice(2, -2), slice(2, -2))
        assert np.abs(final[interior] - analytic[interior]).max() < 10.0  # Kelvin, coarse grid

    def test_steady_state_solver_matches_analytic(self):
        config = Heat2DConfig(grid_size=24, n_timesteps=1)
        solver = Heat2DImplicitSolver(config)
        params = [200.0, 100.0, 500.0, 300.0, 400.0]
        numeric = solver.steady_state(params).reshape(24, 24)
        analytic = steady_state_2d(config.grid.coordinates, *params[1:])
        interior = (slice(2, -2), slice(2, -2))
        assert np.abs(numeric[interior] - analytic[interior]).max() < 5.0

    def test_parameter_validation(self, solver):
        with pytest.raises(ValueError):
            solver.solve([1.0, 2.0])
        with pytest.raises(ValueError):
            solver.solve([np.nan] * 5)

    def test_deterministic(self, solver):
        params = [222.0, 111.0, 333.0, 444.0, 155.0]
        np.testing.assert_array_equal(
            solver.solve(params).final_field, solver.solve(params).final_field
        )

    @settings(max_examples=10, deadline=None)
    @given(temps, temps, temps, temps, temps)
    def test_property_maximum_principle(self, t0, t1, t2, t3, t4):
        solver = Heat2DImplicitSolver(Heat2DConfig(grid_size=6, n_timesteps=4))
        fields = solver.solve([t0, t1, t2, t3, t4]).as_array()
        lo, hi = min(t0, t1, t2, t3, t4), max(t0, t1, t2, t3, t4)
        assert fields.min() >= lo - 1e-7
        assert fields.max() <= hi + 1e-7


class TestExplicitSolver:
    def test_substeps_guarantee_stability(self):
        solver = Heat2DExplicitSolver(Heat2DConfig(grid_size=16, n_timesteps=5))
        assert solver.substeps >= 1
        fields = solver.solve([500.0, 100.0, 100.0, 100.0, 100.0]).as_array()
        assert np.all(np.isfinite(fields))
        assert fields.max() <= 500.0 + 1e-8

    def test_agrees_with_implicit_solver(self):
        config = Heat2DConfig(grid_size=12, n_timesteps=20)
        params = [400.0, 150.0, 350.0, 250.0, 200.0]
        implicit = Heat2DImplicitSolver(config).solve(params).final_field
        explicit = Heat2DExplicitSolver(config).solve(params).final_field
        # Both schemes are first-order in time; on this coarse grid they agree
        # to a few Kelvin against a 100-500 K dynamic range.
        assert np.abs(implicit - explicit).max() < 5.0

    def test_interface_sizes(self):
        solver = Heat2DExplicitSolver(Heat2DConfig(grid_size=8, n_timesteps=3))
        assert solver.field_size == 64
        assert solver.parameter_dim == 5


class TestFusedStepBitIdentity:
    """steps() uses out=-buffered fused arithmetic; it must replay the
    reference sub-step (_step_once) bit-for-bit at every time step."""

    def test_fused_steps_match_reference_substeps_exactly(self):
        config = Heat2DConfig(grid_size=12, n_timesteps=7, dt=0.01)
        solver = Heat2DExplicitSolver(config)
        params = [250.0, 100.0, 200.0, 300.0, 400.0]
        boundary = (100.0, 200.0, 300.0, 400.0)
        reference = solver.initial_field(params)
        for step, field in enumerate(solver.steps(params)):
            if step > 0:
                for _ in range(solver.substeps):
                    reference = solver._step_once(reference, boundary)
            np.testing.assert_array_equal(field, reference.reshape(-1))
