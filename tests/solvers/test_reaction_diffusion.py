"""Fisher–KPP solver: invariant region, exact limits, stability guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.reaction_diffusion import FisherKPPConfig, FisherKPPSolver, kpp_front_speed

PARAMS = [6.0, 0.8, 0.5]


class TestDynamics:
    def test_fields_stay_in_invariant_region(self):
        solver = FisherKPPSolver(FisherKPPConfig(n_points=48, n_timesteps=200))
        fields = np.stack(list(solver.steps(PARAMS)))
        assert fields.min() >= 0.0
        assert fields.max() <= 1.0 + 1e-12

    def test_population_saturates_to_one(self):
        # Long-time limit: the logistic reaction drives the whole (Neumann)
        # domain to the stable fixed point u = 1.
        solver = FisherKPPSolver(FisherKPPConfig(n_points=48, n_timesteps=600))
        *_, final = solver.steps([8.0, 0.9, 0.5])
        assert final.min() > 0.99

    def test_zero_rate_reduces_to_mass_conserving_diffusion(self):
        solver = FisherKPPSolver(FisherKPPConfig(n_points=32, n_timesteps=100))
        fields = list(solver.steps([0.0, 0.5, 0.5]))
        assert abs(fields[-1].sum() - fields[0].sum()) < 1e-6
        # diffusion flattens the seed
        assert fields[-1].max() < fields[0].max()

    def test_growth_is_monotone_in_the_rate(self):
        def final_mass(rate: float) -> float:
            solver = FisherKPPSolver(FisherKPPConfig(n_points=48, n_timesteps=100))
            *_, final = solver.steps([rate, 0.5, 0.5])
            return float(final.sum())

        assert final_mass(2.0) < final_mass(4.0) < final_mass(8.0)

    def test_uniform_fixed_points_are_stationary(self):
        config = FisherKPPConfig(n_points=24, n_timesteps=20, sigma0=1e6)
        solver = FisherKPPSolver(config)
        # sigma0 -> inf makes the seed uniform at the amplitude.
        zero = np.stack(list(solver.steps([5.0, 0.0, 0.5])))
        np.testing.assert_allclose(zero, 0.0, atol=1e-15)
        one = np.stack(list(solver.steps([5.0, 1.0, 0.5])))
        np.testing.assert_allclose(one, 1.0, rtol=1e-9)

    def test_front_spreads_outward(self):
        config = FisherKPPConfig(n_points=64, n_timesteps=300)
        solver = FisherKPPSolver(config)
        fields = list(solver.steps([6.0, 0.9, 0.5]))
        # the region above 1/2 grows in time (a crude front-speed proxy)
        width_early = (fields[50] > 0.5).sum()
        width_late = (fields[-1] > 0.5).sum()
        assert width_late > width_early
        assert kpp_front_speed(6.0, config.diffusivity) == pytest.approx(
            2.0 * np.sqrt(6.0 * config.diffusivity)
        )


class TestStabilityGuards:
    def test_diffusive_cfl_violation_raises_at_config_time(self):
        with pytest.raises(ValueError, match="CFL violation.*diffusion"):
            FisherKPPConfig(n_points=256, dt=0.01, diffusivity=0.002)

    def test_reaction_stability_violation_raises_when_trajectory_starts(self):
        solver = FisherKPPSolver(FisherKPPConfig(n_points=32, dt=0.2, diffusivity=0.0001))
        with pytest.raises(ValueError, match="stability violation.*reaction"):
            next(solver.steps([8.0, 0.5, 0.5]))

    def test_combined_condition_catches_what_individual_limits_miss(self):
        # dt=0.06 at rate 8: D*dt/dx^2 = 0.476 <= 1/2 and r*dt = 0.48 <= 1
        # individually, but 2*0.476 + 0.48 > 1 — the combined explicit step
        # can overshoot u = 1, so it must be rejected.
        config = FisherKPPConfig(n_points=64, dt=0.06, diffusivity=0.002)
        solver = FisherKPPSolver(config)
        assert config.diffusivity * config.dt / config.dx**2 <= 0.5
        assert 8.0 * config.dt <= 1.0
        with pytest.raises(ValueError, match=r"2\*D\*dt/dx\^2 \+ r\*dt"):
            next(solver.steps([8.0, 0.5, 0.5]))

    def test_amplitude_outside_invariant_region_rejected(self):
        solver = FisherKPPSolver()
        with pytest.raises(ValueError, match="invariant region"):
            next(solver.steps([2.0, 1.5, 0.5]))

    def test_negative_rate_rejected(self):
        solver = FisherKPPSolver()
        with pytest.raises(ValueError, match="non-negative"):
            next(solver.steps([-1.0, 0.5, 0.5]))


class TestSolverProtocol:
    def test_field_and_parameter_dims(self):
        solver = FisherKPPSolver(FisherKPPConfig(n_points=40))
        assert solver.field_size == 40
        assert solver.parameter_dim == 3

    def test_steps_yields_t0_through_T(self):
        solver = FisherKPPSolver(FisherKPPConfig(n_points=16, n_timesteps=9))
        assert len(list(solver.steps(PARAMS))) == 10

    def test_trajectories_are_deterministic(self):
        solver = FisherKPPSolver(FisherKPPConfig(n_points=24, n_timesteps=10))
        a = solver.solve(PARAMS).as_array()
        b = solver.solve(PARAMS).as_array()
        np.testing.assert_array_equal(a, b)
