"""Tests for the parameter-space box."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sampling.bounds import HEAT2D_BOUNDS, ParameterBounds


class TestConstruction:
    def test_heat2d_constant(self):
        assert HEAT2D_BOUNDS.dim == 5
        assert HEAT2D_BOUNDS.low == (100.0,) * 5
        assert HEAT2D_BOUNDS.high == (500.0,) * 5
        assert HEAT2D_BOUNDS.names == ("T0", "T1", "T2", "T3", "T4")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ParameterBounds(low=(0.0,), high=(1.0, 2.0))

    def test_empty(self):
        with pytest.raises(ValueError):
            ParameterBounds(low=(), high=())

    def test_low_must_be_below_high(self):
        with pytest.raises(ValueError):
            ParameterBounds(low=(1.0,), high=(1.0,))

    def test_names_length_checked(self):
        with pytest.raises(ValueError):
            ParameterBounds(low=(0.0,), high=(1.0,), names=("a", "b"))

    def test_with_names(self):
        b = ParameterBounds((0.0,), (1.0,)).with_names(["x"])
        assert b.names == ("x",)


class TestGeometry:
    def test_widths_volume_center(self):
        b = ParameterBounds(low=(0.0, 10.0), high=(2.0, 20.0))
        np.testing.assert_allclose(b.widths, [2.0, 10.0])
        assert b.volume == pytest.approx(20.0)
        np.testing.assert_allclose(b.center, [1.0, 15.0])

    def test_contains(self):
        b = ParameterBounds(low=(0.0, 0.0), high=(1.0, 1.0))
        assert b.contains([0.5, 0.5])
        assert b.contains([0.0, 1.0])          # boundary inclusive
        assert not b.contains([1.5, 0.5])
        assert b.contains([1.05, 0.5], atol=0.1)

    def test_contains_wrong_shape(self):
        with pytest.raises(ValueError):
            ParameterBounds((0.0,), (1.0,)).contains([0.1, 0.2])

    def test_contains_all(self):
        b = ParameterBounds(low=(0.0,), high=(1.0,))
        assert b.contains_all(np.array([[0.1], [0.9]]))
        assert not b.contains_all(np.array([[0.1], [1.9]]))

    def test_clip(self):
        b = ParameterBounds(low=(0.0,), high=(1.0,))
        np.testing.assert_allclose(b.clip(np.array([[-1.0], [2.0], [0.5]])), [[0.0], [1.0], [0.5]])


class TestScaling:
    def test_unit_roundtrip(self, rng):
        pts = rng.uniform(100.0, 500.0, size=(20, 5))
        unit = HEAT2D_BOUNDS.scale_to_unit(pts)
        assert np.all((unit >= 0) & (unit <= 1))
        np.testing.assert_allclose(HEAT2D_BOUNDS.scale_from_unit(unit), pts)

    def test_corners(self):
        np.testing.assert_allclose(HEAT2D_BOUNDS.scale_from_unit(np.zeros(5)), HEAT2D_BOUNDS.low_array)
        np.testing.assert_allclose(HEAT2D_BOUNDS.scale_from_unit(np.ones(5)), HEAT2D_BOUNDS.high_array)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=5, max_size=5)
    )
    def test_property_unit_points_map_inside(self, unit_point):
        point = HEAT2D_BOUNDS.scale_from_unit(np.array(unit_point))
        assert HEAT2D_BOUNDS.contains(point, atol=1e-9)
