"""Tests for weighted resampling, ESS and entropy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.multinomial import (
    effective_sample_size,
    entropy,
    multinomial_resample,
    normalize_weights,
    stratified_resample,
    systematic_resample,
)

weight_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=64,
)


class TestNormalizeWeights:
    def test_sums_to_one(self, rng):
        w = normalize_weights(rng.random(50))
        assert w.sum() == pytest.approx(1.0)

    def test_zero_weights_become_uniform(self):
        np.testing.assert_allclose(normalize_weights(np.zeros(4)), [0.25] * 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_weights(np.array([1.0, -0.1]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            normalize_weights(np.zeros((2, 2)))

    def test_preserves_proportions(self):
        np.testing.assert_allclose(normalize_weights(np.array([1.0, 3.0])), [0.25, 0.75])

    @given(weight_lists)
    @settings(max_examples=50, deadline=None)
    def test_property_valid_distribution(self, weights):
        p = normalize_weights(np.array(weights))
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0.0)


@pytest.mark.parametrize("resampler", [multinomial_resample, systematic_resample, stratified_resample])
class TestResamplers:
    def test_indices_in_range(self, resampler, rng):
        indices = resampler(rng.random(10), 100, rng)
        assert indices.shape == (100,)
        assert indices.min() >= 0 and indices.max() < 10

    def test_zero_weight_entries_never_selected(self, resampler, rng):
        weights = np.array([0.0, 1.0, 0.0, 1.0])
        indices = resampler(weights, 200, rng)
        assert set(np.unique(indices)).issubset({1, 3})

    def test_proportional_selection(self, resampler, rng):
        weights = np.array([0.2, 0.8])
        indices = resampler(weights, 20_000, rng)
        assert (indices == 1).mean() == pytest.approx(0.8, abs=0.03)

    def test_degenerate_single_weight(self, resampler, rng):
        indices = resampler(np.array([5.0]), 10, rng)
        assert np.all(indices == 0)


class TestEffectiveSampleSize:
    def test_uniform_weights_give_n(self):
        assert effective_sample_size(np.full(8, 0.125)) == pytest.approx(8.0)

    def test_degenerate_weights_give_one(self):
        assert effective_sample_size(np.array([0.0, 1.0, 0.0])) == pytest.approx(1.0)

    def test_zero_weights(self):
        assert effective_sample_size(np.zeros(5)) == 0.0

    @given(weight_lists)
    @settings(max_examples=50, deadline=None)
    def test_property_between_one_and_n(self, weights):
        w = np.array(weights)
        ess = effective_sample_size(w)
        if (w * w).sum() > 0:  # guard against subnormal underflow of the squares
            assert 1.0 - 1e-9 <= ess <= len(weights) + 1e-9
        else:
            assert ess == 0.0


class TestEntropy:
    def test_uniform_maximises_entropy(self):
        assert entropy(np.full(4, 0.25)) == pytest.approx(np.log(4))

    def test_degenerate_entropy_near_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0, abs=1e-6)

    @given(weight_lists)
    @settings(max_examples=50, deadline=None)
    def test_property_bounded_by_log_n(self, weights):
        h = entropy(np.array(weights))
        assert -1e-9 <= h <= np.log(len(weights)) + 1e-6
