"""Tests for the Halton quasi-random sequence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.sampling.halton import first_primes, halton_in_bounds, halton_sequence, radical_inverse


class TestPrimes:
    def test_first_ten(self):
        assert first_primes(10) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            first_primes(0)


class TestRadicalInverse:
    def test_base2_known_values(self):
        assert radical_inverse(1, 2) == 0.5
        assert radical_inverse(2, 2) == 0.25
        assert radical_inverse(3, 2) == 0.75
        assert radical_inverse(4, 2) == 0.125

    def test_base3_known_values(self):
        assert radical_inverse(1, 3) == pytest.approx(1 / 3)
        assert radical_inverse(2, 3) == pytest.approx(2 / 3)
        assert radical_inverse(3, 3) == pytest.approx(1 / 9)

    def test_zero_index(self):
        assert radical_inverse(0, 2) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            radical_inverse(1, 1)
        with pytest.raises(ValueError):
            radical_inverse(-1, 2)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=13))
    def test_property_in_unit_interval(self, index, base):
        assert 0.0 <= radical_inverse(index, base) < 1.0


class TestHaltonSequence:
    def test_shape(self):
        assert halton_sequence(10, 5).shape == (10, 5)

    def test_range(self):
        points = halton_sequence(200, 3)
        assert np.all((points >= 0.0) & (points < 1.0))

    def test_skip_avoids_origin(self):
        assert not np.allclose(halton_sequence(1, 2)[0], 0.0)

    def test_deterministic(self):
        np.testing.assert_array_equal(halton_sequence(16, 4), halton_sequence(16, 4))

    def test_low_discrepancy_beats_random_worst_gap(self):
        # In 1-D the Halton (van der Corput) sequence fills [0,1) far more
        # evenly than iid uniforms: its largest empirical CDF deviation is small.
        n = 256
        halton_points = np.sort(halton_sequence(n, 1)[:, 0])
        uniform_grid = (np.arange(n) + 0.5) / n
        halton_deviation = np.abs(halton_points - uniform_grid).max()
        assert halton_deviation < 0.02

    def test_column_means_near_half(self):
        points = halton_sequence(512, 5)
        np.testing.assert_allclose(points.mean(axis=0), 0.5, atol=0.05)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            halton_sequence(-1, 2)
        with pytest.raises(ValueError):
            halton_sequence(1, 0)
        with pytest.raises(ValueError):
            halton_sequence(1, 2, skip=-1)

    def test_zero_points(self):
        assert halton_sequence(0, 3).shape == (0, 3)


class TestHaltonInBounds:
    def test_within_bounds(self):
        points = halton_in_bounds(100, HEAT2D_BOUNDS)
        assert HEAT2D_BOUNDS.contains_all(points)

    def test_scramble_requires_rng(self):
        with pytest.raises(ValueError):
            halton_in_bounds(10, HEAT2D_BOUNDS, scramble=True)

    def test_scramble_changes_points_but_stays_in_bounds(self, rng):
        plain = halton_in_bounds(50, HEAT2D_BOUNDS)
        scrambled = halton_in_bounds(50, HEAT2D_BOUNDS, rng=rng, scramble=True)
        assert not np.allclose(plain, scrambled)
        assert HEAT2D_BOUNDS.contains_all(scrambled)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=64))
    def test_property_all_points_in_bounds(self, n):
        assert HEAT2D_BOUNDS.contains_all(halton_in_bounds(n, HEAT2D_BOUNDS))
