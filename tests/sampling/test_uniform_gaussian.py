"""Tests for uniform/LHS sampling and the Gaussian proposal machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling.bounds import HEAT2D_BOUNDS, ParameterBounds
from repro.sampling.gaussian import GaussianMixture, IsotropicGaussian, MultivariateNormal
from repro.sampling.uniform import latin_hypercube_in_bounds, uniform_in_bounds


class TestUniform:
    def test_shape_and_bounds(self, rng):
        points = uniform_in_bounds(200, HEAT2D_BOUNDS, rng)
        assert points.shape == (200, 5)
        assert HEAT2D_BOUNDS.contains_all(points)

    def test_zero_points(self, rng):
        assert uniform_in_bounds(0, HEAT2D_BOUNDS, rng).shape == (0, 5)

    def test_negative_raises(self, rng):
        with pytest.raises(ValueError):
            uniform_in_bounds(-1, HEAT2D_BOUNDS, rng)

    def test_mean_near_center(self, rng):
        points = uniform_in_bounds(4000, HEAT2D_BOUNDS, rng)
        np.testing.assert_allclose(points.mean(axis=0), HEAT2D_BOUNDS.center, rtol=0.03)


class TestLatinHypercube:
    def test_in_bounds(self, rng):
        points = latin_hypercube_in_bounds(64, HEAT2D_BOUNDS, rng)
        assert HEAT2D_BOUNDS.contains_all(points)

    def test_stratification(self, rng):
        bounds = ParameterBounds(low=(0.0,), high=(1.0,))
        n = 32
        points = latin_hypercube_in_bounds(n, bounds, rng)[:, 0]
        # Exactly one point per stratum [k/n, (k+1)/n).
        strata = np.floor(points * n).astype(int)
        assert sorted(strata.tolist()) == list(range(n))

    def test_zero_points(self, rng):
        assert latin_hypercube_in_bounds(0, HEAT2D_BOUNDS, rng).shape == (0, 5)

    def test_negative_raises(self, rng):
        with pytest.raises(ValueError):
            latin_hypercube_in_bounds(-2, HEAT2D_BOUNDS, rng)


class TestMultivariateNormal:
    def test_sampling_statistics(self, rng):
        mean = np.array([1.0, -2.0])
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        dist = MultivariateNormal(mean, cov)
        samples = dist.sample(rng, size=20_000)
        np.testing.assert_allclose(samples.mean(axis=0), mean, atol=0.05)
        np.testing.assert_allclose(np.cov(samples.T), cov, atol=0.1)

    def test_log_pdf_matches_scipy(self, rng):
        from scipy.stats import multivariate_normal as scipy_mvn

        mean = np.array([0.5, 1.5, -1.0])
        cov = np.diag([1.0, 2.0, 0.5])
        dist = MultivariateNormal(mean, cov)
        points = rng.normal(size=(10, 3))
        np.testing.assert_allclose(
            dist.log_pdf(points), scipy_mvn(mean, cov).logpdf(points), rtol=1e-10
        )

    def test_rejects_bad_covariance_shape(self):
        with pytest.raises(ValueError):
            MultivariateNormal(np.zeros(2), np.zeros((3, 3)))

    def test_rejects_non_positive_definite(self):
        with pytest.raises(ValueError):
            MultivariateNormal(np.zeros(2), np.array([[1.0, 2.0], [2.0, 1.0]]))


class TestIsotropicGaussian:
    def test_sampling_statistics(self, rng):
        dist = IsotropicGaussian(np.array([3.0, -1.0]), sigma=2.0)
        samples = dist.sample(rng, size=20_000)
        np.testing.assert_allclose(samples.mean(axis=0), [3.0, -1.0], atol=0.06)
        np.testing.assert_allclose(samples.std(axis=0), [2.0, 2.0], atol=0.06)

    def test_log_pdf_matches_full_covariance(self, rng):
        mean = np.array([1.0, 2.0, 3.0])
        iso = IsotropicGaussian(mean, sigma=1.7)
        full = MultivariateNormal(mean, (1.7**2) * np.eye(3))
        points = rng.normal(size=(8, 3))
        np.testing.assert_allclose(iso.log_pdf(points), full.log_pdf(points), rtol=1e-10)

    def test_sample_one_shape(self, rng):
        assert IsotropicGaussian(np.zeros(5), 1.0).sample_one(rng).shape == (5,)

    def test_with_sigma(self):
        dist = IsotropicGaussian(np.zeros(2), 1.0).with_sigma(3.0)
        assert dist.sigma == 3.0

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ValueError):
            IsotropicGaussian(np.zeros(2), 0.0)


class TestGaussianMixture:
    def test_pdf_integrates_to_components_average(self, rng):
        components = [IsotropicGaussian(np.array([0.0]), 1.0), IsotropicGaussian(np.array([5.0]), 1.0)]
        mixture = GaussianMixture(components)
        # pdf at a point = average of component pdfs (equal weights).
        point = np.array([[0.0]])
        expected = 0.5 * (components[0].pdf(point) + components[1].pdf(point))
        np.testing.assert_allclose(mixture.pdf(point), expected)

    def test_sampling_covers_both_modes(self, rng):
        mixture = GaussianMixture(
            [IsotropicGaussian(np.array([0.0]), 0.5), IsotropicGaussian(np.array([10.0]), 0.5)]
        )
        samples = mixture.sample(rng, size=2000)[:, 0]
        assert (samples < 5).sum() > 500
        assert (samples > 5).sum() > 500

    def test_custom_weights(self, rng):
        mixture = GaussianMixture(
            [IsotropicGaussian(np.array([0.0]), 0.5), IsotropicGaussian(np.array([10.0]), 0.5)],
            weights=[0.9, 0.1],
        )
        samples = mixture.sample(rng, size=5000)[:, 0]
        assert (samples < 5).mean() == pytest.approx(0.9, abs=0.03)

    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixture([])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixture([IsotropicGaussian(np.zeros(2), 1.0), IsotropicGaussian(np.zeros(3), 1.0)])

    def test_invalid_weights_rejected(self):
        comps = [IsotropicGaussian(np.zeros(1), 1.0)]
        with pytest.raises(ValueError):
            GaussianMixture(comps, weights=[-1.0])
        with pytest.raises(ValueError):
            GaussianMixture(comps, weights=[0.5, 0.5])

    def test_log_pdf_finite_far_from_modes(self):
        mixture = GaussianMixture([IsotropicGaussian(np.zeros(1), 0.1)])
        assert np.isfinite(mixture.log_pdf(np.array([[100.0]])))[0]
