"""Shared fixtures for the test suite.

Fixtures provide small, fast instances of the expensive objects (solvers,
validation sets, training configurations) so individual tests stay well under
a second while still exercising the real code paths.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# tests/campaign/faults.py is the shared deterministic fault-injection helper
# (campaign kill-and-resume matrix, service interruption tests).  The test
# tree is importable per-directory (no packages), so make the helper reachable
# from every test module regardless of which directory pytest collected first.
_FAULTS_DIR = str(Path(__file__).parent / "campaign")
if _FAULTS_DIR not in sys.path:
    sys.path.insert(0, _FAULTS_DIR)

from repro.breed.samplers import BreedConfig
from repro.melissa.run import OnlineTrainingConfig
from repro.sampling.bounds import HEAT2D_BOUNDS, ParameterBounds
from repro.solvers.heat2d import Heat2DConfig, Heat2DImplicitSolver
from repro.surrogate.normalization import SurrogateScalers


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def bounds() -> ParameterBounds:
    """The paper's heat-PDE parameter box [100, 500]^5."""
    return HEAT2D_BOUNDS


@pytest.fixture(scope="session")
def tiny_heat_config() -> Heat2DConfig:
    """A very small heat problem: 6x6 grid, 5 time steps."""
    return Heat2DConfig(grid_size=6, n_timesteps=5)


@pytest.fixture(scope="session")
def tiny_solver(tiny_heat_config: Heat2DConfig) -> Heat2DImplicitSolver:
    return Heat2DImplicitSolver(tiny_heat_config)


@pytest.fixture(scope="session")
def tiny_scalers(tiny_heat_config: Heat2DConfig) -> SurrogateScalers:
    return SurrogateScalers.for_heat2d(HEAT2D_BOUNDS, tiny_heat_config.n_timesteps)


@pytest.fixture
def tiny_run_config(tiny_heat_config: Heat2DConfig) -> OnlineTrainingConfig:
    """A complete on-line training configuration that runs in well under a second."""
    return OnlineTrainingConfig(
        method="breed",
        heat=tiny_heat_config,
        breed=BreedConfig(sigma=25.0, period=10, window=30, r_start=0.5, r_end=0.7, r_breakpoint=2),
        n_simulations=24,
        hidden_size=8,
        n_hidden_layers=1,
        batch_size=16,
        job_limit=4,
        timesteps_per_tick=1,
        train_iterations_per_tick=2,
        reservoir_capacity=120,
        reservoir_watermark=24,
        max_iterations=60,
        validation_period=20,
        n_validation_trajectories=3,
        seed=5,
    )
