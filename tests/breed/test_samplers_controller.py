"""Tests for the steering samplers (Random / Breed) and the controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.breed.controller import BreedController
from repro.breed.samplers import (
    BreedConfig,
    BreedSampler,
    ParameterSource,
    RandomSampler,
    ResampleDecision,
)
from repro.sampling.bounds import HEAT2D_BOUNDS
from repro.utils.logging import EventLog


class FakeLauncher:
    """Minimal SteeringTarget double recording applied updates."""

    def __init__(self, steerable):
        self.steerable = list(steerable)
        self.updates = {}

    def steerable_simulation_ids(self):
        return list(self.steerable)

    def update_parameters(self, simulation_id, parameters, source):
        self.updates[simulation_id] = (np.asarray(parameters), source)


def feed_losses(sampler, n_sims=10, iteration=1):
    """Push one batch of synthetic per-sample losses into a sampler."""
    rng = np.random.default_rng(0)
    sampler.observe_batch(
        iteration=iteration,
        simulation_ids=list(range(n_sims)),
        timesteps=[0] * n_sims,
        sample_losses=rng.random(n_sims).tolist(),
        parameters=[rng.uniform(100, 500, 5) for _ in range(n_sims)],
    )


class TestRandomSampler:
    def test_initial_parameters_uniform_in_bounds(self, rng):
        sampler = RandomSampler(HEAT2D_BOUNDS)
        params = sampler.initial_parameters(50, rng)
        assert params.shape == (50, 5)
        assert HEAT2D_BOUNDS.contains_all(params)

    def test_never_resamples(self, rng):
        sampler = RandomSampler(HEAT2D_BOUNDS)
        assert not sampler.should_resample(100)
        assert sampler.resample(5, 100, rng) is None

    def test_name(self):
        assert RandomSampler(HEAT2D_BOUNDS).name == "Random"


class TestBreedConfig:
    def test_defaults_match_paper_study1(self):
        config = BreedConfig.study1()
        assert config.sigma == 10.0
        assert config.period == 300
        assert config.window == 200
        assert (config.r_start, config.r_end, config.r_breakpoint) == (0.5, 0.7, 3)

    def test_study_presets_are_valid(self):
        for preset in (BreedConfig.study1(), BreedConfig.study2(), BreedConfig.study3()):
            assert preset.period >= 1
            preset.amis_config()
            preset.mixing_schedule()

    def test_validation(self):
        with pytest.raises(ValueError):
            BreedConfig(period=0)
        with pytest.raises(ValueError):
            BreedConfig(window=0)
        with pytest.raises(ValueError):
            BreedConfig(sigma=-1.0)
        with pytest.raises(ValueError):
            BreedConfig(r_start=2.0)


class TestBreedSampler:
    @pytest.fixture
    def sampler(self):
        return BreedSampler(HEAT2D_BOUNDS, BreedConfig(sigma=20.0, period=10, window=50))

    def test_initial_parameters_registered(self, sampler, rng):
        params = sampler.initial_parameters(20, rng)
        assert params.shape == (20, 5)
        assert all(sid in sampler.tracker for sid in range(20))

    def test_should_resample_periodicity(self, sampler, rng):
        sampler.initial_parameters(20, rng)
        feed_losses(sampler)
        assert not sampler.should_resample(0)
        assert not sampler.should_resample(5)
        assert sampler.should_resample(10)
        assert sampler.should_resample(20)

    def test_should_not_resample_without_observations(self, rng):
        sampler = BreedSampler(HEAT2D_BOUNDS, BreedConfig(period=10))
        sampler.initial_parameters(20, rng)
        assert not sampler.should_resample(10)

    def test_resample_returns_decision(self, sampler, rng):
        sampler.initial_parameters(20, rng)
        feed_losses(sampler)
        decision = sampler.resample(7, iteration=10, rng=rng)
        assert isinstance(decision, ResampleDecision)
        assert len(decision) == 7
        assert HEAT2D_BOUNDS.contains_all(decision.parameters)
        assert set(decision.sources) <= {ParameterSource.PROPOSAL, ParameterSource.MIX_UNIFORM}
        assert decision.resampling_index == 0
        assert sampler.resampling_count == 1

    def test_double_trigger_guard_same_iteration(self, sampler, rng):
        sampler.initial_parameters(20, rng)
        feed_losses(sampler)
        assert sampler.should_resample(10)
        sampler.resample(5, 10, rng)
        assert not sampler.should_resample(10)
        feed_losses(sampler, iteration=15)
        assert sampler.should_resample(20)

    def test_resample_zero_pending_returns_none(self, sampler, rng):
        sampler.initial_parameters(20, rng)
        feed_losses(sampler)
        assert sampler.resample(0, 10, rng) is None

    def test_mixing_ratio_progresses(self, rng):
        sampler = BreedSampler(
            HEAT2D_BOUNDS, BreedConfig(period=5, window=50, r_start=0.0, r_end=1.0, r_breakpoint=2)
        )
        sampler.initial_parameters(20, rng)
        feed_losses(sampler)
        first = sampler.resample(200, 5, rng)
        feed_losses(sampler, iteration=7)
        second = sampler.resample(200, 10, rng)
        feed_losses(sampler, iteration=12)
        third = sampler.resample(200, 15, rng)
        # r grows 0 -> 0.5 -> 1, so the uniform fraction must drop.
        frac = [
            sum(1 for s in d.sources if s == ParameterSource.MIX_UNIFORM) / len(d)
            for d in (first, second, third)
        ]
        assert frac[0] > frac[1] > frac[2]
        assert frac[2] == 0.0

    def test_decisions_history_recorded(self, sampler, rng):
        sampler.initial_parameters(10, rng)
        feed_losses(sampler)
        sampler.resample(4, 10, rng)
        assert len(sampler.decisions) == 1

    def test_name(self, sampler):
        assert sampler.name == "Breed"


class TestResampleDecision:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ResampleDecision(parameters=np.zeros((2, 5)), sources=["proposal"], iteration=0, resampling_index=0)


class TestBreedController:
    def _controller(self, period=10):
        sampler = BreedSampler(HEAT2D_BOUNDS, BreedConfig(sigma=20.0, period=period, window=50))
        rng = np.random.default_rng(3)
        sampler.initial_parameters(30, rng)
        return BreedController(sampler=sampler, rng=rng, event_log=EventLog()), sampler

    def test_no_steer_before_period(self):
        controller, sampler = self._controller()
        feed_losses(sampler)
        launcher = FakeLauncher(steerable=[20, 21, 22])
        assert controller.maybe_steer(5, launcher) is None
        assert launcher.updates == {}

    def test_steer_applies_updates_to_launcher(self):
        controller, sampler = self._controller()
        feed_losses(sampler)
        launcher = FakeLauncher(steerable=[20, 21, 22, 23])
        record = controller.maybe_steer(10, launcher)
        assert record is not None
        assert record.n_applied == 4
        assert set(launcher.updates) == {20, 21, 22, 23}
        for params, source in launcher.updates.values():
            assert HEAT2D_BOUNDS.contains(params)
            assert source in (ParameterSource.PROPOSAL, ParameterSource.MIX_UNIFORM)

    def test_steer_with_no_pending_simulations(self):
        controller, sampler = self._controller()
        feed_losses(sampler)
        launcher = FakeLauncher(steerable=[])
        assert controller.maybe_steer(10, launcher) is None

    def test_records_and_timer_accumulate(self):
        controller, sampler = self._controller()
        feed_losses(sampler)
        launcher = FakeLauncher(steerable=[25, 26])
        controller.maybe_steer(10, launcher)
        feed_losses(sampler, iteration=15)
        controller.maybe_steer(20, launcher)
        assert controller.n_steering_events == 2
        assert controller.total_steering_seconds >= 0.0

    def test_observe_batch_forwards_to_sampler(self):
        controller, sampler = self._controller()
        controller.observe_batch(1, [0, 1], [0, 0], [0.1, 0.9])
        assert len(sampler.tracker.observed_ids()) == 2

    def test_random_sampler_never_steers(self):
        rng = np.random.default_rng(0)
        sampler = RandomSampler(HEAT2D_BOUNDS)
        sampler.initial_parameters(10, rng)
        controller = BreedController(sampler=sampler, rng=rng)
        launcher = FakeLauncher(steerable=[5, 6])
        for iteration in range(1, 100):
            assert controller.maybe_steer(iteration, launcher) is None
        assert launcher.updates == {}

    def test_tracker_parameters_updated_after_steer(self):
        controller, sampler = self._controller()
        feed_losses(sampler)
        launcher = FakeLauncher(steerable=[28])
        controller.maybe_steer(10, launcher)
        applied, _ = launcher.updates[28]
        np.testing.assert_array_equal(sampler.tracker.parameters(28), applied)
