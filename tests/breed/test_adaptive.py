"""Tests for the adaptive resampling triggers (future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.breed.adaptive import AdaptiveTrigger, PeriodicTrigger


class TestPeriodicTrigger:
    def test_fires_on_multiples_of_period(self):
        trigger = PeriodicTrigger(period=10)
        q = np.ones(5)
        assert not trigger.should_fire(0, q)
        assert not trigger.should_fire(9, q)
        assert trigger.should_fire(10, q)
        assert trigger.should_fire(20, q)

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicTrigger(period=0)

    def test_notify_fired_tracks_state(self):
        trigger = PeriodicTrigger(period=5)
        trigger.notify_fired(5)
        assert trigger._last_fired == 5


class TestAdaptiveTrigger:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTrigger(min_interval=0)
        with pytest.raises(ValueError):
            AdaptiveTrigger(min_interval=10, max_interval=5)
        with pytest.raises(ValueError):
            AdaptiveTrigger(ess_fraction=0.0)

    def test_cooldown_blocks_early_firing(self):
        trigger = AdaptiveTrigger(min_interval=20, max_interval=100, ess_fraction=0.0 + 1e-9)
        assert not trigger.should_fire(10, np.ones(10))

    def test_fires_when_weights_are_diverse(self):
        trigger = AdaptiveTrigger(min_interval=5, max_interval=1000, ess_fraction=0.5)
        # Uniform Q values -> ESS fraction = 1 -> fire.
        assert trigger.should_fire(10, np.ones(20))

    def test_does_not_fire_on_degenerate_weights(self):
        trigger = AdaptiveTrigger(min_interval=5, max_interval=1000, ess_fraction=0.5)
        q = np.zeros(20)
        q[3] = 100.0                      # one dominant location -> ESS fraction ~ 1/20
        assert not trigger.should_fire(10, q)

    def test_max_interval_forces_firing(self):
        trigger = AdaptiveTrigger(min_interval=5, max_interval=30, ess_fraction=0.99)
        q = np.zeros(20)
        q[0] = 1.0
        assert not trigger.should_fire(10, q)
        assert trigger.should_fire(30, q)

    def test_notify_fired_resets_cooldown(self):
        trigger = AdaptiveTrigger(min_interval=10, max_interval=100, ess_fraction=0.5)
        assert trigger.should_fire(10, np.ones(8))
        trigger.notify_fired(10)
        assert not trigger.should_fire(15, np.ones(8))
        assert trigger.should_fire(20, np.ones(8))

    def test_empty_window_never_satisfies_criterion(self):
        trigger = AdaptiveTrigger(min_interval=1, max_interval=1000, ess_fraction=0.1)
        assert not trigger.should_fire(5, np.array([]))

    def test_entropy_mode(self):
        trigger = AdaptiveTrigger(min_interval=1, max_interval=1000, ess_fraction=0.9, use_entropy=True)
        assert trigger.should_fire(5, np.ones(16))          # uniform -> normalised entropy 1
        degenerate = np.zeros(16)
        degenerate[0] = 1.0
        trigger_low = AdaptiveTrigger(min_interval=1, max_interval=1000, ess_fraction=0.9, use_entropy=True)
        assert not trigger_low.should_fire(5, degenerate)

    def test_entropy_mode_single_element_window(self):
        trigger = AdaptiveTrigger(min_interval=1, max_interval=1000, ess_fraction=0.5, use_entropy=True)
        assert trigger.should_fire(5, np.array([2.0]))

    def test_history_recorded_for_evaluated_iterations(self):
        trigger = AdaptiveTrigger(min_interval=1, max_interval=1000, ess_fraction=0.5)
        trigger.should_fire(5, np.ones(4))
        trigger.should_fire(6, np.ones(4))
        assert len(trigger.history) == 2
        assert all(0.0 <= v <= 1.0 for _, v in trigger.history)

    def test_iteration_zero_never_fires(self):
        assert not AdaptiveTrigger().should_fire(0, np.ones(4))
