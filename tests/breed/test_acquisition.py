"""Tests for the loss-deviation acquisition metric (Eqs. 4-6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.breed.acquisition import LossDeviationTracker, SampleLossObservation

loss_lists = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False), min_size=2, max_size=32
)


def make_observation(sim_id=0, t=0, i=0, loss=1.0, mean=0.5, std=0.5):
    return SampleLossObservation(
        simulation_id=sim_id, timestep=t, iteration=i, sample_loss=loss, batch_mean=mean, batch_std=std
    )


class TestSampleLossObservation:
    def test_deviation_positive_part(self):
        assert make_observation(loss=1.0, mean=0.5, std=0.5).deviation() == pytest.approx(1.0)
        assert make_observation(loss=0.2, mean=0.5, std=0.5).deviation() == 0.0

    def test_deviation_zero_std_is_finite(self):
        assert np.isfinite(make_observation(loss=1.0, mean=0.0, std=0.0).deviation())


class TestLossDeviationTracker:
    def test_register_and_contains(self):
        tracker = LossDeviationTracker()
        tracker.register_parameters(3, np.array([1.0, 2.0]))
        assert 3 in tracker
        assert 4 not in tracker
        assert len(tracker) == 1

    def test_observe_unknown_simulation_requires_parameters(self):
        tracker = LossDeviationTracker()
        with pytest.raises(KeyError):
            tracker.observe(make_observation(sim_id=9))
        tracker.observe(make_observation(sim_id=9), parameters=np.array([1.0]))
        assert 9 in tracker

    def test_q_value_single_observation(self):
        tracker = LossDeviationTracker()
        tracker.register_parameters(0, np.zeros(2))
        deviation = tracker.observe(make_observation(loss=1.5, mean=0.5, std=0.5))
        assert deviation == pytest.approx(2.0)
        assert tracker.q_value(0) == pytest.approx(2.0)

    def test_q_value_averages_across_timesteps(self):
        tracker = LossDeviationTracker()
        tracker.register_parameters(0, np.zeros(2))
        tracker.observe(make_observation(t=0, loss=1.5, mean=0.5, std=0.5))  # delta = 2
        tracker.observe(make_observation(t=1, loss=0.5, mean=0.5, std=0.5))  # delta = 0
        assert tracker.q_value(0) == pytest.approx(1.0)

    def test_q_value_averages_across_repeated_batches(self):
        tracker = LossDeviationTracker()
        tracker.register_parameters(0, np.zeros(2))
        tracker.observe(make_observation(t=0, i=0, loss=1.5, mean=0.5, std=0.5))  # 2
        tracker.observe(make_observation(t=0, i=1, loss=1.0, mean=0.5, std=0.5))  # 1
        assert tracker.q_value(0) == pytest.approx(1.5)

    def test_q_value_unknown_simulation_is_zero(self):
        assert LossDeviationTracker().q_value(42) == 0.0

    def test_observe_batch_returns_batch_statistics(self):
        tracker = LossDeviationTracker()
        losses = [1.0, 2.0, 3.0]
        mean, std = tracker.observe_batch(
            iteration=5,
            simulation_ids=[0, 1, 2],
            timesteps=[0, 0, 0],
            sample_losses=losses,
            parameters=[np.zeros(2)] * 3,
        )
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(np.std(losses))
        assert len(tracker.observed_ids()) == 3

    def test_observe_empty_batch(self):
        tracker = LossDeviationTracker()
        assert tracker.observe_batch(0, [], [], []) == (0.0, 0.0)

    def test_only_above_mean_samples_have_positive_q(self):
        tracker = LossDeviationTracker()
        tracker.observe_batch(
            iteration=0,
            simulation_ids=[0, 1],
            timesteps=[0, 0],
            sample_losses=[0.1, 0.9],
            parameters=[np.zeros(2), np.ones(2)],
        )
        assert tracker.q_value(0) == 0.0
        assert tracker.q_value(1) > 0.0

    def test_window_ordering_by_recency(self):
        tracker = LossDeviationTracker()
        for sim_id in range(5):
            tracker.observe_batch(
                iteration=sim_id,
                simulation_ids=[sim_id],
                timesteps=[0],
                sample_losses=[1.0],
                parameters=[np.full(2, sim_id, dtype=float)],
            )
        locations, q_values, ids = tracker.window(3)
        assert ids == [4, 3, 2]          # most recently updated first
        assert locations.shape == (3, 2)
        assert q_values.shape == (3,)

    def test_window_smaller_population(self):
        tracker = LossDeviationTracker()
        tracker.observe_batch(0, [0], [0], [1.0], parameters=[np.zeros(2)])
        locations, q_values, ids = tracker.window(10)
        assert len(ids) == 1

    def test_window_empty(self):
        locations, q_values, ids = LossDeviationTracker().window(5)
        assert ids == [] and locations.size == 0 and q_values.size == 0

    def test_window_invalid_size(self):
        with pytest.raises(ValueError):
            LossDeviationTracker().window(0)

    def test_registered_but_unobserved_excluded_from_window(self):
        tracker = LossDeviationTracker()
        tracker.register_parameters(0, np.zeros(2))
        tracker.observe_batch(0, [1], [0], [1.0], parameters=[np.ones(2)])
        _, _, ids = tracker.window(10)
        assert ids == [1]

    def test_snapshot_fields(self):
        tracker = LossDeviationTracker()
        assert tracker.snapshot()["n_simulations"] == 0.0
        tracker.observe_batch(0, [0, 1], [0, 0], [0.2, 0.8], parameters=[np.zeros(2), np.ones(2)])
        snap = tracker.snapshot()
        assert snap["n_simulations"] == 2.0
        assert snap["q_max"] >= snap["q_mean"] >= 0.0

    def test_all_q_values(self):
        tracker = LossDeviationTracker()
        tracker.observe_batch(0, [0, 1], [0, 0], [0.2, 0.8], parameters=[np.zeros(2), np.ones(2)])
        q = tracker.all_q_values()
        assert set(q) == {0, 1}

    @given(loss_lists)
    @settings(max_examples=40, deadline=None)
    def test_property_q_values_non_negative(self, losses):
        tracker = LossDeviationTracker()
        tracker.observe_batch(
            iteration=0,
            simulation_ids=list(range(len(losses))),
            timesteps=[0] * len(losses),
            sample_losses=losses,
            parameters=[np.zeros(1)] * len(losses),
        )
        assert all(q >= 0.0 for q in tracker.all_q_values().values())

    @given(loss_lists)
    @settings(max_examples=40, deadline=None)
    def test_property_below_mean_samples_have_zero_q(self, losses):
        tracker = LossDeviationTracker()
        arr = np.array(losses)
        tracker.observe_batch(
            iteration=0,
            simulation_ids=list(range(len(losses))),
            timesteps=[0] * len(losses),
            sample_losses=losses,
            parameters=[np.zeros(1)] * len(losses),
        )
        for sim_id, loss in enumerate(arr):
            if loss <= arr.mean():
                assert tracker.q_value(sim_id) == 0.0
